"""α-schedule study: how the VC-ASGD hyperparameter shapes convergence.

Reproduces the §IV-C experiment interactively at a reduced scale: constant
α values against the epoch-varying schedule α_e = e/(e+1), plus a custom
schedule to show the extension point.

Run:  python examples/alpha_scheduling.py
"""

from __future__ import annotations

from repro.analysis import crossover_time, render_table
from repro.core import (
    CallableAlpha,
    ConstantAlpha,
    TrainingJobConfig,
    VarAlpha,
    run_experiment,
)


def main() -> None:
    base = TrainingJobConfig(
        num_param_servers=3,
        num_clients=3,
        max_concurrent_subtasks=4,
        num_shards=30,
        max_epochs=15,
        seed=33,
    )
    schedules = [
        ConstantAlpha(0.7),
        ConstantAlpha(0.95),
        ConstantAlpha(0.999),
        VarAlpha(),
        # Extension point: any epoch -> alpha callable works.
        CallableAlpha(lambda e: min(0.98, 0.6 + 0.02 * e), label="0.6+0.02e"),
    ]

    results = {}
    for schedule in schedules:
        cfg = base.with_alpha(schedule)
        results[schedule.describe()] = run_experiment(cfg)

    rows = []
    for name, result in results.items():
        acc = result.val_accuracy()
        rows.append(
            [
                name,
                round(float(acc[2]), 3),
                round(float(acc[len(acc) // 2]), 3),
                round(float(acc[-1]), 3),
                round(result.mean_spread(last_k=5), 4),
            ]
        )
    print(
        render_table(
            ["schedule", "acc early", "acc mid", "acc final", "late spread"],
            rows,
            title="VC-ASGD alpha schedules at P3C3T4",
        )
    )

    a07 = results["alpha=0.7"]
    a95 = results["alpha=0.95"]
    cross = crossover_time(
        a07.times_hours(), a07.val_accuracy(), a95.times_hours(), a95.val_accuracy()
    )
    if cross is not None:
        print(f"\nalpha=0.7 vs alpha=0.95 curves cross at ~{cross:.2f} simulated hours")
    else:
        print("\nNo crossover within this horizon (extend max_epochs to see it)")
    print(
        "Small alpha learns fast early but plateaus noisily; large alpha is "
        "slow; the varying schedule gets both regimes right (paper §IV-C)."
    )


if __name__ == "__main__":
    main()
