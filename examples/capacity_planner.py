"""Capacity planning: size a fleet before you pay for it.

Answers the scaling questions the paper raises analytically — how many
parameter servers does a given client fleet need (§IV-B), what does the
strong-consistency store cost at ImageNet scale (§IV-D), and what will the
job cost on preemptible capacity (§IV-E) — then cross-checks one planned
configuration against the event simulator.

Run:  python examples/capacity_planner.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.cloud import cifar10_workload, imagenet_workload, plan_capacity
from repro.core import ConstantAlpha, TrainingJobConfig, run_experiment
from repro.kvstore import mysql_like_latency, redis_like_latency


def main() -> None:
    cifar = cifar10_workload()

    print("How many parameter servers does each fleet shape need?\n")
    rows = []
    for clients, concurrency in [(3, 2), (3, 8), (5, 2), (5, 8), (10, 8)]:
        est = plan_capacity(cifar, num_clients=clients, concurrency=concurrency,
                            num_param_servers=1)
        rows.append(
            [
                f"C{clients} T{concurrency}",
                round(est.ps_utilization, 2),
                est.bottleneck,
                est.min_param_servers,
                round(est.job_hours, 1),
            ]
        )
    print(
        render_table(
            ["fleet", "rho at P1", "bottleneck", "min Pn", "job h at P1"],
            rows,
            title="Parameter-server sizing (CIFAR10-scale workload)",
        )
    )

    print("\nStore choice at scale (the SecIV-D extrapolation):\n")
    rows = []
    for wl in (cifar, imagenet_workload()):
        redis = plan_capacity(wl, num_clients=5, num_param_servers=5,
                              store=redis_like_latency())
        mysql = plan_capacity(wl, num_clients=5, num_param_servers=5,
                              store=mysql_like_latency())
        rows.append(
            [
                wl.name,
                f"{wl.total_subtasks:,}",
                round(mysql.store_overhead_hours, 1),
            ]
        )
    print(
        render_table(
            ["workload", "updates", "strong-store overhead (h)"],
            rows,
            title="Strong- vs eventual-consistency overhead",
        )
    )

    print("\nCross-check: planned vs simulated epoch time (P3C3T2)\n")
    est = plan_capacity(cifar, num_clients=3, concurrency=2, num_param_servers=3)
    planned_epoch = est.job_hours * 3600 / cifar.epochs
    cfg = TrainingJobConfig(
        num_param_servers=3,
        num_clients=3,
        max_concurrent_subtasks=2,
        max_epochs=3,
        alpha_schedule=ConstantAlpha(0.95),
    )
    result = run_experiment(cfg)
    simulated_epoch = result.total_time_s / len(result.epochs)
    print(f"  planner : {planned_epoch:7.1f} s/epoch")
    print(f"  simulator: {simulated_epoch:6.1f} s/epoch")
    print(f"  error   : {100 * abs(planned_epoch - simulated_epoch) / simulated_epoch:.1f}%")


if __name__ == "__main__":
    main()
