"""Quickstart: train a model on the volunteer-computing-like platform.

Runs a small distributed training job end to end — work generator, BOINC
scheduler, heterogeneous simulated clients, VC-ASGD parameter servers —
and prints the per-epoch accuracy and the fault-tolerance counters.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_hours, render_table
from repro.core import TrainingJobConfig, VarAlpha, run_experiment


def main() -> None:
    # A P3C3T2 job: 3 parameter servers, 3 clients, 2 subtasks per client,
    # with the paper's best alpha schedule (alpha_e = e / (e + 1)).
    config = TrainingJobConfig(
        num_param_servers=3,
        num_clients=3,
        max_concurrent_subtasks=2,
        alpha_schedule=VarAlpha(),
        num_shards=25,
        max_epochs=10,
        seed=7,
    )
    print(f"Running {config.label} with {config.alpha_schedule.describe()} ...")
    result = run_experiment(config)

    rows = [
        [
            rec.epoch,
            format_hours(rec.end_time_s),
            round(rec.alpha, 3),
            round(rec.val_accuracy_mean, 3),
            f"[{rec.val_accuracy_min:.3f}, {rec.val_accuracy_max:.3f}]",
            round(rec.test_accuracy, 3),
        ]
        for rec in result.epochs
    ]
    print(
        render_table(
            ["epoch", "sim time", "alpha", "val acc", "subtask range", "test acc"],
            rows,
            title="\nTraining progress (simulated wall clock)",
        )
    )

    print("\nSystem counters:")
    for key, value in sorted(result.counters.items()):
        print(f"  {key:>14}: {value}")
    print(f"\nStopped: {result.stopped_reason} after {format_hours(result.total_time_s)}")


if __name__ == "__main__":
    main()
