"""Time-series forecasting on the VC substrate (paper §V).

The paper's limitations section contrasts image classification (big data,
horizontal scaling) with time-series forecasting (small data, vertical
scaling).  This example exercises that workload with the library:

1. generate a synthetic trend + seasonality + AR(1) series;
2. window it into a supervised forecasting task;
3. train an MLP forecaster serially, and with a small VC-ASGD ensemble of
   "clients" that each see a chronological slice, merged with Eq. 1 —
   showing why tiny datasets favour fewer, bigger subtasks (the §V claim).

Run:  python examples/timeseries_forecasting.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core.vcasgd import vcasgd_merge
from repro.data import (
    TimeSeriesConfig,
    generate_series,
    train_val_split_series,
    windowed_dataset,
)
from repro.nn import Adam, Tensor, make_mlp, mse_loss
from repro.nn.serialization import state_to_vector, vector_to_state

WINDOW = 24


def make_forecaster(seed: int):
    return make_mlp(
        np.random.default_rng(seed), in_features=WINDOW, hidden=[32], num_classes=1
    )


def train_on(model, x, y, passes: int, seed: int) -> None:
    opt = Adam(model.parameters(), lr=0.005)
    rng = np.random.default_rng(seed)
    for _ in range(passes):
        order = rng.permutation(len(x))
        for start in range(0, len(x), 32):
            idx = order[start : start + 32]
            model.zero_grad()
            pred = model(Tensor(x[idx])).reshape(-1)
            mse_loss(pred, y[idx]).backward()
            opt.step()


def val_mse(model, x, y) -> float:
    pred = model(Tensor(x)).reshape(-1)
    return float(((pred.data - y) ** 2).mean())


def main() -> None:
    cfg = TimeSeriesConfig(length=1500, seasonal_period=48)
    series = generate_series(cfg, np.random.default_rng(0))
    x, y = windowed_dataset(series, window=WINDOW)
    x_tr, y_tr, x_va, y_va = train_val_split_series(x, y, val_fraction=0.2)
    print(f"Series of {cfg.length} points -> {len(x_tr)} train / {len(x_va)} val windows")

    # Serial baseline.
    serial = make_forecaster(1)
    train_on(serial, x_tr, y_tr, passes=6, seed=2)
    baseline = val_mse(serial, x_va, y_va)

    rows = [["serial (1 worker)", round(baseline, 4), "-"]]
    # VC-ASGD with k chronological shards: more shards = less context each.
    for k in (2, 5, 10):
        template_model = make_forecaster(1)
        template = template_model.state_dict()
        server = state_to_vector(template)
        shards = np.array_split(np.arange(len(x_tr)), k)
        for merge_round in range(3):
            client_vecs = []
            for ci, idx in enumerate(shards):
                worker = make_forecaster(1)
                worker.load_state_dict(vector_to_state(server, template))
                train_on(worker, x_tr[idx], y_tr[idx], passes=2, seed=10 + ci)
                client_vecs.append(state_to_vector(worker.state_dict()))
            for vec in client_vecs:
                server = vcasgd_merge(server, vec, alpha=0.7)
        merged = make_forecaster(1)
        merged.load_state_dict(vector_to_state(server, template))
        rows.append(
            [f"VC-ASGD, {k} shards", round(val_mse(merged, x_va, y_va), 4), "0.7"]
        )

    print(
        render_table(
            ["configuration", "val MSE (lower=better)", "alpha"],
            rows,
            title="\nForecasting: serial vs sharded VC-ASGD training",
        )
    )
    print(
        "\nWith a small dataset, aggressive sharding starves each client of "
        "temporal context and degrades the merged model — the paper's §V "
        "argument that forecasting workloads favour vertical scaling."
    )


if __name__ == "__main__":
    main()
