"""Volunteer-style RNN text prediction (the JSDoop workload, §II-A).

Morell et al.'s JSDoop — cited by the paper as prior VC-for-DL work —
trained an RNN for text prediction in browsers.  This example runs the
equivalent workload on our substrate: a character-level GRU next-character
model trained (a) serially and (b) by VC-ASGD-style merging of clients
that each own a slice of the corpus.

Run:  python examples/text_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core.vcasgd import vcasgd_merge
from repro.nn import Adam, Dense, Tensor, cross_entropy
from repro.nn.rnn import RNN, Embedding, GRUCell
from repro.nn.serialization import state_to_vector, vector_to_state

CORPUS = (
    "the quick brown fox jumps over the lazy dog while the lazy dog dreams "
    "of jumping over the quick brown fox and the fox keeps running through "
    "the quiet green field under the warm evening sun as the dog watches "
) * 6
WINDOW = 12
HIDDEN = 24
EMBED = 12


class CharModel:
    """Embedding → GRU → softmax head, bundled as one trainable unit."""

    def __init__(self, vocab: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        self.emb = Embedding(vocab, EMBED, rng)
        self.cell = GRUCell(EMBED, HIDDEN, rng)
        self.rnn = RNN(self.cell)
        self.head = Dense(HIDDEN, vocab, rng)
        self.modules = (self.emb, self.cell, self.head)

    def parameters(self):
        for module in self.modules:
            yield from module.parameters()

    def state_dict(self):
        state = {}
        for i, module in enumerate(self.modules):
            for key, value in module.state_dict().items():
                state[f"{i}:{key}"] = value
        return state

    def load_state_dict(self, state):
        for i, module in enumerate(self.modules):
            module.load_state_dict(
                {k.split(":", 1)[1]: v for k, v in state.items() if k.startswith(f"{i}:")}
            )

    def logits(self, x: np.ndarray) -> Tensor:
        _, h = self.rnn(self.emb(x))
        return self.head(h)

    def zero_grad(self):
        for module in self.modules:
            module.zero_grad()


def encode(corpus: str) -> tuple[np.ndarray, dict[str, int]]:
    chars = sorted(set(corpus))
    table = {c: i for i, c in enumerate(chars)}
    return np.array([table[c] for c in corpus]), table


def make_pairs(ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.stack([ids[i : i + WINDOW] for i in range(len(ids) - WINDOW)])
    y = ids[WINDOW:]
    return x, y


def train(model: CharModel, x: np.ndarray, y: np.ndarray, steps: int, seed: int) -> None:
    opt = Adam(model.parameters(), lr=0.01)
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        idx = rng.choice(len(x), size=min(64, len(x)), replace=False)
        model.zero_grad()
        loss = cross_entropy(model.logits(x[idx]), y[idx])
        loss.backward()
        opt.step()


def accuracy(model: CharModel, x: np.ndarray, y: np.ndarray) -> float:
    return float((model.logits(x).data.argmax(1) == y).mean())


def main() -> None:
    ids, table = encode(CORPUS)
    vocab = len(table)
    x, y = make_pairs(ids)
    cut = int(len(x) * 0.85)
    x_tr, y_tr, x_va, y_va = x[:cut], y[:cut], x[cut:], y[cut:]
    print(f"corpus: {len(ids)} chars, vocab {vocab}, {len(x_tr)} train windows")

    serial = CharModel(vocab, seed=1)
    train(serial, x_tr, y_tr, steps=120, seed=2)

    # VC-ASGD: 4 clients, each owning a contiguous corpus slice.
    template_model = CharModel(vocab, seed=1)
    template = template_model.state_dict()
    server = state_to_vector(template)
    shards = np.array_split(np.arange(len(x_tr)), 4)
    for _ in range(4):  # merge rounds
        for ci, idx in enumerate(shards):
            worker = CharModel(vocab, seed=1)
            worker.load_state_dict(vector_to_state(server, template))
            train(worker, x_tr[idx], y_tr[idx], steps=30, seed=10 + ci)
            server = vcasgd_merge(server, state_to_vector(worker.state_dict()), 0.6)
    merged = CharModel(vocab, seed=1)
    merged.load_state_dict(vector_to_state(server, template))

    print(
        render_table(
            ["model", "val next-char accuracy"],
            [
                ["serial GRU", round(accuracy(serial, x_va, y_va), 3)],
                ["VC-ASGD (4 clients)", round(accuracy(merged, x_va, y_va), 3)],
                ["chance", round(1.0 / vocab, 3)],
            ],
            title="\nCharacter-level text prediction (JSDoop-style workload)",
        )
    )


if __name__ == "__main__":
    main()
