"""Preemptible-fleet scenario: trade money for fault-tolerance work.

The paper's central cost claim (§III-E, §IV-E): run the client fleet on
preemptible instances at a 70-90% discount and let the BOINC timeout /
reissue machinery absorb the terminations.  This example:

1. runs the same job on a "standard" fleet (no preemptions) and on a
   "preemptible" fleet at several interruption rates;
2. reports accuracy, wall clock, recovery counters and the dollar cost of
   each variant;
3. compares the simulated slowdown against the paper's closed-form
   binomial delay model.

Run:  python examples/preemptible_fleet.py
"""

from __future__ import annotations

import dataclasses

from repro.analysis import render_table
from repro.cloud import PricingClass, paper_p5c5t2_fleet
from repro.core import FaultConfig, TrainingJobConfig, run_experiment
from repro.simulation import BernoulliSubtaskModel


def main() -> None:
    base = TrainingJobConfig(
        num_param_servers=3,
        num_clients=5,
        max_concurrent_subtasks=2,
        num_shards=30,
        max_epochs=6,
        seed=21,
    )
    standard_fleet = paper_p5c5t2_fleet(PricingClass.STANDARD)
    preemptible_fleet = paper_p5c5t2_fleet(PricingClass.PREEMPTIBLE)

    rows = []
    baseline_hours = None
    for label, hourly_p, fleet in [
        ("standard", 0.0, standard_fleet),
        ("preemptible p=0.05/h", 0.05, preemptible_fleet),
        ("preemptible p=0.20/h", 0.20, preemptible_fleet),
        ("preemptible p=0.50/h", 0.50, preemptible_fleet),
    ]:
        cfg = dataclasses.replace(
            base,
            faults=FaultConfig(preemption_hourly_p=hourly_p, relaunch_delay_s=120.0),
        )
        result = run_experiment(cfg)
        hours = result.total_time_hours
        if baseline_hours is None:
            baseline_hours = hours
        rows.append(
            [
                label,
                round(result.final_val_accuracy, 3),
                round(hours, 2),
                result.counters["preemptions"],
                result.counters["timeouts"] + result.counters["reissues"],
                f"${fleet.job_cost(hours):.2f}",
            ]
        )
    print(
        render_table(
            ["fleet", "final acc", "hours", "preemptions", "recoveries", "cost"],
            rows,
            title="Preemptible fleet: accuracy, time and cost under interruption",
        )
    )

    # Compare against the paper's analytical delay model for this job shape.
    model = BernoulliSubtaskModel(
        n_s=base.num_shards * base.max_epochs,
        n_c=base.num_clients,
        n_tc=base.max_concurrent_subtasks,
        t_e=2.4 * 60,
        t_o=base.subtask_timeout_s,
    )
    print("\nClosed-form expected delay (paper's binomial model):")
    for p in (0.05, 0.20, 0.50):
        print(
            f"  p={p:.2f}: +{model.expected_delay(p) / 60:.0f} min expected "
            f"(n={model.n:.0f} waves)"
        )
    print(
        "\nTakeaway: the preemptible fleet costs ~70% less per hour; even at "
        "aggressive interruption rates the timeout/reissue machinery keeps "
        "the job converging, paying only bounded extra wall clock."
    )


if __name__ == "__main__":
    main()
