"""ASGD family shootout under volunteer conditions.

Races VC-ASGD against the prior schemes the paper discusses — Downpour
SGD, EASGD, and delay-compensated DC-ASGD — on the round harness with
per-round client dropouts, showing why barrier-style schemes do not fit
volunteer computing (§II-B, §III-C).

Run:  python examples/asgd_shootout.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import ConstantAlpha, VarAlpha
from repro.core.baselines import (
    DCASGDRule,
    DownpourRule,
    EASGDRule,
    RoundConfig,
    RoundHarness,
    SyncAllReduceRule,
    VCASGDRule,
)


def main() -> None:
    for dropout in (0.0, 0.3):
        config = RoundConfig(
            num_clients=5,
            num_rounds=12,
            dropout_p=dropout,
            local_steps=6,
            seed=17,
        )
        harness = RoundHarness(config)
        rules = [
            VCASGDRule(ConstantAlpha(0.7)),
            VCASGDRule(VarAlpha()),
            DownpourRule(server_lr=0.02),
            DCASGDRule(server_lr=0.02, lam=0.04),
            EASGDRule(moving_rate=0.3),
            SyncAllReduceRule(),
        ]
        rows = []
        for rule in rules:
            result = harness.run(rule)
            rows.append(
                [
                    rule.describe(),
                    "yes" if rule.fault_tolerant else "NO",
                    round(result.final_accuracy, 3),
                    round(result.total_time_s / 60, 1),
                    result.total_stalls,
                ]
            )
        print(
            render_table(
                ["rule", "fault tolerant", "final acc", "minutes", "stalls"],
                rows,
                title=f"\nASGD shootout, client dropout p={dropout:.0%} per round",
            )
        )
    print(
        "\nWith dropouts, EASGD's all-clients barrier stalls rounds and burns "
        "wall clock; the fault-tolerant rules keep moving.  This is the "
        "paper's argument for a new update scheme in VC environments."
    )


if __name__ == "__main__":
    main()
