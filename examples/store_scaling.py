"""Parameter-store scaling study (§III-D / §IV-D).

Shows why the paper stores the shared server parameter copy in an
eventual-consistency main-memory store: as the number of parameter servers
grows, the strong store's per-key serialization turns into queueing delay,
while the eventual store scales at the cost of occasional lost updates —
which distributed training tolerates.

Run:  python examples/store_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core import TrainingJobConfig, run_experiment
from repro.kvstore import (
    PAPER_PARAM_BYTES,
    EventualStore,
    StrongStore,
    mysql_like_latency,
    redis_like_latency,
)
from repro.simulation import Simulator


def microbench(num_concurrent: int) -> list[list[object]]:
    """Drive N concurrent parameter-update transactions into both stores."""
    rows = []
    for name, store_cls, latency in [
        ("eventual", EventualStore, redis_like_latency()),
        ("strong", StrongStore, mysql_like_latency()),
    ]:
        sim = Simulator()
        store = store_cls(sim, latency)
        store.put_now("params", np.zeros(8))
        done_times: list[float] = []
        for _ in range(num_concurrent):
            store.read_modify_write(
                "params",
                lambda v: v + 1.0,
                on_done=lambda _v: done_times.append(sim.now),
                nbytes=PAPER_PARAM_BYTES,
            )
        sim.run()
        rows.append(
            [
                f"{name} x{num_concurrent}",
                round(max(done_times), 2),
                round(float(np.mean(done_times)), 2),
                getattr(store, "lost_updates", 0),
            ]
        )
    return rows


def main() -> None:
    print("Micro-benchmark: N concurrent ~21 MB parameter updates\n")
    rows: list[list[object]] = []
    for n in (1, 4, 16):
        rows.extend(microbench(n))
    print(
        render_table(
            ["store x concurrency", "drain time (s)", "mean commit (s)", "lost updates"],
            rows,
            title="Concurrent update transactions (paper-calibrated latencies)",
        )
    )

    print("\nFull pipeline: same job on each store\n")
    rows = []
    for kind in ("eventual", "strong"):
        cfg = TrainingJobConfig(
            num_param_servers=4,
            num_clients=4,
            max_concurrent_subtasks=4,
            num_shards=25,
            max_epochs=3,
            store_kind=kind,
            seed=5,
        )
        result = run_experiment(cfg)
        rows.append(
            [
                kind,
                round(result.total_time_hours, 3),
                round(result.final_val_accuracy, 3),
                result.counters["lost_updates"],
            ]
        )
    print(
        render_table(
            ["store", "hours", "final acc", "lost updates"],
            rows,
            title="P4C4T4 training job, 3 epochs",
        )
    )
    print(
        "\nThe strong store loses nothing but serializes every update; the "
        "eventual store overlaps them.  Training accuracy is essentially "
        "unaffected by the lost updates — the §III-D design bet."
    )


if __name__ == "__main__":
    main()
