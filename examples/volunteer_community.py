"""A living volunteer community: churn, failures, credit (§II-A).

Simulates what a real BOINC project experiences: a small initial fleet,
volunteers joining over time, occasional host deaths, and the credit
ledger that motivates it all.  Prints the training outcome plus the
leaderboard a project website would show.

Run:  python examples/volunteer_community.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import DistributedRunner, FaultConfig, TrainingJobConfig, VarAlpha


def main() -> None:
    config = TrainingJobConfig(
        num_param_servers=2,
        num_clients=2,  # the project starts small...
        max_concurrent_subtasks=2,
        num_shards=30,
        max_epochs=6,
        alpha_schedule=VarAlpha(),
        heartbeats_enabled=True,
        faults=FaultConfig(
            preemption_hourly_p=0.25,  # volunteers leave...
            relaunch_delay_s=None,  # ...for good
            volunteer_arrivals_per_hour=6.0,  # ...but new ones arrive
            max_volunteers=6,
        ),
        seed=2021,
    )
    runner = DistributedRunner(config)
    result = runner.run()

    print(
        render_table(
            ["epoch", "sim hours", "val acc"],
            [
                [r.epoch, round(r.end_time_s / 3600, 2), round(r.val_accuracy_mean, 3)]
                for r in result.epochs
            ],
            title="Training under volunteer churn",
        )
    )
    counters = result.counters
    print(
        f"\nfleet story: {counters['volunteers_joined']} volunteers joined, "
        f"{counters['preemptions']} hosts left mid-work, "
        f"{counters['timeouts']} timeouts, {counters['reissues']} reissues — "
        f"and every one of {counters['assimilations']} updates still landed."
    )

    print("\nProject leaderboard (granted credit):")
    board = runner.server.credit.leaderboard(now=runner.sim.now)
    rows = [
        [
            i + 1,
            host.host_id,
            round(host.total, 1),
            round(host.recent_average, 1),
            host.results_granted,
            host.results_denied,
        ]
        for i, host in enumerate(board[:8])
    ]
    print(
        render_table(
            ["#", "host", "credit", "recent avg", "granted", "denied"], rows
        )
    )


if __name__ == "__main__":
    main()
