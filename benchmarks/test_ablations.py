"""Ablations of the §III design choices (our additions beyond the paper's
figures, as DESIGN.md §4 calls out).

Each ablation toggles one mechanism on a small fixed job and reports its
contribution:

* sticky-file caching (§III-B) — bytes downloaded with/without;
* server-side compression (§III-B) — bytes transferred with/without;
* eventual- vs strong-consistency store (§III-D) — wall clock and lost
  updates under the same workload;
* ASGD baselines under dropouts (§II-B/§III-C) — VC-ASGD vs Downpour vs
  EASGD vs DC-ASGD on the round harness with volunteer-style dropouts.
"""

from __future__ import annotations

import dataclasses

from repro.analysis import format_pct, render_table
from repro.core import ConstantAlpha, TrainingJobConfig, run_experiment
from repro.core.baselines import (
    DCASGDRule,
    DownpourRule,
    EASGDRule,
    RoundConfig,
    RoundHarness,
    SyncAllReduceRule,
    VCASGDRule,
)

from _helpers import emit, run_once


def small_job(**overrides) -> TrainingJobConfig:
    base = TrainingJobConfig(
        max_epochs=3,
        num_param_servers=2,
        num_clients=3,
        max_concurrent_subtasks=2,
        num_shards=20,
        seed=424,
    )
    return dataclasses.replace(base, **overrides)


def test_ablation_sticky_files(benchmark):
    def run() -> tuple[int, int]:
        with_cache = run_experiment(small_job(sticky_files_enabled=True))
        without = run_experiment(small_job(sticky_files_enabled=False))
        return with_cache.counters["bytes_down"], without.counters["bytes_down"]

    cached, uncached = run_once(benchmark, run)
    saving = 1 - cached / uncached
    emit(
        "ablation_sticky_files",
        render_table(
            ["sticky files", "bytes downloaded"],
            [["enabled", cached], ["disabled", uncached], ["saving", format_pct(saving)]],
            title="Ablation: sticky-file caching (3 epochs, 20 shards)",
        ),
    )
    # Re-downloading shards/model every epoch must cost measurably more.
    assert cached < uncached


def test_ablation_compression(benchmark):
    def run() -> tuple[int, int]:
        with_c = run_experiment(small_job(compression_enabled=True))
        without = run_experiment(small_job(compression_enabled=False))
        return (
            with_c.counters["bytes_down"] + with_c.counters["bytes_up"],
            without.counters["bytes_down"] + without.counters["bytes_up"],
        )

    compressed, raw = run_once(benchmark, run)
    emit(
        "ablation_compression",
        render_table(
            ["compression", "bytes on the wire"],
            [
                ["enabled", compressed],
                ["disabled", raw],
                ["saving", format_pct(1 - compressed / raw)],
            ],
            title="Ablation: server-side file compression",
        ),
    )
    assert compressed < raw


def test_ablation_store_consistency(benchmark):
    def run():
        eventual = run_experiment(small_job(store_kind="eventual"))
        strong = run_experiment(small_job(store_kind="strong"))
        return eventual, strong

    eventual, strong = run_once(benchmark, run)
    emit(
        "ablation_store_consistency",
        render_table(
            ["store", "total h", "lost updates", "assimilations"],
            [
                [
                    "eventual (Redis-like)",
                    round(eventual.total_time_hours, 3),
                    eventual.counters["lost_updates"],
                    eventual.counters["assimilations"],
                ],
                [
                    "strong (MySQL-like)",
                    round(strong.total_time_hours, 3),
                    strong.counters["lost_updates"],
                    strong.counters["assimilations"],
                ],
            ],
            title="Ablation: parameter-store consistency in the full pipeline",
        ),
    )
    assert strong.counters["lost_updates"] == 0
    assert strong.total_time_hours > eventual.total_time_hours


def test_ablation_model_choice_invariance(benchmark):
    """§IV-A's claim: "because we use the same model for comparison, these
    model-specific design choices do not affect our conclusions."  We test
    it: the early-epoch α ordering (0.7 learns faster than 0.95) must hold
    across different model choices."""
    from repro.nn.models import ModelSpec

    MODELS = {
        "mlp-64": ModelSpec("mlp", {"in_features": 192, "hidden": [64], "num_classes": 10}),
        "mlp-32x32": ModelSpec(
            "mlp", {"in_features": 192, "hidden": [32, 32], "num_classes": 10}
        ),
        "mlp-bn": ModelSpec(
            "mlp",
            {"in_features": 192, "hidden": [48], "num_classes": 10, "batch_norm": True},
        ),
    }

    def run():
        outcomes = {}
        for name, model in MODELS.items():
            per_alpha = {}
            for alpha in (0.7, 0.95):
                cfg = small_job(
                    max_epochs=4,
                    num_shards=25,
                    model=model,
                    alpha_schedule=ConstantAlpha(alpha),
                )
                per_alpha[alpha] = run_experiment(cfg).final_val_accuracy
            outcomes[name] = per_alpha
        return outcomes

    outcomes = run_once(benchmark, run)
    rows = [
        [name, round(acc[0.7], 3), round(acc[0.95], 3), acc[0.7] > acc[0.95]]
        for name, acc in outcomes.items()
    ]
    emit(
        "ablation_model_invariance",
        render_table(
            ["model", "acc(a=0.7)@e4", "acc(a=0.95)@e4", "0.7 faster early"],
            rows,
            title="Ablation: the early-alpha ordering is model-invariant (SecIV-A)",
        ),
    )
    # The conclusion (small alpha learns faster early) holds for every model.
    for name, acc in outcomes.items():
        assert acc[0.7] > acc[0.95], (name, acc)


def test_ablation_trickle_heartbeats(benchmark):
    """Tight deadlines on a heterogeneous fleet: trickle heartbeats keep
    slow-but-alive clients' work from being yanked and redone."""

    def run():
        tight = dict(subtask_timeout_s=130.0, max_attempts=8, num_shards=12,
                     max_epochs=2, num_clients=3)
        without = run_experiment(small_job(**tight, heartbeats_enabled=False))
        with_hb = run_experiment(small_job(**tight, heartbeats_enabled=True))
        return without, with_hb

    without, with_hb = run_once(benchmark, run)
    rows = [
        [
            "disabled",
            without.counters["timeouts"],
            without.counters["reissues"],
            round(without.total_time_hours, 3),
        ],
        [
            "enabled",
            with_hb.counters["timeouts"],
            with_hb.counters["reissues"],
            round(with_hb.total_time_hours, 3),
        ],
    ]
    emit(
        "ablation_heartbeats",
        render_table(
            ["heartbeats", "timeouts", "reissues", "hours"],
            rows,
            title="Ablation: trickle heartbeats under tight deadlines",
        ),
    )
    assert with_hb.counters["timeouts"] <= without.counters["timeouts"]


def test_ablation_asgd_baselines_under_dropout(benchmark):
    """Race the four update rules under 25% per-round client dropout."""

    def run():
        cfg = RoundConfig(
            num_clients=5,
            num_rounds=10,
            dropout_p=0.25,
            local_steps=6,
            seed=11,
        )
        harness = RoundHarness(cfg)
        rules = [
            VCASGDRule(ConstantAlpha(0.7)),
            DownpourRule(server_lr=0.02),
            DCASGDRule(server_lr=0.02, lam=0.04),
            EASGDRule(moving_rate=0.3),
            SyncAllReduceRule(),
        ]
        return [(r.describe(), harness.run(r)) for r in rules]

    results = run_once(benchmark, run)
    rows = [
        [
            name,
            round(res.final_accuracy, 3),
            round(res.total_time_s / 60, 1),
            res.total_stalls,
        ]
        for name, res in results
    ]
    emit(
        "ablation_asgd_baselines",
        render_table(
            ["rule", "final acc", "time (min)", "stalled rounds"],
            rows,
            title="Ablation: ASGD family under 25% volunteer dropout "
            "(10 rounds, 5 clients)",
        ),
    )
    by_name = dict(results)
    easgd = next(v for k, v in by_name.items() if "EASGD" in k)
    vc = next(v for k, v in by_name.items() if "VC-ASGD" in k)
    # The barrier rule pays wall clock for dropouts; VC-ASGD does not stall.
    assert easgd.total_stalls > 0
    assert vc.total_stalls == 0
    assert easgd.total_time_s > vc.total_time_s
    # VC-ASGD reaches competitive accuracy.
    assert vc.final_accuracy > 0.5
