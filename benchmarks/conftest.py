"""Shared fixtures for the benchmark harness.

Each ``test_*`` module reproduces one table or figure from the paper
(see DESIGN.md §4).  Expensive training runs are computed once per session
and shared; every bench prints the rows/series the paper reports and also
appends them to ``benchmarks/results/<name>.txt`` so the output survives
pytest's capture.

Run with::

    pytest benchmarks/ --benchmark-only

Absolute numbers will not match the paper (our substrate is a simulator
at laptop scale); the *shape* — orderings, crossovers, ratios — is asserted.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    ConstantAlpha,
    RunResult,
    TrainingJobConfig,
    VarAlpha,
    run_experiment,
)
from repro.core.baselines import run_single_instance

from _helpers import ALPHA_EPOCHS, PAPER_EPOCHS, TARGET_ACC


@pytest.fixture(scope="session")
def base_config() -> TrainingJobConfig:
    """The calibrated default job (see EXPERIMENTS.md 'calibration')."""
    return TrainingJobConfig(max_epochs=PAPER_EPOCHS, seed=1234)


@pytest.fixture(scope="session")
def fig2_runs(base_config) -> dict[str, RunResult]:
    """The four Fig. 2 configurations at α = 0.95, full epoch budget."""
    out: dict[str, RunResult] = {}
    for p, c, t in [(1, 3, 2), (1, 3, 8), (3, 3, 8), (5, 5, 2)]:
        cfg = base_config.with_pct(p, c, t).with_alpha(ConstantAlpha(0.95))
        out[cfg.label] = run_experiment(cfg)
    return out


@pytest.fixture(scope="session")
def fig3_grid(base_config) -> dict[str, RunResult]:
    """P ∈ {1,3,5} × T ∈ {2,4,8} runs stopping at the target accuracy."""
    out: dict[str, RunResult] = {}
    for p, c in [(1, 3), (3, 3), (5, 5)]:
        for t in (2, 4, 8):
            cfg = base_config.with_pct(p, c, t).with_alpha(ConstantAlpha(0.95))
            cfg = dataclasses.replace(cfg, target_accuracy=TARGET_ACC)
            out[cfg.label] = run_experiment(cfg)
    return out


@pytest.fixture(scope="session")
def fig4_runs(base_config) -> dict[str, RunResult]:
    """The α study at P3C3T4: 0.7, 0.95, 0.999 and Var (α_e = e/(e+1))."""
    schedules = {
        "0.7": ConstantAlpha(0.7),
        "0.95": ConstantAlpha(0.95),
        "0.999": ConstantAlpha(0.999),
        "Var": VarAlpha(),
    }
    cfg44 = dataclasses.replace(base_config.with_pct(3, 3, 4), max_epochs=ALPHA_EPOCHS)
    return {name: run_experiment(cfg44.with_alpha(s)) for name, s in schedules.items()}


@pytest.fixture(scope="session")
def fig6_runs(base_config) -> dict[str, RunResult]:
    """Fig. 6: distributed P5C5T2 with varying α vs single-instance serial."""
    dist_cfg = base_config.with_pct(5, 5, 2).with_alpha(VarAlpha())
    # The serial baseline uses the same config; its epoch performs the same
    # aggregate optimization work (SingleInstanceTrainer.passes_per_epoch).
    return {
        "distributed": run_experiment(dist_cfg),
        "single": run_single_instance(dist_cfg),
    }


