"""Chaos soak: P3C3T4 under a randomized-but-seeded fault plan.

Every fault layer fires in one run — per-transfer failures and stalls,
timed network partitions, a parameter-server crash with delayed restart,
and key-value store outage/degraded windows — and the harness asserts
the §III-D fault-tolerance story end to end:

* no workunit is lost or double-assimilated (exactly-once updates);
* trace counters are conserved record-for-record;
* training still converges (within noise of the fault-free run) or
  raises ``TrainingError`` loudly — never silently corrupts;
* the same seed + plan reproduces bit-identical results.
"""

from __future__ import annotations

import pathlib
import sys

# The invariant helpers live with the tier-1 soak in tests/chaos/.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from repro.analysis import render_table
from repro.core import FaultConfig, TrainingJobConfig, run_experiment
from repro.core.runner import DistributedRunner
from repro.errors import TrainingError

from _helpers import emit, run_once
from tests.chaos import assert_chaos_invariants, seeded_plan

SOAK_SEED = 1337
SOAK_EPOCHS = 8
# Rough sim-time estimate for window placement (P3C3T4 runs ~670 s/epoch).
HORIZON_S = 5000.0


def soak_config(chaos: bool = True) -> TrainingJobConfig:
    faults = (
        FaultConfig(chaos=seeded_plan(SOAK_SEED, HORIZON_S))
        if chaos
        else FaultConfig()
    )
    return TrainingJobConfig(
        num_param_servers=3,
        num_clients=3,
        max_concurrent_subtasks=4,
        max_epochs=SOAK_EPOCHS,
        seed=1234,
        faults=faults,
    )


def test_chaos_soak_p3c3t4(benchmark):
    def run():
        runner = DistributedRunner(soak_config())
        try:
            result = runner.run()
        except TrainingError as err:  # loud failure is acceptable; silence is not
            return runner, None, repr(err)
        return runner, result, None

    runner, result, loud_failure = run_once(benchmark, run)
    if result is None:
        emit("chaos_soak", f"chaos soak raised loudly: {loud_failure}")
        return

    # Invariants: nothing lost, nothing double-applied, counters conserved.
    assert_chaos_invariants(runner)

    # Bit-identical reproducibility: same seed + same plan → same run.
    repro = run_experiment(soak_config())
    assert repro.counters == result.counters
    assert [e.val_accuracy_mean for e in repro.epochs] == [
        e.val_accuracy_mean for e in result.epochs
    ]
    assert [e.end_time_s for e in repro.epochs] == [
        e.end_time_s for e in result.epochs
    ]

    # Training survived the chaos: all epochs completed and the final
    # accuracy lands within noise of the fault-free run on the same seed.
    clean = run_experiment(soak_config(chaos=False))
    assert len(result.epochs) == SOAK_EPOCHS
    chaos_acc = result.epochs[-1].val_accuracy_mean
    clean_acc = clean.epochs[-1].val_accuracy_mean
    assert chaos_acc >= clean_acc - 0.10

    counters = result.counters
    rows = [
        ["transfer failures", counters["transfer_failures"]],
        ["transfer retries", counters["transfer_retries"]],
        ["transfers abandoned", counters["transfers_abandoned"]],
        ["partition blocks", counters["net_partition_blocks"]],
        ["PS crashes / recoveries", f"{counters['ps_crashes']} / {counters['ps_recoveries']}"],
        ["PS adoptions", counters["ps_adoptions"]],
        ["KV outage blocks", counters["kv_outage_blocks"]],
        ["KV degraded ops", counters["kv_degraded_ops"]],
        ["scheduler timeouts", counters["timeouts"]],
        ["assimilations", counters["assimilations"]],
        ["final val acc (chaos)", f"{chaos_acc:.3f}"],
        ["final val acc (clean)", f"{clean_acc:.3f}"],
        [
            "chaos slowdown",
            f"{result.epochs[-1].end_time_s / clean.epochs[-1].end_time_s:.2f}x",
        ],
    ]
    emit(
        "chaos_soak",
        render_table(
            ["fault layer", "value"],
            rows,
            title=f"Chaos soak: P3C3T4, seed {SOAK_SEED}, {SOAK_EPOCHS} epochs",
        ),
    )

    # Every marquee layer actually fired under this seeded plan.
    assert counters["transfer_failures"] > 0
    assert counters["transfer_retries"] > 0
    assert counters["ps_crashes"] == 1
    assert counters["ps_recoveries"] == 1
