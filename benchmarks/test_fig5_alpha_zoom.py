"""Fig. 5 reproduction: zoomed windows of the Fig. 4 α study.

Fig. 5 zooms into a mid-training window and an end-of-training window of
Fig. 4 to make two subtle claims legible:

(a) the Var schedule's accuracy rises faster than α = 0.95 mid-training;
(b) near the end, Var's accuracy spread is smaller than either constant-α
    run (0.7 or 0.95).

We reproduce by windowing the same runs: the mid window covers the central
third of training and the end window the final sixth (the paper's 6–10 h
and 10–14 h windows of its ~14 h experiment).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core import RunResult

from _helpers import emit, run_once


def window_stats(result: RunResult, lo_frac: float, hi_frac: float):
    total_h = result.total_time_hours
    records = result.window(lo_frac * total_h, hi_frac * total_h)
    accs = np.array([r.val_accuracy_mean for r in records])
    spreads = np.array([r.val_accuracy_spread for r in records])
    return accs, spreads


def test_fig5_zoomed_windows(benchmark, fig4_runs):
    MID = (0.40, 0.70)  # the paper's 6-10 h of ~14 h
    END = (0.80, 1.01)  # the paper's final window

    def build() -> str:
        rows = []
        for name in ("0.7", "0.95", "Var"):
            result = fig4_runs[name]
            mid_acc, mid_spread = window_stats(result, *MID)
            end_acc, end_spread = window_stats(result, *END)
            rows.append(
                [
                    name,
                    round(float(mid_acc.mean()), 4),
                    round(float(mid_spread.mean()), 4),
                    round(float(end_acc.mean()), 4),
                    round(float(end_spread.mean()), 4),
                ]
            )
        return render_table(
            ["alpha", "mid acc", "mid spread", "end acc", "end spread"],
            rows,
            title="Fig. 5: zoomed windows of the alpha study (P3C3T4)",
        )

    table = run_once(benchmark, build)
    emit("fig5_alpha_zoom", table)

    mid = {n: window_stats(fig4_runs[n], *MID) for n in ("0.7", "0.95", "Var")}
    end = {n: window_stats(fig4_runs[n], *END) for n in ("0.7", "0.95", "Var")}

    # (a) mid-training: Var above 0.95.
    assert mid["Var"][0].mean() > mid["0.95"][0].mean()

    # (b) end-of-training: Var's spread is the smallest of the three.
    assert end["Var"][1].mean() <= end["0.7"][1].mean()
    assert end["Var"][1].mean() <= end["0.95"][1].mean()

    # Sanity: windows are non-empty for every run.
    for name in ("0.7", "0.95", "Var"):
        assert len(mid[name][0]) > 0 and len(end[name][0]) > 0
