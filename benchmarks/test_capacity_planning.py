"""Capacity-planner benches: the paper's analytic scaling arguments.

Reproduces in planner form:

* §IV-B's parameter-server sizing — a single PS saturates as Cn × Tn grows
  and the minimum stable Pn rises;
* §IV-D's ImageNet extrapolation — ~1.6 M updates and ~187 h of
  strong-consistency overhead;
* the planner-vs-simulator cross-check (the estimate must track the DES).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.cloud import cifar10_workload, imagenet_workload, plan_capacity
from repro.core import ConstantAlpha, TrainingJobConfig, run_experiment
from repro.kvstore import mysql_like_latency

from _helpers import emit, run_once


def test_ps_sizing_table(benchmark):
    def build() -> str:
        rows = []
        for clients, concurrency in [(3, 2), (3, 8), (5, 2), (5, 8), (10, 8)]:
            est = plan_capacity(
                cifar10_workload(),
                num_clients=clients,
                concurrency=concurrency,
                num_param_servers=1,
            )
            rows.append(
                [
                    f"C{clients}T{concurrency}",
                    round(est.ps_utilization, 2),
                    est.bottleneck,
                    est.min_param_servers,
                    round(est.job_hours, 2),
                ]
            )
        return render_table(
            ["fleet", "rho at P1", "bottleneck", "min Pn", "hours at P1"],
            rows,
            title="SecIV-B: parameter-server sizing (analytic)",
        )

    table = run_once(benchmark, build)
    emit("capacity_ps_sizing", table)

    low = plan_capacity(cifar10_workload(), num_clients=3, concurrency=2,
                        num_param_servers=1)
    high = plan_capacity(cifar10_workload(), num_clients=10, concurrency=8,
                         num_param_servers=1)
    assert low.bottleneck == "clients"
    assert high.bottleneck == "parameter-servers"
    assert high.min_param_servers > low.min_param_servers


def test_imagenet_extrapolation(benchmark):
    def build() -> str:
        rows = []
        for wl in (cifar10_workload(), imagenet_workload()):
            est = plan_capacity(
                wl, num_clients=5, concurrency=2, num_param_servers=5,
                store=mysql_like_latency(),
            )
            rows.append(
                [
                    wl.name,
                    f"{wl.total_subtasks:,}",
                    round(est.store_overhead_hours, 1),
                    round(est.job_hours, 1),
                ]
            )
        return render_table(
            ["workload", "updates", "strong-store overhead (h)", "job (h)"],
            rows,
            title="SecIV-D extrapolation: CIFAR10 -> ImageNet (800x data)",
        )

    table = run_once(benchmark, build)
    emit("capacity_imagenet", table)

    imagenet = plan_capacity(
        imagenet_workload(), num_clients=5, concurrency=2, num_param_servers=5,
        store=mysql_like_latency(),
    )
    # The paper's headline numbers.
    assert imagenet_workload().total_subtasks == 1_600_000
    assert 180 < imagenet.store_overhead_hours < 195


def test_planner_vs_simulator(benchmark):
    """The analytic epoch estimate tracks the event simulation closely on a
    client-bound configuration."""

    def run() -> tuple[float, float]:
        cfg = TrainingJobConfig(
            num_param_servers=3,
            num_clients=3,
            max_concurrent_subtasks=2,
            max_epochs=3,
            alpha_schedule=ConstantAlpha(0.95),
        )
        sim_epoch = run_experiment(cfg).total_time_s / 3
        est = plan_capacity(
            cifar10_workload(), num_clients=3, concurrency=2, num_param_servers=3
        )
        plan_epoch = est.job_hours * 3600 / cifar10_workload().epochs
        return plan_epoch, sim_epoch

    plan_epoch, sim_epoch = run_once(benchmark, run)
    error = abs(plan_epoch - sim_epoch) / sim_epoch
    emit(
        "capacity_crosscheck",
        f"planner epoch={plan_epoch:.1f}s vs simulator epoch={sim_epoch:.1f}s "
        f"(error {100 * error:.1f}%)",
    )
    assert error < 0.15
