"""§IV-D reproduction: eventual- vs strong-consistency parameter store.

The paper's numbers: one parameter-update transaction on the ~21.2 MB
parameter value takes **0.87 s in Redis** vs **1.29 s in MySQL** (≈1.5×);
over CIFAR10's ~2 000 updates MySQL adds ~14 minutes; extrapolating to
ImageNet's ~1 600 000 updates the overhead is ~187 hours.

Reproduced in three parts:

* the calibrated latency models hit the paper's per-op numbers exactly;
* the overhead table (CIFAR10 and ImageNet rows) is regenerated;
* a live micro-benchmark measures the real in-memory cost of one VC-ASGD
  merge transaction on a paper-sized (~5M scalar) vector, confirming the
  transaction is store-latency-bound rather than compute-bound.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core.vcasgd import vcasgd_merge
from repro.kvstore import (
    PAPER_MYSQL_UPDATE_S,
    PAPER_PARAM_BYTES,
    PAPER_REDIS_UPDATE_S,
    EventualStore,
    StrongStore,
    mysql_like_latency,
    redis_like_latency,
)
from repro.simulation import Simulator

from _helpers import emit, run_once

# Paper workload shapes.
CIFAR10_UPDATES = 2_000
IMAGENET_UPDATES = 1_600_000
PAPER_PARAMS = 4_941_578  # trainable parameters of the paper's ResNetV2


def test_secIVD_update_latency_table(benchmark):
    redis = redis_like_latency()
    mysql = mysql_like_latency()

    def build() -> str:
        r = redis.update(PAPER_PARAM_BYTES)
        m = mysql.update(PAPER_PARAM_BYTES)
        rows = [
            ["per-update latency (s)", round(r, 3), round(m, 3), round(m / r, 2)],
            [
                "CIFAR10 overhead (min, 2k updates)",
                0.0,
                round((m - r) * CIFAR10_UPDATES / 60, 1),
                "",
            ],
            [
                "ImageNet overhead (h, 1.6M updates)",
                0.0,
                round((m - r) * IMAGENET_UPDATES / 3600, 1),
                "",
            ],
        ]
        return render_table(
            ["quantity", "Redis-like", "MySQL-like", "ratio"],
            rows,
            title="SecIV-D: eventual vs strong consistency parameter store",
        )

    table = run_once(benchmark, build)
    emit("secIVD_kvstore", table)

    # Paper anchors, exactly.
    assert redis.update(PAPER_PARAM_BYTES) == PAPER_REDIS_UPDATE_S
    assert mysql.update(PAPER_PARAM_BYTES) == PAPER_MYSQL_UPDATE_S

    # "1.5 times longer for each update transaction".
    ratio = PAPER_MYSQL_UPDATE_S / PAPER_REDIS_UPDATE_S
    assert 1.4 < ratio < 1.6

    # "Using MySQL adds an overhead of 14 minutes" over ~2 000 updates.
    overhead_min = (
        (PAPER_MYSQL_UPDATE_S - PAPER_REDIS_UPDATE_S) * CIFAR10_UPDATES / 60
    )
    assert 13.0 < overhead_min < 15.0

    # ImageNet extrapolation "~187 hours".
    overhead_h = (
        (PAPER_MYSQL_UPDATE_S - PAPER_REDIS_UPDATE_S) * IMAGENET_UPDATES / 3600
    )
    assert 180.0 < overhead_h < 195.0


def test_secIVD_live_merge_microbenchmark(benchmark):
    """Real compute cost of one Eq. 1 merge on a paper-sized vector.

    Asserts the in-memory merge is far cheaper than the modeled store
    latency — i.e. the §IV-D bottleneck really is the store, as the paper
    argues, not the arithmetic.
    """
    rng = np.random.default_rng(0)
    server = rng.normal(size=PAPER_PARAMS)
    client = rng.normal(size=PAPER_PARAMS)

    def merge_once() -> None:
        vcasgd_merge(server, client, 0.95, out=server)

    benchmark(merge_once)
    seconds = benchmark.stats.stats.mean
    assert seconds < PAPER_REDIS_UPDATE_S


def test_secIVD_concurrent_update_outcome(benchmark):
    """Simulated concurrency: the strong store applies every update but
    stretches wall clock; the eventual store finishes sooner and drops
    overlapping updates — the scalability trade §III-D accepts."""

    def run() -> tuple[float, float, int]:
        n = 10
        redis_sim, mysql_sim = Simulator(), Simulator()
        redis = EventualStore(redis_sim, redis_like_latency())
        mysql = StrongStore(mysql_sim, mysql_like_latency())
        for store in (redis, mysql):
            store.put_now("params", 0)
            for _ in range(n):
                store.read_modify_write(
                    "params", lambda v: v + 1, nbytes=PAPER_PARAM_BYTES
                )
            store.sim.run()
        return mysql_sim.now, redis_sim.now, redis.lost_updates

    mysql_time, redis_time, lost = run_once(benchmark, run)
    emit(
        "secIVD_concurrency",
        f"10 concurrent updates: strong={mysql_time:.2f}s (all applied), "
        f"eventual={redis_time:.2f}s ({lost} lost updates)",
    )
    assert mysql_time > redis_time
    assert lost > 0
