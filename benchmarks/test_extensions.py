"""Benches for the §II-C / §III-D mechanisms the paper describes but does
not plot: workunit replication with quorum validation, dynamic
parameter-server scaling, and Downpour-style warm starting.
"""

from __future__ import annotations

import dataclasses

from repro.analysis import render_table
from repro.core import (
    AutoscalePolicy,
    TrainingJobConfig,
    run_experiment,
)

from _helpers import emit, run_once


def small_job(**overrides) -> TrainingJobConfig:
    base = TrainingJobConfig(
        max_epochs=3,
        num_param_servers=1,
        num_clients=4,
        max_concurrent_subtasks=2,
        num_shards=16,
        seed=911,
    )
    return dataclasses.replace(base, **overrides)


def test_replication_quorum(benchmark):
    """Replication doubles compute but verifies every result."""

    def run():
        plain = run_experiment(small_job())
        replicated = run_experiment(small_job(replicas=2, quorum=2))
        return plain, replicated

    plain, replicated = run_once(benchmark, run)
    rows = [
        [
            "no replication",
            round(plain.total_time_hours, 3),
            plain.counters["assimilations"],
            "-",
            "-",
        ],
        [
            "2x replicas, quorum 2",
            round(replicated.total_time_hours, 3),
            replicated.counters["assimilations"],
            replicated.counters["quorums_reached"],
            replicated.counters["replica_disagreements"],
        ],
    ]
    emit(
        "ext_replication",
        render_table(
            ["config", "hours", "assimilations", "quorums", "disagreements"],
            rows,
            title="Extension: workunit replication + quorum (SecII-C)",
        ),
    )
    assert replicated.counters["quorums_reached"] == 16 * 3
    assert replicated.counters["replica_disagreements"] == 0
    # Redundancy costs wall clock (twice the subtasks on the same fleet).
    assert replicated.total_time_hours > plain.total_time_hours
    # Accuracy is unharmed.
    assert abs(replicated.final_val_accuracy - plain.final_val_accuracy) < 0.1


def test_ps_autoscaling(benchmark):
    """Autoscaling recovers the Fig. 3 P1-at-high-T regression without
    hand-picking Pn."""

    def run():
        burst = dict(num_clients=4, max_concurrent_subtasks=6, num_shards=24)
        fixed = run_experiment(small_job(**burst, num_param_servers=1))
        auto = run_experiment(
            small_job(
                **burst,
                num_param_servers=1,
                ps_autoscale=True,
                autoscale_policy=AutoscalePolicy(
                    min_servers=1, max_servers=6, cooldown_s=5.0
                ),
            )
        )
        return fixed, auto

    fixed, auto = run_once(benchmark, run)
    rows = [
        ["fixed P1", round(fixed.total_time_hours, 3), "-", "-"],
        [
            "autoscaled",
            round(auto.total_time_hours, 3),
            auto.counters["ps_scale_ups"],
            auto.counters["ps_final_workers"],
        ],
    ]
    emit(
        "ext_autoscale",
        render_table(
            ["pool", "hours", "scale-ups", "final workers"],
            rows,
            title="Extension: dynamic PS scaling (SecIII-D) under a T6 burst",
        ),
    )
    assert auto.counters["ps_scale_ups"] >= 1
    assert auto.total_time_hours < fixed.total_time_hours


def test_heterogeneity_straggler_cost(benchmark):
    """'Heterogeneity of compute nodes' (§I): a mixed Table I fleet pays a
    straggler penalty against a uniform fleet of the same aggregate speed —
    waves finish when the slowest client does."""
    from repro.simulation import TABLE1_CLIENTS, InstanceSpec

    def run():
        mixed = run_experiment(
            small_job(num_clients=4, client_specs=TABLE1_CLIENTS, max_epochs=3)
        )
        # A uniform fleet at the Table I clients' mean clock (2.575 GHz).
        uniform_spec = InstanceSpec(
            "uniform", vcpus=8, clock_ghz=2.575, ram_gb=30, network_gbps=4
        )
        uniform = run_experiment(
            small_job(num_clients=4, client_specs=(uniform_spec,), max_epochs=3)
        )
        return mixed, uniform

    mixed, uniform = run_once(benchmark, run)
    rows = [
        ["Table I mixed", round(mixed.total_time_hours, 3),
         round(mixed.final_val_accuracy, 3)],
        ["uniform (same mean clock)", round(uniform.total_time_hours, 3),
         round(uniform.final_val_accuracy, 3)],
        ["straggler penalty",
         f"{100 * (mixed.total_time_hours / uniform.total_time_hours - 1):.1f}%",
         ""],
    ]
    emit(
        "ext_heterogeneity",
        render_table(
            ["fleet", "hours", "final acc"],
            rows,
            title="Extension: heterogeneous-fleet straggler cost",
        ),
    )
    # Heterogeneity costs time, not accuracy.
    assert mixed.total_time_hours >= uniform.total_time_hours
    assert abs(mixed.final_val_accuracy - uniform.final_val_accuracy) < 0.1


def test_warm_starting(benchmark):
    """Downpour-style warm start: serial preamble buys early accuracy."""

    def run():
        cold = run_experiment(small_job(max_epochs=2))
        warm = run_experiment(small_job(max_epochs=2, warm_start_passes=6))
        return cold, warm

    cold, warm = run_once(benchmark, run)
    rows = [
        [
            "cold start",
            round(cold.epochs[0].val_accuracy_mean, 3),
            round(cold.epochs[0].end_time_s / 60, 1),
        ],
        [
            "warm start (6 passes)",
            round(warm.epochs[0].val_accuracy_mean, 3),
            round(warm.epochs[0].end_time_s / 60, 1),
        ],
    ]
    emit(
        "ext_warmstart",
        render_table(
            ["start", "epoch-1 acc", "epoch-1 ends (min)"],
            rows,
            title="Extension: warm starting (SecII-B, Downpour)",
        ),
    )
    assert warm.epochs[0].val_accuracy_mean > cold.epochs[0].val_accuracy_mean
    assert warm.epochs[0].end_time_s > cold.epochs[0].end_time_s
