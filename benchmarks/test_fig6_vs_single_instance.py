"""Fig. 6 reproduction: distributed (P5C5T2, varying α) vs single-instance.

The paper's three observations on the validation plot, plus the test-split
confirmation:

1. at a fixed early/mid wall-clock time the single-instance baseline is
   ahead (their 8.4 h readings: 0.82 vs 0.73);
2. the gap narrows as training time increases;
3. the distributed curve is smoother (fewer fluctuations) than the
   single-instance curve;
4. test accuracy evolves like validation accuracy for the distributed run.

Deviation note (EXPERIMENTS.md): on our shallow synthetic substrate the
distributed run reaches parity at the very end instead of remaining below —
parameter averaging over 50 i.i.d. shards regularizes a small MLP more than
it hurts, unlike the paper's 552-layer ResNet.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    ascii_chart,
    final_gap,
    interpolate_to_grid,
    render_table,
    smoothness,
)

from _helpers import emit, run_once


def test_fig6_distributed_vs_single(benchmark, fig6_runs):
    dist = fig6_runs["distributed"]
    single = fig6_runs["single"]

    # Common wall-clock grid over the overlapping range.
    hi = min(dist.total_time_hours, single.total_time_hours)
    grid = np.linspace(0.3, hi, 60)
    d_acc = interpolate_to_grid(dist.times_hours(), dist.val_accuracy(), grid)
    s_acc = interpolate_to_grid(single.times_hours(), single.val_accuracy(), grid)

    def build() -> str:
        quarts = [0, len(grid) // 4, len(grid) // 2, 3 * len(grid) // 4, -1]
        rows = [
            [
                f"t={grid[i]:.2f}h",
                round(float(s_acc[i]), 3),
                round(float(d_acc[i]), 3),
                round(float(s_acc[i] - d_acc[i]), 3),
            ]
            for i in quarts
        ]
        table = render_table(
            ["time", "single val", "distributed val", "gap"],
            rows,
            title="Fig. 6: validation accuracy, single-instance vs P5C5T2(Var)",
        )
        extra = render_table(
            ["curve", "final val", "final test", "smoothness (lower=smoother)"],
            [
                [
                    "single",
                    round(single.final_val_accuracy, 3),
                    round(single.final_test_accuracy, 3),
                    round(smoothness(single.val_accuracy()), 5),
                ],
                [
                    "distributed",
                    round(dist.final_val_accuracy, 3),
                    round(dist.final_test_accuracy, 3),
                    round(smoothness(dist.val_accuracy()), 5),
                ],
            ],
        )
        chart = ascii_chart(
            {
                "single": (single.times_hours(), single.val_accuracy()),
                "distributed": (dist.times_hours(), dist.val_accuracy()),
            },
            width=72,
            height=18,
            title="Fig. 6 (ASCII): single-instance vs distributed validation accuracy",
            x_label="hours",
            y_label="accuracy",
        )
        return table + "\n\n" + extra + "\n\n" + chart

    table = run_once(benchmark, build)
    emit("fig6_vs_single_instance", table)

    # (1) early/mid training: single-instance ahead at matched wall clock.
    early = slice(0, len(grid) // 3)
    assert float((s_acc[early] - d_acc[early]).mean()) > 0.0

    # (2) the gap narrows with time.
    early_gap = float((s_acc[early] - d_acc[early]).mean())
    late_gap = float((s_acc[-10:] - d_acc[-10:]).mean())
    assert late_gap < early_gap

    # (3) the distributed curve is smoother.
    assert smoothness(dist.val_accuracy()) <= smoothness(single.val_accuracy())

    # (4) test tracks validation for the distributed run.
    assert abs(final_gap(dist.test_accuracy(), dist.val_accuracy())) < 0.05
