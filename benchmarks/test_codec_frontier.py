"""Codec frontier: compression x staleness x update rule.

Every cell trains the Fig. 2-class default job (P1C3, ~5.5M scalars)
under one wire codec, one concurrency level (T is the staleness knob:
more in-flight subtasks = staler updates) and one update rule, and
records what the codec plane actually charged the simulated wire plus
the accuracy the run actually reached — lossy cells train on decoded
parameters, so the accuracy column is measured, not assumed.

The committed artifact is ``BENCH_codec.json`` at the repo root (full
grid; ``benchmarks/results/codec_frontier.txt`` carries the table).  The
headline assertion is the frontier claim: at least one lossy codec cuts
total bytes on the wire by >= 4x against the measured zlib baseline while
giving up <= 2 accuracy points.

Quick mode (``REPRO_CODEC_QUICK=1``, the CI codec-smoke job) trims the
grid to the zlib baseline plus two lossy codecs at T2/VC-ASGD and writes
``benchmarks/results/codec_frontier_quick.json`` instead.  With
``REPRO_CODEC_BASELINE=<file>`` the run is additionally gated against a
committed report: per-codec encode throughput may not regress more than
2x, and no shared cell may exceed its committed bytes-on-wire by > 5%
(wire sizes are deterministic; the slack covers schema evolution only).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.analysis import render_table
from repro.core import DistributedRunner, TrainingJobConfig, make_rule
from repro.nn.codecs import make_codec
from repro.nn.serialization import StateLayout

from _helpers import RESULTS_DIR, emit, run_once

SCHEMA = "repro.bench.codec.v1"
QUICK = os.environ.get("REPRO_CODEC_QUICK", "") not in ("", "0")
BASELINE = os.environ.get("REPRO_CODEC_BASELINE", "")
ROOT = pathlib.Path(__file__).resolve().parent.parent

FRONTIER_EPOCHS = 16
CODECS = (None, "zlib", "fp16", "int8", "topk", "delta")
# (rule, concurrency) slices.  T is the staleness knob for VC-ASGD;
# Downpour at this scale only tolerates T2 (T8's staleness diverges it
# at any server_lr — same instability the rule-family race documents),
# so the gradient-stream codec path is swept at T2 only.
SLICES = (("vcasgd", 2), ("vcasgd", 8), ("downpour", 2))
DOWNPOUR_LR = 0.02

QUICK_CODECS = ("zlib", "int8", "topk")
QUICK_SLICES = (("vcasgd", 2),)

# Frontier claim thresholds (the ISSUE's acceptance bar).
MIN_WIRE_REDUCTION = 4.0
MAX_ACC_LOSS = 0.02


def cell_config(codec: str | None, concurrency: int, rule: str) -> TrainingJobConfig:
    return TrainingJobConfig(
        max_concurrent_subtasks=concurrency,
        max_epochs=FRONTIER_EPOCHS,
        seed=1234,
        codec=codec,
        update_rule=(
            None if rule == "vcasgd" else make_rule(rule, server_lr=DOWNPOUR_LR)
        ),
    )


def run_cell(codec: str | None, concurrency: int, rule: str) -> dict[str, object]:
    runner = DistributedRunner(cell_config(codec, concurrency, rule))
    result = runner.run()
    c = result.counters
    cell: dict[str, object] = {
        "codec": codec or "none",
        "concurrency": concurrency,
        "rule": rule,
        "final_val_accuracy": round(result.final_val_accuracy, 4),
        "mean_staleness_x100": c["mean_staleness_x100"],
        "bytes_down": c["bytes_down"],
        "bytes_up": c["bytes_up"],
        "wire_total_bytes": c["bytes_down"] + c["bytes_up"],
    }
    plane = runner._codec_plane
    if plane is not None:
        cell.update(
            publish_raw_bytes=c["codec_publish_raw_bytes"],
            publish_wire_bytes=c["codec_publish_wire_bytes"],
            upload_raw_bytes=c["codec_upload_raw_bytes"],
            upload_wire_bytes=c["codec_upload_wire_bytes"],
            encode_cpu_s=round(plane.encode_cpu_s, 4),
            decode_cpu_s=round(plane.decode_cpu_s, 4),
        )
    return cell


def micro_throughput() -> dict[str, dict[str, float]]:
    """Encode/decode MB/s per codec on a paper-scale parameter vector."""
    template = TrainingJobConfig()
    from repro.nn.models import build_model

    state = build_model(template.model, np.random.default_rng(7)).state_dict()
    layout = StateLayout(state)
    vec = np.random.default_rng(11).normal(size=layout.total_size)
    mb = vec.nbytes / 1e6
    out: dict[str, dict[str, float]] = {}
    for name in ("zlib", "fp16", "int8", "topk", "delta"):
        codec = make_codec(name)
        best_enc = min(
            _timed(lambda: codec.encode(vec, layout)) for _ in range(3)
        )
        encoded = codec.encode(vec, layout)
        best_dec = min(_timed(lambda: codec.decode(encoded)) for _ in range(3))
        out[name] = {
            "encode_mb_s": round(mb / best_enc, 1),
            "decode_mb_s": round(mb / best_dec, 1),
            "wire_bytes": encoded.nbytes,
        }
    return out


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def check_baseline(report: dict, baseline_path: str) -> list[str]:
    """2x encode-throughput gate + bytes-on-wire ceiling vs a committed run."""
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    failures: list[str] = []
    for name, mine in report["micro"].items():
        ref = baseline.get("micro", {}).get(name)
        if ref is None:
            continue
        if mine["encode_mb_s"] < ref["encode_mb_s"] / 2.0:
            failures.append(
                f"encode throughput regression: {name} "
                f"{mine['encode_mb_s']} MB/s vs baseline {ref['encode_mb_s']}"
            )
    ref_cells = {
        (c["codec"], c["concurrency"], c["rule"]): c
        for c in baseline.get("cells", [])
    }
    for cell in report["cells"]:
        ref = ref_cells.get((cell["codec"], cell["concurrency"], cell["rule"]))
        if ref is None:
            continue
        if cell["wire_total_bytes"] > ref["wire_total_bytes"] * 1.05:
            failures.append(
                f"bytes-on-wire ceiling: {cell['codec']}/T{cell['concurrency']}"
                f"/{cell['rule']} sent {cell['wire_total_bytes']} "
                f"(ceiling {ref['wire_total_bytes']})"
            )
    return failures


def test_codec_frontier(benchmark):
    codecs = QUICK_CODECS if QUICK else CODECS
    slices = QUICK_SLICES if QUICK else SLICES

    def sweep():
        cells = [
            run_cell(codec, t, rule)
            for rule, t in slices
            for codec in codecs
        ]
        return cells, micro_throughput()

    cells, micro = run_once(benchmark, sweep)
    report = {
        "schema": SCHEMA,
        "quick": QUICK,
        "epochs": FRONTIER_EPOCHS,
        "cells": cells,
        "micro": micro,
    }

    rows = [
        [
            c["codec"],
            f"T{c['concurrency']}",
            c["rule"],
            f"{c['wire_total_bytes'] / 1e6:.1f}",
            f"{c['final_val_accuracy']:.3f}",
            c.get("encode_cpu_s", "-"),
            c.get("decode_cpu_s", "-"),
        ]
        for c in cells
    ]
    emit(
        "codec_frontier_quick" if QUICK else "codec_frontier",
        render_table(
            ["codec", "T", "rule", "wire MB", "final acc", "enc s", "dec s"],
            rows,
            title=f"Codec frontier ({FRONTIER_EPOCHS} epochs, "
            "wire = bytes_down + bytes_up)",
        ),
    )

    out = (
        RESULTS_DIR / "codec_frontier_quick.json"
        if QUICK
        else ROOT / "BENCH_codec.json"
    )
    out.write_text(json.dumps(report, indent=1) + "\n")
    print(f"report written to {out}")

    # The frontier claim: per (T, rule) slice containing the zlib
    # baseline, >= 1 lossy codec must cut wire bytes >= 4x while losing
    # <= 2 accuracy points.
    by_slice: dict[tuple[int, str], list[dict]] = {}
    for cell in cells:
        by_slice.setdefault((cell["concurrency"], cell["rule"]), []).append(cell)
    for (t, rule), group in by_slice.items():
        base = next(c for c in group if c["codec"] == "zlib")
        lossy = [c for c in group if c["codec"] in ("fp16", "int8", "topk")]
        if not lossy:
            continue
        frontier = [
            c
            for c in lossy
            if base["wire_total_bytes"] / c["wire_total_bytes"]
            >= MIN_WIRE_REDUCTION
            and base["final_val_accuracy"] - c["final_val_accuracy"]
            <= MAX_ACC_LOSS
        ]
        assert frontier, (t, rule, group)

    # Delta is lossless: identical accuracy to the zlib baseline on the
    # same slice, at no more wire than the baseline.
    for (t, rule), group in by_slice.items():
        base = next((c for c in group if c["codec"] == "zlib"), None)
        delta = next((c for c in group if c["codec"] == "delta"), None)
        if base is None or delta is None:
            continue
        assert delta["final_val_accuracy"] == base["final_val_accuracy"]
        assert delta["wire_total_bytes"] <= base["wire_total_bytes"]

    if BASELINE:
        failures = check_baseline(report, BASELINE)
        assert not failures, "\n".join(failures)
