"""§IV-E reproduction (cost): preemptible vs standard instance pricing.

Paper anchors for the P5C5T2 fleet (5 instances, 40 vCPU, 160 GB total):
$1.67/h standard vs $0.50/h preemptible (70% saving); the 8-hour run costs
$13.4 vs $4.  Also reproduces the horizontal-vs-vertical scaling cost note
(10 small instances vs 5 large ones).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.cloud import Fleet, FleetMember, PricingClass, default_price_book, paper_p5c5t2_fleet
from repro.simulation import InstanceSpec

from _helpers import emit, run_once

RUN_HOURS = 8.0


def test_secIVE_fleet_cost(benchmark):
    def build() -> str:
        standard = paper_p5c5t2_fleet(PricingClass.STANDARD)
        preempt = paper_p5c5t2_fleet(PricingClass.PREEMPTIBLE)
        rows = [
            [
                "standard",
                standard.total_vcpus,
                standard.total_ram_gb,
                round(standard.hourly_cost(), 3),
                round(standard.job_cost(RUN_HOURS), 2),
            ],
            [
                "preemptible",
                preempt.total_vcpus,
                preempt.total_ram_gb,
                round(preempt.hourly_cost(), 3),
                round(preempt.job_cost(RUN_HOURS), 2),
            ],
            [
                "saving",
                "",
                "",
                f"{100 * preempt.savings_fraction():.0f}%",
                round(standard.job_cost(RUN_HOURS) - preempt.job_cost(RUN_HOURS), 2),
            ],
        ]
        return render_table(
            ["pricing", "vCPU", "RAM (GB)", "$/hour", f"$ for {RUN_HOURS:.0f} h"],
            rows,
            title="SecIV-E: P5C5T2 fleet cost, standard vs preemptible",
        )

    table = run_once(benchmark, build)
    emit("secIVE_cost", table)

    standard = paper_p5c5t2_fleet(PricingClass.STANDARD)
    preempt = paper_p5c5t2_fleet(PricingClass.PREEMPTIBLE)

    # Paper anchors.
    assert standard.hourly_cost() == pytest.approx(1.67, abs=0.01)
    assert preempt.hourly_cost() == pytest.approx(0.50, abs=0.01)
    assert standard.job_cost(RUN_HOURS) == pytest.approx(13.4, abs=0.1)
    assert preempt.job_cost(RUN_HOURS) == pytest.approx(4.0, abs=0.05)
    assert preempt.savings_fraction() == pytest.approx(0.70, abs=0.005)


def test_secIVE_horizontal_vs_vertical(benchmark):
    """10 × (4 vCPU/16 GB) vs 5 × (8 vCPU/32 GB): equal capacity; the paper
    notes per-pool discounts can make one cheaper.  With a deeper discount
    on the small pool the horizontal fleet wins."""

    def build() -> str:
        small = InstanceSpec("small", vcpus=4, clock_ghz=2.2, ram_gb=16, network_gbps=5)
        large = InstanceSpec("large", vcpus=8, clock_ghz=2.2, ram_gb=32, network_gbps=5)
        base = default_price_book()
        deeper = type(base)(
            per_vcpu_hour=base.per_vcpu_hour,
            per_gb_hour=base.per_gb_hour,
            preemptible_discount=0.85,  # small pool discounted 85%
        )
        horizontal = Fleet([FleetMember(small) for _ in range(10)], deeper)
        vertical = Fleet([FleetMember(large) for _ in range(5)], base)
        rows = [
            ["10 x small (85% disc.)", horizontal.total_vcpus, round(horizontal.hourly_cost(), 3)],
            ["5 x large (70% disc.)", vertical.total_vcpus, round(vertical.hourly_cost(), 3)],
        ]
        return render_table(
            ["fleet", "vCPU", "$/hour"],
            rows,
            title="SecIV-E: horizontal vs vertical scaling under pool discounts",
        )

    table = run_once(benchmark, build)
    emit("secIVE_scaling_cost", table)
