"""Helpers shared by the benchmark modules (importable, unlike conftest)."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# The paper's 40-epoch budget; our synthetic analogue uses the same count.
PAPER_EPOCHS = 40
# Extended horizon for the alpha study so the late crossover completes.
ALPHA_EPOCHS = 50
# Target used for "training time" in the Fig. 3 reproduction.
TARGET_ACC = 0.70


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark accounting."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
