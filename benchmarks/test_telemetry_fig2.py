"""Fig. 2 timings re-derived from exported telemetry (first JSON artifact).

Runs the four Fig. 2 configurations with the full observability stack
attached, exports one sweep-schema telemetry document to
``benchmarks/results/telemetry_fig2.json``, and then rebuilds the paper's
timing table *from the JSON alone* — proving the export carries enough to
reproduce the figure without re-running the simulation.

Also pins the two acceptance properties of the PR:

* the invariant auditor is on for every benchmark run and reports zero
  violations;
* the audited run is bit-identical to an auditor-off run (same digest).
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import ConstantAlpha, TrainingJobConfig
from repro.core.runner import DistributedRunner
import json

from repro.obs import (
    OBSERVABILITY_OFF,
    SpanStore,
    build_sweep_telemetry,
    read_telemetry,
    validate_perfetto,
    write_perfetto_trace,
    write_telemetry,
)

from _helpers import PAPER_EPOCHS, RESULTS_DIR, emit, run_once

FIG2_SHAPES = [(1, 3, 2), (1, 3, 8), (3, 3, 8), (5, 5, 2)]


def fig2_config(p: int, c: int, t: int) -> TrainingJobConfig:
    base = TrainingJobConfig(max_epochs=PAPER_EPOCHS, seed=1234)
    return base.with_pct(p, c, t).with_alpha(ConstantAlpha(0.95))


def test_telemetry_fig2_artifact(benchmark):
    def build():
        runners = []
        for p, c, t in FIG2_SHAPES:
            runner = DistributedRunner(fig2_config(p, c, t))
            runner.run()
            assert runner.obs.report.ok, runner.obs.report.violations
            runners.append(runner)
        return runners

    runners = run_once(benchmark, build)

    # Export: one sweep-schema document holding all four runs.
    document = build_sweep_telemetry([r.telemetry() for r in runners])
    path = write_telemetry(RESULTS_DIR / "telemetry_fig2.json", document)

    # Reproduce the timing table from the JSON alone (digest-validated).
    loaded = read_telemetry(path)
    rows = []
    for run in loaded["runs"]:
        epochs = run["epochs"]
        turnaround = run["metrics"]["histograms"]["client.turnaround_s"]
        epoch_s = run["metrics"]["histograms"]["epoch.duration_s"]
        rows.append(
            [
                run["label"].split(":")[0],
                len(epochs),
                round(run["total_time_s"] / 3600, 2),
                round(epochs[-1]["val_accuracy_mean"], 3),
                round(epoch_s["p50"], 1),
                round(turnaround["p50"], 1),
                round(turnaround["p95"], 1),
                "OK" if run["audit"]["ok"] else "FAIL",
            ]
        )
    table = render_table(
        [
            "config",
            "epochs",
            "total h",
            "final acc",
            "epoch p50 s",
            "subtask p50 s",
            "subtask p95 s",
            "audit",
        ],
        rows,
        title="Fig. 2 timings rebuilt from benchmarks/results/telemetry_fig2.json",
    )
    emit("telemetry_fig2", table)

    # Every run audited clean, full epoch budget, timing data present.
    assert all(run["audit"]["ok"] for run in loaded["runs"])
    assert all(len(run["epochs"]) == PAPER_EPOCHS for run in loaded["runs"])
    assert all(
        run["metrics"]["histograms"]["client.turnaround_s"]["count"] > 0
        for run in loaded["runs"]
    )

    # Acceptance: audited run bit-identical to an auditor-off run.
    p, c, t = FIG2_SHAPES[0]
    bare = DistributedRunner(fig2_config(p, c, t), observability=OBSERVABILITY_OFF)
    bare.run()
    audited = loaded["runs"][0]
    assert bare.telemetry()["digest"] == audited["digest"]
    assert dict(bare.result.counters) == audited["counters"]

    # Perfetto artifact: the causal span tree of the first Fig. 2 run,
    # schema-validated before upload (the CI gate for the trace export).
    store = SpanStore.from_trace(runners[0].trace)
    assert store.lineage_problems() == []
    trace_path = RESULTS_DIR / "trace_fig2_perfetto.json"
    event_count = write_perfetto_trace(store, trace_path)
    exported = json.loads(trace_path.read_text())
    assert validate_perfetto(exported) == []
    assert len(exported["traceEvents"]) == event_count
    # The spans section rode along in the telemetry export too.
    assert audited["spans"]["lineages"]["total"] > 0
    assert audited["spans"]["lineage_problems"] == []
