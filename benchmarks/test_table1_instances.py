"""Table I reproduction: server and client instance configurations.

Prints the paper's Table I alongside the derived performance-model
quantities (per-core and total work rates) that calibrate the simulator.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.simulation import TABLE1_CLIENTS, TABLE1_SERVER

from _helpers import emit, run_once


def test_table1_instance_configurations(benchmark):
    def build() -> str:
        rows = []
        for role, spec in [("Server", TABLE1_SERVER)] + [
            ("Client", c) for c in TABLE1_CLIENTS
        ]:
            rows.append(
                [
                    role,
                    spec.vcpus,
                    spec.clock_ghz,
                    spec.ram_gb,
                    f"upto {spec.network_gbps:g}",
                    round(spec.per_core_rate, 3),
                    round(spec.total_rate, 2),
                ]
            )
        return render_table(
            [
                "Role",
                "vCPU",
                "Clock (GHz)",
                "RAM (GB)",
                "Net (Gbps)",
                "rate/core",
                "rate total",
            ],
            rows,
            title="Table I: instance configurations (+ derived work rates)",
        )

    table = run_once(benchmark, build)
    emit("table1_instances", table)

    # Shape assertions: the exact paper values.
    assert TABLE1_SERVER.vcpus == 8 and TABLE1_SERVER.ram_gb == 61
    assert [c.vcpus for c in TABLE1_CLIENTS] == [8, 8, 8, 16]
    assert [c.clock_ghz for c in TABLE1_CLIENTS] == [2.2, 2.5, 2.8, 2.8]
    assert [c.ram_gb for c in TABLE1_CLIENTS] == [32, 32, 15, 30]
    assert [c.network_gbps for c in TABLE1_CLIENTS] == [5, 5, 2, 2]
