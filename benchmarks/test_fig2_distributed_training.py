"""Fig. 2 reproduction: effect of distributed training at α = 0.95.

The paper plots average validation accuracy vs cumulative training time for
P1C3T2, P1C3T8, P3C3T8 and P5C5T2 and observes:

* all configurations converge to roughly the same final accuracy (~0.73 on
  their task) — varying Pn/Cn/Tn changes *speed*, not the destination;
* configurations differ substantially in how fast they get there.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_chart, auc_accuracy, render_table

from _helpers import emit, run_once


def test_fig2_accuracy_vs_time(benchmark, fig2_runs):
    def build() -> str:
        chart = ascii_chart(
            {
                label: (result.times_hours(), result.val_accuracy())
                for label, result in fig2_runs.items()
            },
            width=72,
            height=18,
            title="Fig. 2 (ASCII): mean validation accuracy vs cumulative hours",
            x_label="hours",
            y_label="accuracy",
        )
        rows = []
        for label, result in fig2_runs.items():
            t = result.times_hours()
            a = result.val_accuracy()
            rows.append(
                [
                    label,
                    round(float(t[-1]), 2),
                    round(float(a[-1]), 3),
                    round(result.best_val_accuracy(), 3),
                    round(auc_accuracy(t, a), 3),
                ]
            )
        header = render_table(
            ["config", "total h", "final acc", "best acc", "acc AUC"],
            rows,
            title="Fig. 2: distributed training at alpha=0.95 (40 epochs)",
        )
        series = ["", "accuracy series (every 5 epochs):"]
        for label, result in fig2_runs.items():
            pts = [
                f"({result.epochs[i].end_time_s / 3600:.2f}h,"
                f" {result.epochs[i].val_accuracy_mean:.3f})"
                for i in range(0, len(result.epochs), 5)
            ]
            series.append(f"  {label}: " + " ".join(pts))
        return header + "\n" + "\n".join(series) + "\n\n" + chart

    table = run_once(benchmark, build)
    emit("fig2_distributed_training", table)

    finals = {label: r.final_val_accuracy for label, r in fig2_runs.items()}
    totals = {label: r.total_time_hours for label, r in fig2_runs.items()}

    # Paper shape 1: every configuration reaches ~the same final accuracy.
    values = np.array(list(finals.values()))
    assert values.max() - values.min() < 0.08, finals

    # Paper shape 2: speeds differ — the slowest takes much longer than the
    # fastest to run the same 40 epochs.
    assert max(totals.values()) > 1.5 * min(totals.values()), totals

    # Paper shape 3: P1C3T2 is the slowest of the four configurations.
    assert totals["P1C3T2"] == max(totals.values())

    # Paper shape 4: adding parameter servers at T8 speeds up the epoch
    # pipeline (P3C3T8 faster than P1C3T8).
    assert totals["P3C3T8"] < totals["P1C3T8"]
