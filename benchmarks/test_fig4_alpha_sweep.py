"""Fig. 4 reproduction: effect of the VC-ASGD hyperparameter α at P3C3T4.

The paper's observations, each asserted below on our substrate:

1. small α (0.7) learns fastest in early epochs — the server weight on
   client updates is (1−α);
2. in later epochs the trend reverses: α = 0.95 overtakes α = 0.7, because
   heavy weight on shard-trained client copies degrades generalization
   ("unlearning" across shard exposures);
3. α = 0.999 (the EASGD-analogue moving rate 0.001) trains far slower —
   existing cluster-calibrated ASGD settings do not transfer to VC;
4. the per-epoch accuracy spread (error bars) grows as α shrinks, and
   α = 0.999 has the smallest spread;
5. the Var schedule α_e = e/(e+1) learns fast early *and* ends at least as
   high as any constant α, with a small late spread.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_chart, crossover_time, render_table

from _helpers import emit, run_once


def test_fig4_alpha_sweep(benchmark, fig4_runs):
    def build() -> str:
        chart = ascii_chart(
            {
                name: (result.times_hours(), result.val_accuracy())
                for name, result in fig4_runs.items()
            },
            width=72,
            height=18,
            title="Fig. 4 (ASCII): accuracy vs hours for each alpha at P3C3T4",
            x_label="hours",
            y_label="accuracy",
        )
        rows = []
        for name, result in fig4_runs.items():
            a = result.val_accuracy()
            rows.append(
                [
                    name,
                    round(float(a[2]), 3),
                    round(float(a[9]), 3),
                    round(float(a[24]), 3),
                    round(float(a[-1]), 3),
                    round(result.mean_spread(last_k=10), 4),
                ]
            )
        table = render_table(
            ["alpha", "acc@e3", "acc@e10", "acc@e25", "acc@e50", "late spread"],
            rows,
            title="Fig. 4: VC-ASGD alpha sweep at P3C3T4",
        )
        return table + "\n\n" + chart

    table = run_once(benchmark, build)
    emit("fig4_alpha_sweep", table)

    acc = {name: r.val_accuracy() for name, r in fig4_runs.items()}
    spread = {name: r.mean_spread(last_k=10) for name, r in fig4_runs.items()}

    # (1) early epochs: 0.7 above 0.95.
    assert acc["0.7"][2] > acc["0.95"][2]
    assert acc["0.7"][6] > acc["0.95"][6]

    # (2) late epochs: 0.95 catches/overtakes 0.7; a crossover exists.
    assert acc["0.95"][-1] >= acc["0.7"][-1] - 0.005
    t95 = fig4_runs["0.95"].times_hours()
    t07 = fig4_runs["0.7"].times_hours()
    assert crossover_time(t07, acc["0.7"], t95, acc["0.95"]) is not None

    # (3) alpha=0.999 is drastically slower throughout.
    assert acc["0.999"][-1] < 0.5 * acc["0.95"][-1]

    # (4) spread ordering: 0.7 > 0.95 > 0.999.
    assert spread["0.7"] > spread["0.95"] > spread["0.999"]

    # (5) Var: fast early (comparable to 0.7), top-tier late, small spread.
    assert acc["Var"][2] > acc["0.95"][2]
    assert acc["Var"][-1] >= max(acc["0.7"][-1], acc["0.95"][-1]) - 0.01
    assert spread["Var"] <= spread["0.7"]
