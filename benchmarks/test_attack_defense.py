"""Attack/defense matrix: the Byzantine fabric raced against the defenses.

Every cell runs the same P1C6T2 workload with one adversary plan (rows)
under one defense configuration (columns):

* ``plain``          — VC-ASGD, no replication, no guard: the paper's
                       baseline, trusting every volunteer.
* ``median+q3``      — coordinate-wise median + 3-way replication with a
                       full 3-of-3 quorum.  Forged results can never reach
                       quorum (an attacker controls < 3 replicas of any
                       unit), and the median-of-3-claims neutralizes
                       credit inflation.
* ``cclip+q3``       — CenteredClip under the same quorum plane.
* ``median+guard``   — coordinate-wise median + cheaper 2-way replication
                       with the collusion-aware reliability-weighted
                       quorum and the quarantine loop.  Recovers more
                       updates than q3 (disagreeing units fail loudly and
                       attackers are evicted instead of every touched unit
                       hanging) at 2/3 the replication cost.  Its 2-claim
                       credit median is a midpoint, so claim inflation
                       leaked ~claim_factor/2 until the ledger's
                       recent-claim cap (2x the sliding median of recent
                       claims) bounded steady-state grants; only a small
                       cold-start leak remains.

Asserted shape (the §II-C robustness story, adversarially):

1. every defended column converges under every attack where the plain
   baseline diverges or stalls;
2. claim inflation pays out ~claim_factor under plain granting, ~1x under
   the 3-claim median;
3. the guard column actually quarantines attackers and assimilates more
   updates than full-quorum replication.

Quick mode (``REPRO_ADV_QUICK=1``, used by the CI adversarial-soak job)
trims the rows/columns to a >= 2 attacks x >= 2 robust rules smoke while
keeping the same thresholds; the committed artifact comes from the full
matrix.
"""

from __future__ import annotations

import json
import os

from repro.analysis import render_table
from repro.core import DistributedRunner, FaultConfig, TrainingJobConfig, make_rule
from repro.core.job import ModelSpec
from repro.data import SyntheticImageConfig
from repro.simulation.adversary import AdversaryBehavior, AdversaryPlan

from _helpers import RESULTS_DIR, emit, run_once

QUICK = os.environ.get("REPRO_ADV_QUICK", "") not in ("", "0")

MATRIX_EPOCHS = 6
CONVERGED = 0.90  # defended runs must reach this
DIVERGED = 0.60  # plain-under-attack stays below this (clean plain: ~0.91)

ATTACKS = {
    "clean": None,
    "falsify_random": AdversaryPlan(
        behaviors=(
            AdversaryBehavior(
                clients=("client-000",), attack="falsify_random", magnitude=30.0
            ),
        )
    ),
    "falsify_signflip": AdversaryPlan(
        behaviors=(
            AdversaryBehavior(
                clients=("client-000",), attack="falsify_signflip", magnitude=4.0
            ),
        )
    ),
    "poison_drift": AdversaryPlan(
        behaviors=(
            AdversaryBehavior(
                clients=("client-000",), attack="poison_drift", magnitude=4.0
            ),
        )
    ),
    "collude": AdversaryPlan(
        behaviors=(
            AdversaryBehavior(
                clients=("client-000", "client-001"),
                attack="collude",
                magnitude=30.0,
            ),
        )
    ),
    "claim_inflate": AdversaryPlan(
        behaviors=(
            AdversaryBehavior(
                clients=("client-000",), attack="claim_inflate", claim_factor=100.0
            ),
        )
    ),
}

# (column, defense kwargs, rule factory kwargs or None for VC-ASGD)
DEFENSES = {
    "plain": ({}, None),
    "median+q3": (dict(replicas=3, quorum=3), ("median", {})),
    "cclip+q3": (dict(replicas=3, quorum=3), ("centeredclip", {"tau": 5.0})),
    "median+guard": (
        dict(replicas=2, quorum=2, collusion_guard=True, quarantine_after=3),
        ("median", {}),
    ),
}

QUICK_ATTACKS = ("clean", "falsify_signflip", "collude")
QUICK_DEFENSES = ("plain", "median+q3", "cclip+q3")


def cell_config(plan: AdversaryPlan | None, defense: str) -> TrainingJobConfig:
    defense_kwargs, rule_spec = DEFENSES[defense]
    rule = None if rule_spec is None else make_rule(rule_spec[0], **rule_spec[1])
    return TrainingJobConfig(
        num_param_servers=1,
        num_clients=6,
        max_concurrent_subtasks=2,
        model=ModelSpec("mlp", {"in_features": 108, "hidden": [32], "num_classes": 6}),
        data=SyntheticImageConfig(image_size=6, num_classes=6, noise_std=1.0),
        num_train=600,
        num_val=150,
        num_test=150,
        num_shards=10,
        max_epochs=MATRIX_EPOCHS,
        seed=4242,
        faults=FaultConfig(adversary=plan),
        update_rule=rule,
        **defense_kwargs,
    )


def credit_excess(runner: DistributedRunner) -> float | None:
    """Cheat's per-result grant over the worst-case honest per-result grant.

    ~1.0 means the claim bought nothing; ~claim_factor means the server
    paid whatever was asked; None if the cheat was never granted (its
    units hung or it was denied everywhere).
    """
    ledger = runner.server.credit
    cheat = ledger.hosts.get("client-000")
    if cheat is None or cheat.results_granted == 0:
        return None
    cheat_rate = ledger.host_total("client-000") / cheat.results_granted
    honest_rates = [
        ledger.host_total(h) / ledger.hosts[h].results_granted
        for h in ledger.hosts
        if h != "client-000" and ledger.hosts[h].results_granted
    ]
    return cheat_rate / min(honest_rates)


def run_cell(attack: str, defense: str) -> dict[str, object]:
    runner = DistributedRunner(cell_config(ATTACKS[attack], defense))
    result = runner.run()
    excess = credit_excess(runner)
    return {
        "attack": attack,
        "defense": defense,
        "final_val_accuracy": round(result.final_val_accuracy, 4),
        "epochs_completed": len(result.epochs),
        "credit_excess": None if excess is None else round(excess, 2),
        "quorums_reached": result.counters.get("quorums_reached"),
        "quorums_failed": result.counters.get("quorums_failed"),
        "hosts_quarantined": result.counters.get("hosts_quarantined"),
        "tampered_uploads": result.counters.get("adv_tampered_uploads"),
    }


def test_attack_defense_matrix(benchmark):
    attacks = QUICK_ATTACKS if QUICK else tuple(ATTACKS)
    defenses = QUICK_DEFENSES if QUICK else tuple(DEFENSES)

    def sweep():
        return {
            (a, d): run_cell(a, d) for a in attacks for d in defenses
        }

    cells = run_once(benchmark, sweep)

    rows = []
    for a in attacks:
        for d in defenses:
            c = cells[(a, d)]
            rows.append(
                [
                    a,
                    d,
                    f"{c['final_val_accuracy']:.3f}",
                    "-" if c["credit_excess"] is None else f"{c['credit_excess']:.1f}x",
                    c["quorums_reached"] if c["quorums_reached"] is not None else "-",
                    c["quorums_failed"] if c["quorums_failed"] is not None else "-",
                    c["hosts_quarantined"]
                    if c["hosts_quarantined"] is not None
                    else "-",
                ]
            )
    table = render_table(
        ["attack", "defense", "final acc", "credit", "qreach", "qfail", "quar"],
        rows,
        title=(
            f"Byzantine attack/defense matrix, P1C6T2 x {MATRIX_EPOCHS} epochs"
            f"{' (quick)' if QUICK else ''}"
        ),
    )
    emit(f"attack_defense_matrix{'_quick' if QUICK else ''}", table)
    if not QUICK:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "attack_defense_matrix.json").write_text(
            json.dumps(
                {
                    "workload": f"P1C6T2 x {MATRIX_EPOCHS} epochs, 10 shards",
                    "seed": 4242,
                    "thresholds": {"converged": CONVERGED, "diverged": DIVERGED},
                    "cells": [cells[(a, d)] for a in attacks for d in defenses],
                },
                indent=2,
            )
            + "\n"
        )

    param_attacks = [
        a for a in attacks if a not in ("clean", "claim_inflate")
    ]
    robust = [d for d in defenses if d != "plain"]

    # (0) Sanity: everything converges when nobody attacks.
    for d in defenses:
        assert cells[("clean", d)]["final_val_accuracy"] >= 0.85, d

    for a in param_attacks:
        # (1) The trusting baseline diverges or stalls under every
        #     parameter-plane attack...
        assert cells[(a, "plain")]["final_val_accuracy"] < DIVERGED, a
        # ... and every robust rule + quorum combination still converges.
        for d in robust:
            cell = cells[(a, d)]
            assert cell["epochs_completed"] == MATRIX_EPOCHS, (a, d)
            assert cell["final_val_accuracy"] >= CONVERGED, (a, d)
        # The attacks were real: uploads actually got tampered.
        assert cells[(a, "plain")]["tampered_uploads"] > 0, a

    # (2) Credit plane: plain granting pays the claim; the 3-claim median
    #     pays the honest rate.
    if "claim_inflate" in attacks:
        assert cells[("claim_inflate", "plain")]["credit_excess"] >= 50.0
        for d in ("median+q3", "cclip+q3"):
            if d in defenses:
                assert cells[("claim_inflate", d)]["credit_excess"] <= 1.5, d
        # The 2-claim quorum median is a midpoint, so claim inflation used
        # to pay ~claim_factor/2 here (~54x).  The ledger's recent-claim
        # cap (2x the sliding median of recent claims) now bounds steady
        # state grants at ~2x honest; what survives is the cold-start
        # window before the cap engages, pinned well under the old leak.
        if "median+guard" in defenses:
            leak = cells[("claim_inflate", "median+guard")]["credit_excess"]
            assert 1.5 <= leak <= 8.0

    # (3) The guard column earns its keep: attackers are quarantined and
    #     more updates survive than under full 3-of-3 replication.
    if "median+guard" in defenses:
        for a in param_attacks:
            guard = cells[(a, "median+guard")]
            assert guard["hosts_quarantined"] >= 1, a
            if "median+q3" in defenses:
                assert (
                    guard["quorums_reached"]
                    > cells[(a, "median+q3")]["quorums_reached"]
                ), a
