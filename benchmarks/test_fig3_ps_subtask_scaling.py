"""Fig. 3 reproduction: training time vs (Pn, Tn) at α = 0.95.

The paper plots total training time for P1C3 / P3C3 / P5C5 across
T ∈ {2, 4, 8} and reads off the client/server imbalance story:

* P1C3: time falls from T2→T4 but *rises* from T4→T8 — a single parameter
  server cannot drain 24 concurrent subtasks;
* raising Pn at T8 (P1→P3) recovers the loss ("training time indeed
  decreases by 3 hours" at their scale);
* growing Tn grows the imbalance between client and server processing.

We measure training time as time-to-target-accuracy (the paper's runs all
converge to the same plateau, so fixed-epoch time and time-to-plateau agree
there; on our substrate staleness at high Tn also costs *epochs*, which
this metric captures — see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.analysis import render_table

from _helpers import TARGET_ACC, emit, run_once


def test_fig3_training_time_grid(benchmark, fig3_grid):
    def build() -> str:
        rows = []
        for (p, c) in [(1, 3), (3, 3), (5, 5)]:
            for t in (2, 4, 8):
                label = f"P{p}C{c}T{t}"
                result = fig3_grid[label]
                rows.append(
                    [
                        label,
                        round(result.total_time_hours, 3),
                        len(result.epochs),
                        result.stopped_reason,
                        round(result.final_val_accuracy, 3),
                        result.counters.get("mean_staleness_x100", 0) / 100,
                    ]
                )
        return render_table(
            ["config", "time (h)", "epochs", "stop", "final acc", "staleness"],
            rows,
            title=(
                f"Fig. 3: training time to accuracy {TARGET_ACC} "
                "vs parameter servers and simultaneous subtasks (alpha=0.95)"
            ),
        )

    table = run_once(benchmark, build)
    emit("fig3_ps_subtask_scaling", table)

    hours = {label: r.total_time_hours for label, r in fig3_grid.items()}

    # Paper shape 1 (P1C3): T2 -> T4 improves, T4 -> T8 regresses.
    assert hours["P1C3T4"] < hours["P1C3T2"], hours
    assert hours["P1C3T8"] > hours["P1C3T4"], hours

    # Paper shape 2: more parameter servers fix the T8 regression.
    assert hours["P3C3T8"] < hours["P1C3T8"], hours

    # Paper shape 3: at low Tn the parameter-server count is irrelevant
    # (P1C3T2 ≈ P3C3T2 — the single server keeps up easily).
    assert abs(hours["P1C3T2"] - hours["P3C3T2"]) / hours["P1C3T2"] < 0.05

    # Diminishing returns of vertical scaling at C5 (imbalance grows with
    # Tn): the T4->T8 gain is much smaller than the T2->T4 gain.
    gain_24 = hours["P5C5T2"] - hours["P5C5T4"]
    gain_48 = hours["P5C5T4"] - hours["P5C5T8"]
    assert gain_48 < gain_24, hours

    # Mechanism check: parameter staleness grows with Tn, which is what
    # costs epochs at high concurrency.
    stale = {
        label: r.counters.get("mean_staleness_x100", 0)
        for label, r in fig3_grid.items()
    }
    assert stale["P1C3T8"] > stale["P1C3T2"], stale
    assert stale["P5C5T8"] > stale["P5C5T2"], stale
