"""ASGD rule family raced on the full BOINC substrate at P3C3T4.

§II-B argues the prior ASGD family does not fit volunteer computing: the
schemes either assume reliable workers (barrier/BSP styles stall when a
volunteer vanishes) or cluster-calibrated hyperparameters.  The update-rule
fabric lets every member run on the *identical* substrate — same scheduler,
timeouts, preemptions, KV store — so the claim can be tested in vivo
rather than argued from the round-harness abstraction.

Fault profile: aggressive preemption (p = 0.9/h per instance) with a
single-attempt budget, so some subtasks fail permanently — exactly the
volunteer churn of §II-A.  Asserted:

1. every fault-tolerant rule (VC-ASGD, Downpour, DC-ASGD, Rescaled ASGD)
   completes the full epoch budget despite permanent subtask failures;
2. the fault-intolerant rules (EASGD, BSP AllReduce) hit barrier stalls —
   the epoch cannot close until reissued replacements cover every shard;
3. those stalls cost real wall clock: barrier rules finish the same
   workload measurably slower than VC-ASGD on the same faulty fleet.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import FaultConfig, TrainingJobConfig, VarAlpha, make_rule, run_experiment

from _helpers import emit, run_once

RACE_EPOCHS = 8
RACE_SHARDS = 25
FAULT_PROFILE = FaultConfig(preemption_hourly_p=0.9, relaunch_delay_s=90.0)

# (display name, factory kwargs).  Gradient rules use a server step small
# enough for the accumulated-gradient magnitudes of this workload (the
# Downpour default of 0.05 diverges here — itself a §II-B data point, but
# the race should compare the schemes at workable settings).
RULES = (
    ("VC-ASGD(Var)", "vcasgd", {}),
    ("Downpour", "downpour", {"server_lr": 0.005}),
    ("DC-ASGD", "dcasgd", {"server_lr": 0.005}),
    ("RescaledASGD", "rescaled", {"server_lr": 0.005}),
    ("EASGD", "easgd", {}),
    ("SyncAllReduce", "allreduce", {}),
)
FAULT_INTOLERANT = {"EASGD", "SyncAllReduce"}


def _race_config() -> TrainingJobConfig:
    return TrainingJobConfig(
        num_param_servers=3,
        num_clients=3,
        max_concurrent_subtasks=4,
        alpha_schedule=VarAlpha(),
        max_epochs=RACE_EPOCHS,
        num_shards=RACE_SHARDS,
        faults=FAULT_PROFILE,
        max_attempts=1,
        seed=2024,
    )


def test_rule_family_race(benchmark):
    def race() -> dict[str, object]:
        base = _race_config()
        out = {}
        for display, name, kwargs in RULES:
            rule = None if name == "vcasgd" else make_rule(name, **kwargs)
            out[display] = run_experiment(base.with_rule(rule))
        return out

    runs = run_once(benchmark, race)

    rows = []
    for display, _, _ in RULES:
        result = runs[display]
        rows.append(
            [
                display,
                len(result.epochs),
                round(result.final_val_accuracy, 3),
                round(result.total_time_hours, 2),
                result.counters.get("barrier_stalls", "-"),
                result.counters["preemptions"],
                result.counters["assimilations"],
            ]
        )
    table = render_table(
        ["rule", "epochs", "final acc", "hours", "stalls", "preempt", "assim"],
        rows,
        title=(
            "ASGD family at P3C3T4, preemption p=0.9/h, max_attempts=1 "
            f"({RACE_EPOCHS} epochs x {RACE_SHARDS} shards)"
        ),
    )
    emit("rule_family_race", table)

    tolerant = [d for d, _, _ in RULES if d not in FAULT_INTOLERANT]
    # (1) fault-tolerant rules ride out permanent subtask failures.
    for display in tolerant:
        assert len(runs[display].epochs) == RACE_EPOCHS, display
        assert "barrier_stalls" not in runs[display].counters, display
    # (2) barrier rules must reissue work to close their epochs.
    for display in FAULT_INTOLERANT:
        assert runs[display].counters["barrier_stalls"] >= 1, display
    # (3) ... and pay wall clock for it relative to VC-ASGD on the same fleet.
    vcasgd_hours = runs["VC-ASGD(Var)"].total_time_hours
    for display in FAULT_INTOLERANT:
        assert runs[display].total_time_hours > vcasgd_hours * 1.05, display
    # The faulty fleet really was faulty for everyone.
    for display, _, _ in RULES:
        assert runs[display].counters["preemptions"] >= 1, display
