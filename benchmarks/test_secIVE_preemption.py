"""§IV-E reproduction (timeout model): expected training-time increase.

The paper models instance terminations as Bernoulli trials over n = 200
subtask waves (n_s=2000, n_c=5, n_tc=2), t_e = 2.4 min, t_o = 5 min:
expected delay = n·p·t_o → **50 min at p = 0.05** and **200 min at
p = 0.20**.  We reproduce the closed form, cross-check it by Monte Carlo,
and validate the *mechanism* (timeout → reissue recovers preempted work at
bounded extra cost) in the full event simulation.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cloud import paper_p5c5t2_analysis
from repro.core import FaultConfig, TrainingJobConfig, run_experiment
from repro.simulation import RngRegistry

from _helpers import emit, run_once


def test_secIVE_delay_model(benchmark):
    analysis = paper_p5c5t2_analysis()

    def build() -> str:
        rng = RngRegistry(7).stream("mc")
        rows = []
        for p in (0.0, 0.05, 0.10, 0.20):
            expected_min = analysis.expected_delay_minutes(p)
            mc = np.mean(
                [analysis.model.sample_delay(p, rng) for _ in range(2000)]
            ) / 60.0
            rows.append(
                [
                    f"{p:.2f}",
                    analysis.band(p).label,
                    round(expected_min, 1),
                    round(float(mc), 1),
                    round(analysis.expected_total_hours(p), 2),
                ]
            )
        return render_table(
            ["p", "advisor band", "E[delay] min", "MC delay min", "E[total] h"],
            rows,
            title="SecIV-E: expected training-time increase from preemptions "
            "(n=200 waves, t_e=2.4 min, t_o=5 min)",
        )

    table = run_once(benchmark, build)
    emit("secIVE_preemption_model", table)

    # Paper anchors.
    assert analysis.expected_delay_minutes(0.05) == pytest.approx(50.0)
    assert analysis.expected_delay_minutes(0.20) == pytest.approx(200.0)
    assert analysis.model.n == 200
    # Baseline "slightly more than 8 hr": pure execution is exactly 8 h.
    assert analysis.expected_total_hours(0.0) == pytest.approx(8.0)


def test_secIVE_simulation_cross_check(benchmark):
    """End-to-end: preemption raises training time, but timeout/reissue
    keeps every epoch complete — the fault-tolerance claim in vivo."""

    def run() -> tuple[float, float, int, int]:
        base = TrainingJobConfig(
            max_epochs=4,
            num_param_servers=3,
            num_clients=5,
            max_concurrent_subtasks=2,
            seed=99,
        )
        clean = run_experiment(base)
        faulty_cfg = dataclasses.replace(
            base,
            faults=FaultConfig(preemption_hourly_p=0.6, relaunch_delay_s=60.0),
        )
        faulty = run_experiment(faulty_cfg)
        return (
            clean.total_time_hours,
            faulty.total_time_hours,
            faulty.counters["preemptions"],
            faulty.counters["assimilations"],
        )

    clean_h, faulty_h, preemptions, assimilations = run_once(benchmark, run)
    emit(
        "secIVE_preemption_simulation",
        f"4-epoch P3C5T2 run: clean={clean_h:.2f}h, "
        f"preemption_p=0.6/h -> {faulty_h:.2f}h "
        f"({preemptions} preemptions, all {assimilations} subtasks recovered)",
    )
    assert preemptions >= 1
    assert faulty_h > clean_h
    assert assimilations == 4 * 50  # every shard of every epoch assimilated
