"""Fleet-scale scheduler benchmark: events/sec at 1k / 10k (/ 100k) clients.

Measures the paths the fleet-scale scheduling core optimizes: the
indexed ready queue (O(1) amortized push/pop/remove vs the legacy
full-list scan) and the ping + server-suggested-sleep work-fetch
protocol (no poke broadcasts, wake-ups O(new work) not O(fleet)).

Each fleet size runs a real discrete-event simulation — ``Simulator`` +
``BoincServer`` + ``Scheduler`` + one ``ClientDaemon`` per client in
ping mode — with a lightweight stub executor (no NumPy training), so the
measured cost is the middleware per event, not the model math.  The
workload scales with the fleet (``2 x clients`` workunits), which makes
**events/sec the O(1)-per-event check**: if any per-event cost were
O(fleet), events/sec would collapse going from 1k to 10k clients
instead of staying flat.  The invariant auditor rides along as a trace
observer and the run only counts if every conservation law held.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_fleet.py \
        [--quick] [--full] [--out FILE] \
        [--baseline FILE] [--max-regression 2.0]

``--quick`` runs the 1k fleet only (the CI fleet-smoke job);
``--full`` adds a 100k fleet on top of the default 1k + 10k.
``--baseline`` compares events/sec against a committed report and exits
non-zero if any shared fleet size got slower than ``--max-regression``×
(note the inversion vs a timing gate: *lower* events/sec is the
regression).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

import numpy as np

SCHEMA = "repro.bench.fleet.v1"

# Fleet sizes eligible for the regression gate (quick covers the first).
GATED_SIZES = (1_000, 10_000)
FULL_SIZES = (1_000, 10_000, 100_000)

# Stub-workload shape: enough to exercise sticky affinity and the
# validator, small enough that 100k clients is middleware-bound.
VEC_SIZE = 64
SHARD_FILES = 256
SLOTS_PER_CLIENT = 2  # Tn; workunits = SLOTS_PER_CLIENT * clients
WORK_UNITS = 120.0  # ~2 min of simulated compute per subtask
RESULT_BYTES = 4096


def size_label(num_clients: int) -> str:
    return f"{num_clients // 1000}k"


def run_fleet(num_clients: int, queue_impl: str = "indexed") -> dict:
    """Simulate one fleet to completion; returns its metrics dict."""
    from repro.boinc import (
        BoincServer,
        CallbackAssimilator,
        ClientDaemon,
        ParameterValidator,
        SchedulerConfig,
        ServerFile,
        Workunit,
    )
    from repro.obs.audit import InvariantAuditor
    from repro.simulation.engine import Simulator
    from repro.simulation.resources import InstanceSpec
    from repro.simulation.tracing import Trace

    sim = Simulator()
    # Bounded record buffer (100k clients would hold millions of records);
    # the auditor is an observer, so it still sees every record.
    trace = Trace(max_records=10_000)
    auditor = InvariantAuditor()
    trace.attach(auditor)

    config = SchedulerConfig(
        timeout_s=1e8,  # effectively disabled: the bench measures the
        max_attempts=1,  # steady path, not the reissue machinery
        work_fetch="ping",
        queue_impl=queue_impl,
    )
    server = BoincServer(
        sim,
        assimilator=CallbackAssimilator(lambda wu, payload: None),
        validator=ParameterValidator(expected_size=VEC_SIZE),
        scheduler_config=config,
        trace=trace,
    )

    server.catalog.publish(
        ServerFile("model.spec", b"spec", raw_size=2048, sticky=True)
    )
    server.catalog.publish(
        ServerFile("params:v0", np.zeros(VEC_SIZE), raw_size=VEC_SIZE * 8)
    )
    num_shard_files = min(SHARD_FILES, num_clients)
    for s in range(num_shard_files):
        server.catalog.publish(
            ServerFile(f"shard{s:05d}.npy", b"x", raw_size=4096, sticky=True)
        )

    num_workunits = SLOTS_PER_CLIENT * num_clients
    workunits = [
        Workunit(
            wu_id=f"bench:e0:s{i}",
            job_id="bench",
            epoch=0,
            shard_index=i,
            input_files=(
                "model.spec",
                "params:v0",
                f"shard{i % num_shard_files:05d}.npy",
            ),
            work_units=WORK_UNITS,
            timeout_s=config.timeout_s,
            max_attempts=config.max_attempts,
        )
        for i in range(num_workunits)
    ]
    # Publish before any client attaches: nobody to wake, no pokes — the
    # boot pings discover the queue themselves.
    server.publish_workunits(workunits)

    spec = InstanceSpec(
        name="bench-core",
        vcpus=SLOTS_PER_CLIENT,
        clock_ghz=2.4,
        ram_gb=4.0,
        network_gbps=1.0,
    )
    payload = np.zeros(VEC_SIZE)

    def executor(wu, payloads):
        return payload, RESULT_BYTES

    for i in range(num_clients):
        client = ClientDaemon(
            client_id=f"c{i:06d}",
            sim=sim,
            spec=spec,
            scheduler=server.scheduler,
            web=server.web,
            executor=executor,
            max_concurrent=SLOTS_PER_CLIENT,
            trace=trace,
        )
        server.attach_client(client)

    scheduler = server.scheduler
    # The measured loop runs with the cyclic GC paused: collection pauses
    # scale with the heap (i.e. the fleet), which would masquerade as
    # per-event scheduler cost.  The object graph here is effectively
    # acyclic, so nothing accumulates while it's off.
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        while not scheduler.all_terminal():
            if not sim.step():
                raise RuntimeError(
                    f"fleet simulation stalled: terminal="
                    f"{scheduler.terminal_count()}/{num_workunits}"
                )
        wall_s = time.perf_counter() - t0
    finally:
        gc.enable()

    completed = sum(c.subtasks_completed for c in server.clients.values())
    if completed < num_workunits:
        raise RuntimeError(
            f"fleet finished with {completed}/{num_workunits} subtasks"
        )
    auditor.verify()  # raises InvariantViolation on any broken law

    return {
        "clients": num_clients,
        "workunits": num_workunits,
        "completed": completed,
        "queue_impl": queue_impl,
        "wall_s": round(wall_s, 4),
        "sim_events": sim.events_processed,
        "events_per_sec": round(sim.events_processed / wall_s, 1),
        "sim_time_s": round(sim.now, 3),
        "pings": scheduler.pings,
        "sleep_hints": int(auditor.kind_counts.get("sched.sleep_hint", 0)),
        "audit_checks": auditor.checks,
        "audit_records": auditor.records_seen,
    }


def run_benchmarks(sizes: tuple[int, ...]) -> dict:
    out: dict = {
        "schema": SCHEMA,
        "cpu_count": os.cpu_count() or 1,
        "fleets": {},
    }
    for num_clients in sizes:
        label = size_label(num_clients)
        print(f"fleet {label}: simulating...", file=sys.stderr)
        # Best of two runs (one for the 100k fleet — it is long enough to
        # average out scheduler noise by itself): the minimum-wall-time
        # estimator from bench_hotpath, applied to whole fleets.
        repeats = 1 if num_clients >= 100_000 else 2
        fleet = max(
            (run_fleet(num_clients) for _ in range(repeats)),
            key=lambda f: f["events_per_sec"],
        )
        out["fleets"][label] = fleet
        out[f"events_per_sec_{label}"] = fleet["events_per_sec"]
        print(
            f"fleet {label}: {fleet['sim_events']} events in "
            f"{fleet['wall_s']:.2f}s = {fleet['events_per_sec']:.0f} ev/s, "
            f"{fleet['pings']} pings, audit ok",
            file=sys.stderr,
        )
    # O(1)-per-event check: events/sec flat (±20%) from 1k to 10k.
    eps_1k = out.get("events_per_sec_1k")
    eps_10k = out.get("events_per_sec_10k")
    if eps_1k and eps_10k:
        out["flatness_1k_10k"] = round(eps_10k / eps_1k, 3)
    # Informational: the legacy full-scan queue on the smallest fleet
    # (same-process comparison, so same machine, same noise).
    legacy = run_fleet(sizes[0], queue_impl="legacy")
    out["legacy_events_per_sec_1k"] = legacy["events_per_sec"]
    if eps_1k:
        out["indexed_vs_legacy_speedup"] = round(
            eps_1k / legacy["events_per_sec"], 2
        )
    return out


def check_regression(report: dict, baseline: dict, max_ratio: float) -> list[str]:
    """Compare events/sec against a committed report; inverted gate —
    a *drop* in throughput beyond ``max_ratio``× is the regression."""
    failures = []
    for num_clients in GATED_SIZES:
        key = f"events_per_sec_{size_label(num_clients)}"
        ref = baseline.get(key)
        now = report.get(key)
        if not ref or not now:
            continue
        ratio = ref / now
        if ratio > max_ratio:
            failures.append(
                f"{key}: {now:.0f} ev/s vs baseline {ref:.0f} ev/s "
                f"({ratio:.2f}x slower > {max_ratio:.2f}x allowed)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="1k fleet only (CI fleet-smoke)"
    )
    parser.add_argument(
        "--full", action="store_true", help="add the 100k fleet"
    )
    parser.add_argument("--out", default=None, metavar="FILE")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="committed report to regression-check events/sec against",
    )
    parser.add_argument("--max-regression", type=float, default=2.0, metavar="X")
    args = parser.parse_args(argv)

    if args.quick:
        sizes: tuple[int, ...] = (GATED_SIZES[0],)
    elif args.full:
        sizes = FULL_SIZES
    else:
        sizes = GATED_SIZES
    report = run_benchmarks(sizes)
    print(json.dumps(report, indent=1))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1)
            fh.write("\n")
        print(f"report written to {args.out}", file=sys.stderr)
    if args.baseline:
        with open(args.baseline) as fh:
            failures = check_regression(report, json.load(fh), args.max_regression)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(
            "fleet gate: no throughput regression beyond "
            f"{args.max_regression:.1f}x",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
