"""Hot-path microbenchmarks: pack/unpack, rule apply, train step, sweep scaling.

Measures the paths the zero-copy parameter plane and the workspace arena
optimize, on a paper-sized workload (~5M scalars, the Fig. 2 model scale):

* ``pack`` / ``unpack`` / ``roundtrip`` — the StateLayout codec moving a
  full parameter copy between dict-of-arrays and the flat vector the
  parameter server assimilates;
* ``apply_<rule>`` — one server-side update (Eq. 1 and the rest of the
  ASGD family) on a 5M-scalar vector;
* ``grad_accumulate`` — folding one batch's named gradients into the
  flat accumulator;
* ``fig2_p1c3t2`` — an end-to-end P1C3T2 training job (epochs recorded);
* ``sweep_scaling`` — the same tiny grid swept serially and with
  ``jobs=2`` / ``jobs=4`` worker processes (``cpu_count`` is recorded:
  on a single-CPU box the parallel path can only demonstrate equality,
  not speedup).

``--multicore`` switches to the execution-plane benchmark instead
(schema ``repro.bench.multicore.v1``): one homogeneous-fleet run timed
serial, with cohort fusion, with the shared-plane process pool at each
``--jobs`` count, and with both — plus the ``run_configs`` sweep sweep.
``--gate`` then enforces the **cores-aware** scaling floor: every
measured speedup must reach ``0.8 × min(jobs, cpu_count)``.  On a
single-CPU box that floor is 0.8× (the pool may not collapse under IPC
overhead); real scaling is only demanded where real cores exist.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_hotpath.py \
        [--quick] [--out FILE] [--before FILE] \
        [--baseline FILE] [--max-regression 2.0] \
        [--multicore] [--jobs 2,4] [--gate]

``--before`` merges a previously measured timing file (same keys) into
the report and computes speedups.  ``--baseline`` compares this run
against a committed report and exits non-zero if any shared timing
regressed more than ``--max-regression``× (the CI perf-smoke gate).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

SCHEMA = "repro.bench.hotpath.v1"
MULTICORE_SCHEMA = "repro.bench.multicore.v1"

# Timing keys eligible for the regression gate (per-epoch for the
# end-to-end run so quick and full reports stay comparable).
GATED_KEYS = (
    "pack_s",
    "unpack_s",
    "roundtrip_s",
    "apply_vcasgd_s",
    "apply_downpour_s",
    "apply_easgd_s",
    "apply_dcasgd_s",
    "apply_rescaled_s",
    "pack_into_s",
    "unpack_into_s",
    "apply_into_vcasgd_s",
    "apply_into_dcasgd_s",
    "adam_step_s",
    "grad_accumulate_s",
    "fig2_per_epoch_s",
)


def med(fn, iters: int) -> float:
    """Best wall time of ``iters`` calls (first call warms caches).

    Minimum, not mean/median: on a shared box the distribution is the
    true cost plus a long contention tail, and the minimum is the
    estimator least polluted by that tail.
    """
    fn()
    times = []
    for _ in range(iters):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def paper_sized_template(rng: np.random.Generator) -> dict[str, np.ndarray]:
    """A ~5M-scalar, many-key state dict (the Fig. 2 model scale)."""
    template: dict[str, np.ndarray] = {}
    total = 0
    i = 0
    while total < 4_900_000:
        shape = (64, 64, 12) if i % 3 == 0 else (256, 97)
        template[f"layer{i:03d}.weight"] = rng.normal(size=shape)
        total += int(np.prod(shape))
        i += 1
    return template


def bench_codec(out: dict, iters: int) -> dict[str, np.ndarray]:
    from repro.nn.serialization import StateLayout, state_to_vector, vector_to_state

    rng = np.random.default_rng(0)
    template = paper_sized_template(rng)
    layout = StateLayout.for_state(template)
    out["state_keys"] = len(template)
    out["state_scalars"] = layout.total_size
    vec = state_to_vector(template)
    out["pack_s"] = med(lambda: state_to_vector(template), iters)
    out["unpack_s"] = med(lambda: vector_to_state(vec, template), iters)
    out["roundtrip_s"] = med(
        lambda: state_to_vector(vector_to_state(vec, template)), iters
    )
    # The in-place fast path the runner actually uses (unpack_into reuses
    # the model's live arrays; pack reuses a preallocated vector).
    dest = {key: np.empty_like(value) for key, value in template.items()}
    buf = layout.empty()
    out["pack_into_s"] = med(lambda: layout.pack(template, out=buf), iters)
    out["unpack_into_s"] = med(lambda: layout.unpack_into(vec, dest), iters)
    return template


def bench_rules(out: dict, iters: int, total: int) -> None:
    from repro.core.rules import ClientUpdate, make_rule
    from repro.core.vcasgd import ConstantAlpha

    rng = np.random.default_rng(1)
    server = rng.normal(size=total)
    client = rng.normal(size=total)
    grad = rng.normal(size=total)
    update = ClientUpdate(client_id=0, params=client, gradient=grad, base_version=1)
    buf = np.empty_like(server)
    for name in ("vcasgd", "downpour", "easgd", "dcasgd", "rescaled"):
        rule = make_rule(name, ConstantAlpha(0.9))
        rule.snapshot_sent(1, server)
        out[f"apply_{name}_s"] = med(lambda r=rule: r.apply(server, update, 2), iters)
        # The allocation-free kernel (apply = apply_into + one output alloc).
        out[f"apply_into_{name}_s"] = med(
            lambda r=rule: r.apply_into(server, update, 2, out=buf), iters
        )


def bench_accumulator(out: dict, iters: int, template: dict) -> None:
    from repro.nn.serialization import GradientAccumulator

    rng = np.random.default_rng(2)
    acc = GradientAccumulator(template)
    grads = {key: rng.normal(size=value.shape) for key, value in template.items()}
    out["grad_accumulate_s"] = med(lambda: acc.add(grads), iters)


def bench_references(out: dict, iters: int, template: dict) -> None:
    """Historical allocating implementations, timed in the same process.

    Cross-run comparisons on a shared box drown in scheduler noise; these
    reference kernels reproduce the pre-optimization formulas exactly, so
    ``ref_*`` vs the optimized timings is an apples-to-apples measurement
    of what the zero-copy/in-place rewrite bought.
    """
    rng = np.random.default_rng(4)
    keys = sorted(template)
    total = sum(int(v.size) for v in template.values())
    vec = rng.normal(size=total)

    def ref_pack() -> np.ndarray:
        return np.concatenate(
            [np.asarray(template[k], dtype=np.float64).ravel() for k in keys]
        )

    def ref_unpack() -> dict:
        state = {}
        offset = 0
        for k in keys:
            size = template[k].size
            state[k] = vec[offset : offset + size].reshape(template[k].shape).copy()
            offset += size
        return state

    out["ref_pack_s"] = med(ref_pack, iters)
    out["ref_unpack_s"] = med(ref_unpack, iters)

    server = rng.normal(size=total)
    client = rng.normal(size=total)
    grad = rng.normal(size=total)
    backup = rng.normal(size=total)
    alpha, lr, lam = 0.9, 0.05, 0.04
    out["ref_apply_vcasgd_s"] = med(
        lambda: alpha * server + (1.0 - alpha) * client, iters
    )
    out["ref_apply_dcasgd_s"] = med(
        lambda: server - lr * (grad + lam * grad * grad * (server - backup)), iters
    )

    grads = {k: rng.normal(size=v.shape) for k, v in template.items()}

    def ref_accumulate(totals=np.zeros(total)) -> None:
        parts = []
        for k in keys:
            parts.append(np.asarray(grads[k], dtype=np.float64).ravel())
        totals += np.concatenate(parts)

    out["ref_grad_accumulate_s"] = med(ref_accumulate, iters)


_ADAM_SHAPES = ((784, 256), (256,), (256, 128), (128,), (128, 10), (10,))


def bench_optimizer(out: dict, iters: int) -> None:
    from repro.nn import Tensor
    from repro.nn.optim import Adam

    rng = np.random.default_rng(3)
    params = [
        Tensor(rng.normal(size=shape), requires_grad=True) for shape in _ADAM_SHAPES
    ]
    grads = [rng.normal(size=p.shape) for p in params]
    opt = Adam(params)

    def step() -> None:
        for p, g in zip(params, grads):
            p.grad = g
        opt.step()

    out["adam_step_s"] = med(step, iters * 4)

    # Reference: the historical allocating Adam formula on the same shapes.
    datas = [rng.normal(size=shape) for shape in _ADAM_SHAPES]
    ms = [np.zeros_like(d) for d in datas]
    vs = [np.zeros_like(d) for d in datas]
    beta1, beta2, eps, lr = 0.9, 0.999, 1e-8, 0.001
    tick = [0]

    def ref_step() -> None:
        tick[0] += 1
        t = tick[0]
        for d, g, m, v in zip(datas, grads, ms, vs):
            m *= beta1
            m += (1 - beta1) * g
            v *= beta2
            v += (1 - beta2) * g * g
            m_hat = m / (1 - beta1**t)
            v_hat = v / (1 - beta2**t)
            d -= lr * m_hat / (np.sqrt(v_hat) + eps)

    out["ref_adam_step_s"] = med(ref_step, iters * 4)


def bench_end_to_end(out: dict, epochs: int, repeats: int) -> None:
    from repro.core import ConstantAlpha, TrainingJobConfig, run_experiment

    config = (
        TrainingJobConfig(max_epochs=epochs, seed=1234)
        .with_pct(1, 3, 2)
        .with_alpha(ConstantAlpha(0.95))
    )
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_experiment(config)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    out["fig2_p1c3t2_s"] = best
    out["fig2_epochs"] = len(result.epochs)
    out["fig2_per_epoch_s"] = best / max(1, len(result.epochs))


def bench_sweep_scaling(out: dict, job_counts: tuple[int, ...]) -> None:
    from repro.core import TrainingJobConfig
    from repro.core.parallel import run_configs

    base = TrainingJobConfig(max_epochs=1, num_shards=8)
    configs = [
        base.with_pct(p, c, 2) for p in (1, 2) for c in (2, 3)
    ]
    scaling: dict[str, float] = {}
    serial_s = None
    for jobs in job_counts:
        t0 = time.perf_counter()
        run_configs(configs, jobs=jobs)
        elapsed = time.perf_counter() - t0
        scaling[f"jobs{jobs}_s"] = elapsed
        if jobs == 1:
            serial_s = elapsed
        elif serial_s is not None:
            scaling[f"jobs{jobs}_speedup"] = serial_s / elapsed
    out["sweep_scaling"] = scaling
    out["sweep_points"] = len(configs)


# ---------------------------------------------------------------------------
# Multi-core execution plane (DESIGN.md §8.5)
# ---------------------------------------------------------------------------

def _multicore_config(**overrides):
    """A homogeneous-fleet run heavy enough to amortize pool IPC.

    48 client steps (24 shards × 2 epochs) on one instance type, so every
    step is cohort-fusable and the pool ships chunky work items.
    """
    from repro.core import ConstantAlpha, LocalTrainingConfig, TrainingJobConfig
    from repro.data import SyntheticImageConfig
    from repro.nn.models import ModelSpec
    from repro.simulation.resources import TABLE1_CLIENTS

    defaults = dict(
        num_param_servers=1,
        num_clients=8,
        max_concurrent_subtasks=2,
        model=ModelSpec(
            "mlp", {"in_features": 48, "hidden": [128, 64], "num_classes": 4}
        ),
        data=SyntheticImageConfig(image_size=4, num_classes=4, noise_std=1.5),
        num_train=1920,
        num_val=40,
        num_test=40,
        num_shards=24,
        max_epochs=2,
        local_training=LocalTrainingConfig(local_epochs=8, learning_rate=0.01),
        alpha_schedule=ConstantAlpha(0.8),
        seed=77,
        client_specs=(TABLE1_CLIENTS[0],),
    )
    defaults.update(overrides)
    return TrainingJobConfig(**defaults)


def _time_run(overrides: dict, repeats: int) -> tuple[float, int]:
    """Best wall time of a fresh run + its client-step count."""
    from repro.core import DistributedRunner

    best = None
    steps = 0
    for _ in range(repeats):
        runner = DistributedRunner(_multicore_config(**overrides))
        t0 = time.perf_counter()
        result = runner.run()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
        steps = result.counters["assimilations"]
    return best, steps


def run_multicore_benchmarks(job_counts: tuple[int, ...], quick: bool) -> dict:
    """Single-run step throughput across execution-plane modes + sweep."""
    repeats = 2 if quick else 3
    out: dict = {
        "schema": MULTICORE_SCHEMA,
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "job_counts": list(job_counts),
    }
    serial_s, steps = _time_run({}, repeats)
    out["steps_per_run"] = steps
    modes: dict[str, dict] = {
        "serial": {"wall_s": serial_s, "speedup": 1.0},
    }
    cohort_s, _ = _time_run({"cohort_size": 8}, repeats)
    modes["cohort8"] = {"wall_s": cohort_s, "speedup": serial_s / cohort_s}
    for jobs in job_counts:
        pool_s, _ = _time_run({"step_jobs": jobs}, repeats)
        modes[f"jobs{jobs}"] = {"wall_s": pool_s, "speedup": serial_s / pool_s}
        both_s, _ = _time_run({"cohort_size": 8, "step_jobs": jobs}, repeats)
        modes[f"cohort8_jobs{jobs}"] = {
            "wall_s": both_s,
            "speedup": serial_s / both_s,
        }
    for mode in modes.values():
        mode["steps_per_s"] = steps / mode["wall_s"]
        mode["wall_s"] = round(mode["wall_s"], 4)
        mode["speedup"] = round(mode["speedup"], 3)
        mode["steps_per_s"] = round(mode["steps_per_s"], 1)
    out["single_run"] = modes
    bench_sweep_scaling(out, (1, *job_counts))
    return out


def check_multicore_gate(report: dict, floor_factor: float = 0.8) -> list[str]:
    """Cores-aware scaling floor: speedup >= floor_factor * min(jobs, cores).

    ``jobs=J`` on a box with fewer than J cores cannot physically speed
    up; the floor degrades to "don't collapse" (0.8×) there.  The cohort
    modes are gated at the same per-jobs floor — vectorization headroom
    only ever helps them.
    """
    cores = report.get("cpu_count") or 1
    failures = []
    modes = report.get("single_run", {})
    for jobs in report.get("job_counts", []):
        required = floor_factor * min(jobs, cores)
        for name in (f"jobs{jobs}", f"cohort8_jobs{jobs}"):
            speedup = modes.get(name, {}).get("speedup")
            if speedup is not None and speedup < required:
                failures.append(
                    f"{name}: speedup {speedup:.2f}x < required "
                    f"{required:.2f}x (0.8 x min({jobs} jobs, {cores} cores))"
                )
        sweep = report.get("sweep_scaling", {}).get(f"jobs{jobs}_speedup")
        if sweep is not None and sweep < required:
            failures.append(
                f"sweep jobs={jobs}: speedup {sweep:.2f}x < required "
                f"{required:.2f}x (0.8 x min({jobs} jobs, {cores} cores))"
            )
    return failures


def run_benchmarks(quick: bool) -> dict:
    out: dict = {
        "schema": SCHEMA,
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
    }
    iters = 5 if quick else 9
    template = bench_codec(out, iters)
    bench_rules(out, iters, out["state_scalars"])
    bench_accumulator(out, iters, template)
    bench_references(out, iters, template)
    bench_optimizer(out, iters)
    bench_end_to_end(out, epochs=1 if quick else 3, repeats=1 if quick else 3)
    bench_sweep_scaling(out, (1, 2) if quick else (1, 2, 4))
    out["in_process_speedup"] = {
        shipped: round(out[ref] / out[shipped], 2)
        for ref, shipped in (
            ("ref_pack_s", "pack_into_s"),
            ("ref_unpack_s", "unpack_into_s"),
            ("ref_apply_vcasgd_s", "apply_into_vcasgd_s"),
            ("ref_apply_dcasgd_s", "apply_into_dcasgd_s"),
            ("ref_grad_accumulate_s", "grad_accumulate_s"),
            ("ref_adam_step_s", "adam_step_s"),
        )
        if out.get(ref) and out.get(shipped)
    }
    return out


def merge_before(report: dict, before: dict) -> dict:
    """Attach previously measured timings and per-key speedups."""
    merged = {"schema": SCHEMA, "after": report, "before": before, "speedup": {}}
    for key in GATED_KEYS:
        before_val = before.get(key)
        if before_val is None and key == "fig2_per_epoch_s":
            # Older timing files stored total + epoch count only.
            if "fig2_p1c3t2_3epoch_s" in before:
                before_val = before["fig2_p1c3t2_3epoch_s"] / max(
                    1, before.get("fig2_epochs", 1)
                )
        after_val = report.get(key)
        if before_val and after_val:
            merged["speedup"][key] = round(before_val / after_val, 2)
    return merged


def check_regression(report: dict, baseline: dict, max_ratio: float) -> list[str]:
    """Compare against a committed report; list keys slower than allowed."""
    reference = baseline.get("after", baseline)
    failures = []
    for key in GATED_KEYS:
        ref = reference.get(key)
        now = report.get(key)
        if not ref or not now:
            continue
        ratio = now / ref
        if ratio > max_ratio:
            failures.append(f"{key}: {now * 1e3:.2f} ms vs {ref * 1e3:.2f} ms "
                            f"({ratio:.2f}x > {max_ratio:.2f}x allowed)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=None, metavar="FILE")
    parser.add_argument(
        "--before", default=None, metavar="FILE",
        help="earlier timing file to merge and compute speedups against",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="committed report to regression-check against",
    )
    parser.add_argument("--max-regression", type=float, default=2.0, metavar="X")
    parser.add_argument(
        "--multicore", action="store_true",
        help="benchmark the multi-core execution plane instead",
    )
    parser.add_argument(
        "--jobs", default="2", metavar="N[,N...]",
        help="worker counts for the --multicore sweep (default: 2)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="fail if --multicore scaling misses 0.8 x min(jobs, cores)",
    )
    args = parser.parse_args(argv)

    if args.multicore:
        job_counts = tuple(int(j) for j in args.jobs.split(","))
        report = run_multicore_benchmarks(job_counts, quick=args.quick)
        print(json.dumps(report, indent=1))
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(report, fh, indent=1)
                fh.write("\n")
            print(f"report written to {args.out}", file=sys.stderr)
        if args.gate:
            failures = check_multicore_gate(report)
            if failures:
                print("MULTICORE SCALING GATE FAILED:", file=sys.stderr)
                for line in failures:
                    print(f"  {line}", file=sys.stderr)
                return 1
            print("multicore gate: scaling >= 0.8 x min(jobs, cores)",
                  file=sys.stderr)
        return 0

    report = run_benchmarks(quick=args.quick)
    payload: dict = report
    if args.before:
        with open(args.before) as fh:
            payload = merge_before(report, json.load(fh))
    print(json.dumps(payload, indent=1))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        print(f"report written to {args.out}", file=sys.stderr)
    if args.baseline:
        with open(args.baseline) as fh:
            failures = check_regression(report, json.load(fh), args.max_regression)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("perf gate: no regression beyond "
              f"{args.max_regression:.1f}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
