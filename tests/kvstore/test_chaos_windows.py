"""KV-store chaos: outage windows, degraded-latency windows, TXN_ABORT."""

from __future__ import annotations

import pytest

from repro.kvstore import EventualStore, StoreLatency, StrongStore
from repro.kvstore.base import TXN_ABORT
from repro.simulation import Simulator, Trace
from repro.simulation.chaos import StoreFaultWindow


@pytest.fixture
def latency() -> StoreLatency:
    return StoreLatency(base_s=1.0, per_byte_s=0.0)


def make_store(kind, sim, latency, trace=None):
    cls = EventualStore if kind == "eventual" else StrongStore
    return cls(sim, latency, name=kind, trace=trace)


@pytest.mark.parametrize("kind", ["eventual", "strong"])
class TestOutageWindows:
    def test_op_inside_outage_blocks_until_it_lifts(self, kind, sim, latency):
        store = make_store(kind, sim, latency)
        store.set_fault_windows((StoreFaultWindow(0.0, 50.0),))
        store.put_now("k", 1)
        done: list[float] = []
        store.read("k", lambda v: done.append(sim.now))
        sim.run()
        # Blocked until t=50, then the normal 1 s latency.
        assert done == [pytest.approx(51.0)]
        assert store.outage_blocked_ops == 1

    def test_op_outside_outage_unaffected(self, kind, sim, latency):
        store = make_store(kind, sim, latency)
        store.set_fault_windows((StoreFaultWindow(100.0, 50.0),))
        store.put_now("k", 1)
        done: list[float] = []
        store.read("k", lambda v: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0)]
        assert store.outage_blocked_ops == 0

    def test_outage_traced(self, kind, sim, latency, trace):
        store = make_store(kind, sim, latency, trace=trace)
        store.set_fault_windows((StoreFaultWindow(0.0, 10.0),))
        store.write("k", 7)
        sim.run()
        assert trace.count("kv.outage") == 1
        assert store.get_now("k") == 7  # write still lands after the window

    def test_rmw_blocks_too(self, kind, sim, latency):
        store = make_store(kind, sim, latency)
        store.set_fault_windows((StoreFaultWindow(0.0, 20.0),))
        store.put_now("k", 10)
        done: list[float] = []
        store.read_modify_write("k", lambda v: v + 1, lambda v: done.append(sim.now))
        sim.run()
        assert store.get_now("k") == 11
        assert done and done[0] >= 20.0


@pytest.mark.parametrize("kind", ["eventual", "strong"])
class TestDegradedWindows:
    def test_latency_multiplied(self, kind, sim, latency, trace):
        store = make_store(kind, sim, latency, trace=trace)
        store.set_fault_windows((StoreFaultWindow(0.0, 100.0, latency_factor=4.0),))
        store.put_now("k", 1)
        done: list[float] = []
        store.read("k", lambda v: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(4.0)]
        assert store.degraded_ops == 1
        assert trace.count("kv.degraded") == 1

    def test_healthy_after_window(self, kind, sim, latency):
        store = make_store(kind, sim, latency)
        store.set_fault_windows((StoreFaultWindow(0.0, 2.0, latency_factor=10.0),))
        store.put_now("k", 1)
        times: list[float] = []
        store.read("k", lambda v: times.append(sim.now))  # degraded: 10 s
        sim.run()
        store.read("k", lambda v: times.append(sim.now))  # healthy again: 1 s
        sim.run()
        assert times[0] == pytest.approx(10.0)
        assert times[1] == pytest.approx(11.0)


@pytest.mark.parametrize("kind", ["eventual", "strong"])
class TestTxnAbort:
    def test_abort_writes_nothing(self, kind, sim, latency, trace):
        store = make_store(kind, sim, latency, trace=trace)
        store.put_now("k", 5)
        version = store.version("k")
        done: list[object] = []
        store.read_modify_write("k", lambda v: TXN_ABORT, done.append)
        sim.run()
        assert store.get_now("k") == 5
        assert store.version("k") == version  # no version bump
        assert done == []  # on_done never fires for an aborted transaction
        assert trace.count("kv.txn_abort") == 1

    def test_abort_then_commit_serializes(self, kind, sim, latency):
        store = make_store(kind, sim, latency)
        store.put_now("k", 0)
        store.read_modify_write("k", lambda v: TXN_ABORT)
        store.read_modify_write("k", lambda v: v + 1)
        sim.run()
        assert store.get_now("k") == 1


class TestEventualAbortAccounting:
    def test_abort_not_counted_as_lost_update(self, sim, latency):
        store = EventualStore(sim, latency, name="redis")
        store.put_now("k", 0)
        # Two overlapping transactions; the first aborts, so the second's
        # commit clobbers nothing and no lost update may be counted.
        store.read_modify_write("k", lambda v: TXN_ABORT)
        store.read_modify_write("k", lambda v: v + 1)
        sim.run()
        assert store.get_now("k") == 1
        assert store.lost_updates == 0

    def test_abort_releases_in_flight_slot(self, sim, latency):
        store = EventualStore(sim, latency, name="redis")
        store.put_now("k", 0)
        store.read_modify_write("k", lambda v: TXN_ABORT)
        sim.run()
        assert store.concurrent_transactions("k") == 0


class TestStrongAbortLocking:
    def test_abort_releases_lock(self, sim, latency):
        store = StrongStore(sim, latency, name="mysql")
        store.put_now("k", 0)
        order: list[str] = []
        store.read_modify_write("k", lambda v: (order.append("abort"), TXN_ABORT)[1])
        store.read_modify_write(
            "k", lambda v: v + 1, lambda v: order.append("commit")
        )
        sim.run()
        # The aborted transaction must release the per-key lock so the
        # queued transaction runs (a leaked lock would deadlock here).
        assert order == ["abort", "commit"]
        assert store.get_now("k") == 1
