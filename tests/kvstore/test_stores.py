"""Eventual vs strong consistency store semantics and latency calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, KVStoreError
from repro.kvstore import (
    PAPER_MYSQL_UPDATE_S,
    PAPER_PARAM_BYTES,
    PAPER_REDIS_UPDATE_S,
    EventualStore,
    StoreLatency,
    StrongStore,
    mysql_like_latency,
    payload_nbytes,
    redis_like_latency,
)
from repro.simulation import Simulator


@pytest.fixture
def fast_latency() -> StoreLatency:
    return StoreLatency(base_s=1.0, per_byte_s=0.0)


class TestLatencyCalibration:
    def test_redis_update_matches_paper(self):
        lat = redis_like_latency()
        assert lat.update(PAPER_PARAM_BYTES) == pytest.approx(PAPER_REDIS_UPDATE_S)

    def test_mysql_update_matches_paper(self):
        lat = mysql_like_latency()
        assert lat.update(PAPER_PARAM_BYTES) == pytest.approx(PAPER_MYSQL_UPDATE_S)

    def test_paper_ratio_is_about_1_5x(self):
        # §IV-D: "a strong consistency database like MySQL takes 1.5 times
        # longer for each update transaction".
        ratio = PAPER_MYSQL_UPDATE_S / PAPER_REDIS_UPDATE_S
        assert ratio == pytest.approx(1.48, abs=0.02)

    def test_latency_monotone_in_bytes(self):
        lat = redis_like_latency()
        assert lat.update(10**6) < lat.update(10**7)

    def test_write_factor_scales_writes(self):
        lat = StoreLatency(base_s=0.1, per_byte_s=0.0, write_factor=2.0)
        assert lat.write(0) == pytest.approx(2 * lat.read(0))

    def test_invalid_latency(self):
        with pytest.raises(ConfigurationError):
            StoreLatency(base_s=-1, per_byte_s=0)
        with pytest.raises(ConfigurationError):
            redis_like_latency().read(-5)


class TestPayloadSizing:
    def test_ndarray_uses_nbytes(self):
        assert payload_nbytes(np.zeros(100)) == 800

    def test_bytes_uses_len(self):
        assert payload_nbytes(b"abc") == 3

    def test_override_wins(self):
        assert payload_nbytes(np.zeros(100), override=5) == 5

    def test_other_objects_get_nominal_size(self):
        assert payload_nbytes({"k": 1}) == 64


class TestSynchronousFace:
    def test_put_get_roundtrip(self, sim, fast_latency):
        store = EventualStore(sim, fast_latency)
        store.put_now("k", 123)
        assert store.get_now("k") == 123
        assert store.contains("k")
        assert store.keys() == ["k"]

    def test_missing_key_raises(self, sim, fast_latency):
        with pytest.raises(KVStoreError):
            EventualStore(sim, fast_latency).get_now("missing")

    def test_version_increments(self, sim, fast_latency):
        store = StrongStore(sim, fast_latency)
        assert store.version("k") == 0
        store.put_now("k", 1)
        store.put_now("k", 2)
        assert store.version("k") == 2


class TestAsyncReadWrite:
    def test_read_fires_after_latency(self, sim, fast_latency):
        store = EventualStore(sim, fast_latency)
        store.put_now("k", 7)
        got: list[tuple[float, int]] = []
        store.read("k", lambda v: got.append((sim.now, v)))
        sim.run()
        assert got == [(1.0, 7)]

    def test_write_visible_only_at_commit(self, sim, fast_latency):
        store = EventualStore(sim, fast_latency)
        store.put_now("k", 0)
        store.write("k", 42)
        assert store.get_now("k") == 0  # not yet committed
        sim.run()
        assert store.get_now("k") == 42


class TestEventualConsistency:
    def test_sequential_updates_none_lost(self, sim, fast_latency):
        store = EventualStore(sim, fast_latency)
        store.put_now("n", 0)

        def add_one_then_next(remaining: int) -> None:
            if remaining == 0:
                return
            store.read_modify_write(
                "n", lambda v: v + 1, on_done=lambda _: add_one_then_next(remaining - 1)
            )

        add_one_then_next(10)
        sim.run()
        assert store.get_now("n") == 10
        assert store.lost_updates == 0

    def test_concurrent_updates_lose_some(self, sim, fast_latency):
        """Two overlapping RMWs based on the same snapshot: one clobbers
        the other — the §III-D trade-off."""
        store = EventualStore(sim, fast_latency)
        store.put_now("n", 0)
        store.read_modify_write("n", lambda v: v + 1)
        store.read_modify_write("n", lambda v: v + 1)
        sim.run()
        assert store.get_now("n") == 1  # not 2
        assert store.lost_updates == 1

    def test_lost_update_counting_many(self, sim, fast_latency):
        store = EventualStore(sim, fast_latency)
        store.put_now("n", 0)
        for _ in range(5):
            store.read_modify_write("n", lambda v: v + 1)
        sim.run()
        assert store.get_now("n") == 1
        assert store.lost_updates == 4

    def test_in_flight_tracking(self, sim, fast_latency):
        store = EventualStore(sim, fast_latency)
        store.put_now("n", 0)
        store.read_modify_write("n", lambda v: v)
        store.read_modify_write("n", lambda v: v)
        assert store.concurrent_transactions("n") == 2
        sim.run()
        assert store.concurrent_transactions("n") == 0


class TestStrongConsistency:
    def test_concurrent_updates_all_applied(self, sim, fast_latency):
        store = StrongStore(sim, fast_latency)
        store.put_now("n", 0)
        for _ in range(5):
            store.read_modify_write("n", lambda v: v + 1)
        sim.run()
        assert store.get_now("n") == 5

    def test_serialization_stretches_time(self, sim, fast_latency):
        """5 concurrent transactions at 1 s each must take 5 s total."""
        store = StrongStore(sim, fast_latency)
        store.put_now("n", 0)
        commit_times: list[float] = []
        for _ in range(5):
            store.read_modify_write(
                "n", lambda v: v + 1, on_done=lambda _: commit_times.append(sim.now)
            )
        sim.run()
        assert commit_times == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0])

    def test_fifo_order(self, sim, fast_latency):
        store = StrongStore(sim, fast_latency)
        store.put_now("log", ())
        for tag in ("a", "b", "c"):
            store.read_modify_write("log", lambda v, t=tag: v + (t,))
        sim.run()
        assert store.get_now("log") == ("a", "b", "c")

    def test_queue_depth_and_wait_stats(self, sim, fast_latency):
        store = StrongStore(sim, fast_latency)
        store.put_now("n", 0)
        for _ in range(3):
            store.read_modify_write("n", lambda v: v + 1)
        assert store.queue_depth("n") == 2
        sim.run()
        assert store.max_queue_depth == 2
        # Waiters waited 1 s and 2 s respectively.
        assert store.total_wait_time == pytest.approx(3.0)

    def test_independent_keys_do_not_serialize(self, sim, fast_latency):
        store = StrongStore(sim, fast_latency)
        store.put_now("a", 0)
        store.put_now("b", 0)
        commits: list[float] = []
        store.read_modify_write("a", lambda v: v + 1, on_done=lambda _: commits.append(sim.now))
        store.read_modify_write("b", lambda v: v + 1, on_done=lambda _: commits.append(sim.now))
        sim.run()
        assert commits == pytest.approx([1.0, 1.0])


class TestStrongVsEventualRace:
    def test_same_workload_strong_slower_but_complete(self, sim):
        """The §IV-D trade-off in one test: strong loses nothing but takes
        ~1.5× longer per op; eventual finishes sooner but drops updates."""
        redis = EventualStore(Simulator(), redis_like_latency())
        mysql = StrongStore(Simulator(), mysql_like_latency())
        for store in (redis, mysql):
            store.put_now("n", 0)
            for _ in range(4):
                store.read_modify_write("n", lambda v: v + 1, nbytes=PAPER_PARAM_BYTES)
            store.sim.run()
        assert mysql.get_now("n") == 4
        assert redis.get_now("n") < 4
        assert mysql.sim.now > redis.sim.now
