"""Property tests for the consistency laws of the two stores."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import EventualStore, StoreLatency, StrongStore
from repro.simulation import Simulator


def drive(store_cls, schedule: list[float], latency_s: float) -> tuple[int, int]:
    """Issue +1 RMWs at the given times; return (final value, issued)."""
    sim = Simulator()
    store = store_cls(sim, StoreLatency(base_s=latency_s, per_byte_s=0.0))
    store.put_now("n", 0)
    for t in schedule:
        sim.schedule(t, lambda: store.read_modify_write("n", lambda v: v + 1))
    sim.run()
    return store.get_now("n"), len(schedule)


@settings(max_examples=40, deadline=None)
@given(
    times=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=15),
    latency=st.floats(0.1, 5.0),
)
def test_property_strong_store_never_loses(times, latency):
    """Serializable law: every increment lands, any schedule, any latency."""
    final, issued = drive(StrongStore, times, latency)
    assert final == issued


@settings(max_examples=40, deadline=None)
@given(
    times=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=15),
    latency=st.floats(0.1, 5.0),
)
def test_property_eventual_store_bounded_loss(times, latency):
    """Last-writer-wins laws: the committed count stays within [1, issued],
    and the ``lost_updates`` counter is a *conservative upper bound* on the
    truly lost effects (an effect can survive a clobber when a concurrent
    transaction snapshotted it first)."""
    sim = Simulator()
    store = EventualStore(sim, StoreLatency(base_s=latency, per_byte_s=0.0))
    store.put_now("n", 0)
    for t in times:
        sim.schedule(t, lambda: store.read_modify_write("n", lambda v: v + 1))
    sim.run()
    final = store.get_now("n")
    issued = len(times)
    assert 1 <= final <= issued
    truly_lost = issued - final
    assert store.lost_updates >= truly_lost


@settings(max_examples=30, deadline=None)
@given(count=st.integers(1, 12))
def test_property_spaced_updates_lose_nothing(count):
    """When operations never overlap (gaps > latency), even the eventual
    store behaves serializably."""
    latency = 0.5
    spaced = [i * (latency * 4 + 1.0) for i in range(count)]
    final, issued = drive(EventualStore, spaced, latency)
    assert final == issued


@settings(max_examples=25, deadline=None)
@given(burst=st.integers(2, 12))
def test_property_simultaneous_burst_keeps_exactly_one(burst):
    """All-at-once RMWs on the eventual store: last writer wins, so the
    value advances by exactly 1 and burst−1 updates are lost."""
    final, _ = drive(EventualStore, [1.0] * burst, latency_s=2.0)
    assert final == 1
