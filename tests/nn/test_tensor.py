"""Autograd engine tests: op gradients against numerical differentiation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GradientError
from repro.nn.tensor import Tensor, no_grad, unbroadcast

from ..conftest import numerical_gradient


def check_grad(build_loss, x_data: np.ndarray, tol: float = 1e-5) -> None:
    """Compare autograd vs central differences for a scalar loss in x."""
    x = Tensor(x_data.copy(), requires_grad=True)
    loss = build_loss(x)
    loss.backward()
    numeric = numerical_gradient(lambda: build_loss(Tensor(x.data)).item(), x.data)
    np.testing.assert_allclose(x.grad, numeric, rtol=tol, atol=tol)


class TestBasicOps:
    def test_add_backward(self, rng):
        check_grad(lambda x: (x + 3.0).sum(), rng.normal(size=(3, 4)))

    def test_mul_backward(self, rng):
        y = rng.normal(size=(3, 4))
        check_grad(lambda x: (x * y).sum(), rng.normal(size=(3, 4)))

    def test_sub_and_neg(self, rng):
        y = rng.normal(size=(2, 5))
        check_grad(lambda x: (y - x).sum(), rng.normal(size=(2, 5)))

    def test_div_backward(self, rng):
        y = rng.normal(size=(3,)) + 5.0
        check_grad(lambda x: (x / y).sum(), rng.normal(size=(3,)))
        check_grad(lambda x: (y / (x + 10.0)).sum(), rng.normal(size=(3,)))

    def test_pow_backward(self, rng):
        check_grad(lambda x: (x**3).sum(), rng.normal(size=(4,)))

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])  # type: ignore[operator]

    def test_matmul_backward(self, rng):
        b = rng.normal(size=(4, 2))
        check_grad(lambda x: (x @ b).sum(), rng.normal(size=(3, 4)))

    def test_matmul_second_arg_grad(self, rng):
        a = rng.normal(size=(3, 4))

        def loss(x: Tensor) -> Tensor:
            return (Tensor(a) @ x).sum()

        check_grad(loss, rng.normal(size=(4, 2)))

    def test_chained_expression(self, rng):
        y = rng.normal(size=(3, 3))
        check_grad(
            lambda x: ((x * 2.0 + y) @ x.T).sum() * 0.5, rng.normal(size=(3, 3))
        )


class TestBroadcasting:
    def test_add_broadcast_bias(self, rng):
        bias = rng.normal(size=(4,))
        check_grad(lambda x: (x + bias).sum(), rng.normal(size=(5, 4)))

    def test_grad_flows_to_broadcast_operand(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        y = Tensor(rng.normal(size=(5, 4)))
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, y.data.sum(axis=0))

    def test_unbroadcast_prepended_axes(self):
        g = np.ones((3, 4, 5))
        assert unbroadcast(g, (4, 5)).shape == (4, 5)
        np.testing.assert_allclose(unbroadcast(g, (4, 5)), 3 * np.ones((4, 5)))

    def test_unbroadcast_stretched_axes(self):
        g = np.ones((3, 4))
        out = unbroadcast(g, (3, 1))
        assert out.shape == (3, 1)
        np.testing.assert_allclose(out, 4 * np.ones((3, 1)))

    def test_unbroadcast_noop(self):
        g = np.ones((2, 2))
        assert unbroadcast(g, (2, 2)) is g


class TestShapeOps:
    def test_reshape_backward(self, rng):
        check_grad(lambda x: (x.reshape(6) * 2.0).sum(), rng.normal(size=(2, 3)))

    def test_transpose_backward(self, rng):
        y = rng.normal(size=(4, 3))
        check_grad(lambda x: (x.T * y).sum(), rng.normal(size=(3, 4)))

    def test_sum_axis_keepdims(self, rng):
        check_grad(
            lambda x: (x.sum(axis=1, keepdims=True) ** 2).sum(),
            rng.normal(size=(3, 4)),
        )

    def test_mean_matches_manual(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((3, 4), 1.0 / 12))

    def test_getitem_backward(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((5, 3))
        expected[1:3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        idx = np.array([0, 0, 1])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 1.0, 0.0, 0.0])


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (x + x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * np.ones(3))

    def test_backward_nonscalar_requires_grad_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_backward_grad_shape_mismatch(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward(np.ones(4))

    def test_backward_on_no_grad_tensor(self):
        x = Tensor(np.ones(3))
        with pytest.raises(GradientError):
            x.sum().backward()

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_restores_state(self):
        with no_grad():
            pass
        x = Tensor(np.ones(1), requires_grad=True)
        assert (x * 2).requires_grad

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data  # no copy

    def test_zero_grad_keeps_buffer(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        buf = x.grad
        x.zero_grad()
        assert x.grad is buf
        np.testing.assert_allclose(x.grad, 0.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_diamond_graph(self, rng):
        # z = (x*2) + (x*3): both branches contribute.
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, 5 * np.ones(3))

    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert np.issubdtype(t.dtype, np.floating)

    def test_repr_and_len(self):
        t = Tensor(np.zeros((4, 2)), requires_grad=True)
        assert "requires_grad" in repr(t)
        assert len(t) == 4


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_matmul_grad_matches_numeric(rows, cols, seed):
    """Property: d/dA sum(A @ B) == column-sum broadcast of B, any shape."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    b = rng.normal(size=(cols, 3))
    (a @ Tensor(b)).sum().backward()
    expected = np.tile(b.sum(axis=1), (rows, 1))
    np.testing.assert_allclose(a.grad, expected, rtol=1e-9, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_property_sum_then_backward_is_ones(seed):
    rng = np.random.default_rng(seed)
    shape = (int(rng.integers(1, 5)), int(rng.integers(1, 5)))
    x = Tensor(rng.normal(size=shape), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones(shape))
