"""StateLayout codec: legacy equivalence, zero-copy views, mutation safety."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.nn.serialization import (
    GradientAccumulator,
    StateLayout,
    state_to_vector,
    vector_to_state,
)


def legacy_pack(state: dict[str, np.ndarray]) -> np.ndarray:
    """The historical codec: sorted keys, ravel, concatenate."""
    return np.concatenate(
        [np.asarray(state[k], dtype=np.float64).ravel() for k in sorted(state)]
    )


@st.composite
def random_states(draw) -> dict[str, np.ndarray]:
    n_keys = draw(st.integers(1, 6))
    state = {}
    for i in range(n_keys):
        ndim = draw(st.integers(0, 3))
        shape = tuple(draw(st.integers(1, 4)) for _ in range(ndim))
        seed = draw(st.integers(0, 2**31 - 1))
        values = np.random.default_rng(seed).normal(size=shape)
        # Mixed key styles, including buffer-prefixed ones.
        prefix = "buffer:" if draw(st.booleans()) else ""
        state[f"{prefix}k{i:02d}"] = values
    return state


class TestLegacyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(state=random_states())
    def test_pack_matches_legacy_concatenate(self, state):
        layout = StateLayout.for_state(state)
        np.testing.assert_array_equal(layout.pack(state), legacy_pack(state))

    @settings(max_examples=40, deadline=None)
    @given(state=random_states())
    def test_roundtrip_exact(self, state):
        layout = StateLayout.for_state(state)
        restored = layout.unpack(layout.pack(state))
        assert set(restored) == set(state)
        for key in state:
            np.testing.assert_array_equal(restored[key], state[key])
            assert restored[key].shape == np.asarray(state[key]).shape

    @settings(max_examples=25, deadline=None)
    @given(state=random_states())
    def test_module_level_helpers_delegate(self, state):
        vec = state_to_vector(state)
        np.testing.assert_array_equal(vec, legacy_pack(state))
        restored = vector_to_state(vec, state)
        for key in state:
            np.testing.assert_array_equal(restored[key], state[key])


class TestLayoutCache:
    def test_same_signature_reuses_layout(self, rng):
        a = {"w": rng.normal(size=(3, 2)), "b": rng.normal(size=2)}
        b = {"w": rng.normal(size=(3, 2)), "b": rng.normal(size=2)}
        assert StateLayout.for_state(a) is StateLayout.for_state(b)

    def test_different_shapes_get_different_layouts(self, rng):
        a = {"w": rng.normal(size=(3, 2))}
        b = {"w": rng.normal(size=(2, 3))}
        assert StateLayout.for_state(a) is not StateLayout.for_state(b)


class TestViewsAndAliasing:
    def test_views_are_zero_copy(self, rng):
        state = {"w": rng.normal(size=(4, 3)), "b": rng.normal(size=3)}
        layout = StateLayout.for_state(state)
        vec = layout.pack(state)
        views = layout.views(vec)
        for view in views.values():
            assert view.base is vec
        # Mutating a view is visible through the vector (that is the point).
        # Keys are laid out sorted, so "b" occupies the first three slots.
        views["b"][0] = 123.0
        assert vec[0] == 123.0

    def test_unpack_returns_owning_copies(self, rng):
        state = {"w": rng.normal(size=(4, 3))}
        layout = StateLayout.for_state(state)
        vec = layout.pack(state)
        restored = layout.unpack(vec)
        restored["w"][0, 0] = 999.0
        assert vec[0] != 999.0

    def test_pack_into_preallocated_out(self, rng):
        state = {"w": rng.normal(size=(5, 2))}
        layout = StateLayout.for_state(state)
        out = layout.empty()
        returned = layout.pack(state, out=out)
        assert returned is out
        np.testing.assert_array_equal(out, legacy_pack(state))

    def test_unpack_into_live_arrays(self, rng):
        state = {"w": rng.normal(size=(4, 3)), "b": rng.normal(size=3)}
        layout = StateLayout.for_state(state)
        vec = layout.pack(state)
        dest = {k: np.zeros_like(v) for k, v in state.items()}
        bindings = dict(dest)  # unpack_into must write through, not rebind
        layout.unpack_into(vec, dest)
        for key in state:
            np.testing.assert_array_equal(dest[key], state[key])
            assert dest[key] is bindings[key]

    def test_pack_size_mismatch_raises(self, rng):
        state = {"w": rng.normal(size=(4, 3))}
        layout = StateLayout.for_state(state)
        with pytest.raises(SerializationError):
            layout.pack({"w": rng.normal(size=(4, 4))})


class TestAccumulator:
    def test_accumulate_matches_sum_of_packed_gradients(self, rng):
        template = {"w": rng.normal(size=(3, 3)), "b": rng.normal(size=3)}
        acc = GradientAccumulator(template)
        total = np.zeros(12)
        for _ in range(4):
            grads = {k: rng.normal(size=v.shape) for k, v in template.items()}
            acc.add(grads)
            total += legacy_pack(grads)
        np.testing.assert_array_equal(acc.total, total)

    def test_missing_keys_contribute_zero(self, rng):
        template = {"w": rng.normal(size=(2, 2)), "b": rng.normal(size=2)}
        acc = GradientAccumulator(template)
        acc.add({"b": np.ones(2)})
        # Sorted layout: "b" first, then the four scalars of "w".
        np.testing.assert_array_equal(acc.total, [1, 1, 0, 0, 0, 0])
