"""Module/layer semantics: registration, state dicts, modes, shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    Module,
    Parameter,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.tensor import Tensor


class TestModuleRegistry:
    def test_parameters_discovered_depth_first(self, rng):
        net = Sequential(Dense(4, 8, rng), ReLU(), Dense(8, 2, rng))
        params = list(net.parameters())
        assert len(params) == 4  # two weights + two biases
        assert params[0].shape == (4, 8)

    def test_named_parameters_paths(self, rng):
        net = Sequential(Dense(4, 3, rng, bias=False))
        names = dict(net.named_parameters())
        assert list(names) == ["0.weight"]

    def test_num_parameters(self, rng):
        net = Dense(10, 5, rng)
        assert net.num_parameters() == 10 * 5 + 5

    def test_train_eval_propagates(self, rng):
        net = Sequential(BatchNorm(3), Sequential(BatchNorm(3)))
        net.eval()
        assert all(not m.training for m in [net, *net._modules.values()])
        net.train()
        assert net.training

    def test_zero_grad_clears_all(self, rng):
        net = Dense(3, 2, rng)
        out = net(Tensor(rng.normal(size=(4, 3))))
        out.sum().backward()
        assert net.weight.grad is not None and net.weight.grad.any()
        net.zero_grad()
        assert not net.weight.grad.any()


class TestStateDict:
    def test_roundtrip(self, rng):
        a = Sequential(Dense(4, 3, rng), BatchNorm(3))
        b = Sequential(Dense(4, 3, rng), BatchNorm(3))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_includes_buffers(self, rng):
        net = BatchNorm(3)
        state = net.state_dict()
        assert "buffer:running_mean" in state
        assert "buffer:running_var" in state

    def test_state_dict_is_a_copy(self, rng):
        net = Dense(2, 2, rng)
        state = net.state_dict()
        state["weight"][:] = 99.0
        assert not (net.weight.data == 99.0).any()

    def test_load_missing_key_raises(self, rng):
        net = Dense(2, 2, rng)
        state = net.state_dict()
        del state["bias"]
        with pytest.raises(ShapeError):
            net.load_state_dict(state)

    def test_load_extra_key_raises(self, rng):
        net = Dense(2, 2, rng)
        state = net.state_dict()
        state["ghost"] = np.zeros(2)
        with pytest.raises(ShapeError):
            net.load_state_dict(state)

    def test_load_wrong_shape_raises(self, rng):
        net = Dense(2, 2, rng)
        state = net.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ShapeError):
            net.load_state_dict(state)

    def test_load_preserves_array_identity(self, rng):
        # In-place copy: optimizers hold references to the same buffers.
        net = Dense(2, 2, rng)
        buf = net.weight.data
        net.load_state_dict(net.state_dict())
        assert net.weight.data is buf


class TestDense:
    def test_forward_formula(self, rng):
        layer = Dense(3, 2, rng)
        x = rng.normal(size=(5, 3))
        out = layer(Tensor(x))
        np.testing.assert_allclose(
            out.data, x @ layer.weight.data + layer.bias.data, rtol=1e-12
        )

    def test_no_bias(self, rng):
        layer = Dense(3, 2, rng, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_invalid_dims(self, rng):
        with pytest.raises(ConfigurationError):
            Dense(0, 2, rng)

    def test_string_initializer(self, rng):
        layer = Dense(3, 2, rng, initializer="zeros")
        np.testing.assert_array_equal(layer.weight.data, 0.0)


class TestConv2DLayer:
    def test_output_shape(self, rng):
        layer = Conv2D(3, 8, 3, rng, stride=2, padding=1)
        out = layer(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_invalid_geometry(self, rng):
        with pytest.raises(ConfigurationError):
            Conv2D(3, 8, 0, rng)


class TestBatchNorm:
    def test_normalizes_in_train_mode(self, rng):
        bn = BatchNorm(4)
        x = rng.normal(loc=5.0, scale=3.0, size=(64, 4))
        out = bn(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_update(self, rng):
        bn = BatchNorm(2, momentum=0.5)
        x = rng.normal(loc=10.0, size=(32, 2))
        bn(Tensor(x))
        assert (bn.running_mean > 1.0).all()  # moved toward batch mean 10

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm(2)
        for _ in range(50):
            bn(Tensor(rng.normal(loc=3.0, size=(32, 2))))
        bn.eval()
        x = rng.normal(loc=3.0, size=(16, 2))
        out = bn(Tensor(x))
        # Normalizing by running stats of the same distribution ~ centers it.
        assert abs(out.data.mean()) < 0.5

    def test_4d_input(self, rng):
        bn = BatchNorm(3)
        out = bn(Tensor(rng.normal(size=(2, 3, 4, 4))))
        assert out.shape == (2, 3, 4, 4)

    def test_rejects_3d(self, rng):
        with pytest.raises(ShapeError):
            BatchNorm(3)(Tensor(rng.normal(size=(2, 3, 4))))

    def test_gamma_beta_trainable(self, rng):
        bn = BatchNorm(3)
        out = bn(Tensor(rng.normal(size=(8, 3)), requires_grad=False))
        out.sum().backward()
        assert bn.beta.grad is not None


class TestComposites:
    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.normal(size=(2, 3, 4))))
        assert out.shape == (2, 12)

    def test_sequential_append_and_iter(self, rng):
        net = Sequential(Dense(2, 2, rng))
        net.append(ReLU())
        assert len(net) == 2
        assert isinstance(list(net)[1], ReLU)

    def test_activation_modules(self, rng):
        x = Tensor(rng.normal(size=(3, 3)))
        for mod, fn in [(ReLU(), np.maximum), (Tanh(), None), (Sigmoid(), None)]:
            out = mod(x)
            assert out.shape == x.shape

    def test_residual_identity(self, rng):
        body = Dense(4, 4, rng, initializer="zeros", bias=False)
        res = Residual(body)
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(res(Tensor(x)).data, x)

    def test_residual_projection_shortcut(self, rng):
        body = Dense(4, 6, rng)
        shortcut = Dense(4, 6, rng)
        res = Residual(body, shortcut)
        out = res(Tensor(rng.normal(size=(2, 4))))
        assert out.shape == (2, 6)

    def test_residual_shape_mismatch_raises(self, rng):
        res = Residual(Dense(4, 6, rng))
        with pytest.raises(ShapeError):
            res(Tensor(rng.normal(size=(2, 4))))

    def test_pooling_modules(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        assert MaxPool2D(2)(x).shape == (1, 2, 2, 2)
        assert GlobalAvgPool2D()(x).shape == (1, 2)

    def test_dropout_module_respects_mode(self, rng):
        drop = Dropout(0.5, rng)
        x = Tensor(np.ones((8, 8)))
        drop.eval()
        np.testing.assert_array_equal(drop(x).data, x.data)
        drop.train()
        assert (drop(x).data == 0).any()


class TestParameter:
    def test_always_requires_grad(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad
