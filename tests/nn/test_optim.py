"""Optimizer and LR-schedule tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Dense, Parameter
from repro.nn.losses import cross_entropy
from repro.nn.optim import SGD, Adam, ConstantLR, CosineLR, StepDecayLR
from repro.nn.tensor import Tensor


def quadratic_param(start: float = 5.0) -> Parameter:
    return Parameter(np.array([start]))


def quadratic_step(p: Parameter) -> None:
    """Set grad of f(x) = x^2 manually: grad = 2x."""
    p.grad = 2.0 * p.data.copy()


class TestSGD:
    def test_plain_update_formula(self):
        p = quadratic_param(1.0)
        opt = SGD([p], lr=0.1)
        quadratic_step(p)
        opt.step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 2.0])

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            quadratic_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-6

    def test_momentum_accelerates(self):
        plain, heavy = quadratic_param(), quadratic_param()
        opt_p = SGD([plain], lr=0.01)
        opt_m = SGD([heavy], lr=0.01, momentum=0.9)
        for _ in range(20):
            quadratic_step(plain)
            opt_p.step()
            quadratic_step(heavy)
            opt_m.step()
        assert abs(heavy.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([3.0]))
        SGD([p], lr=0.1).step()  # no grad set
        np.testing.assert_allclose(p.data, [3.0])

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD([quadratic_param()], lr=0.1, momentum=1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_update_is_in_place(self):
        p = quadratic_param()
        buf = p.data
        opt = SGD([p], lr=0.1)
        quadratic_step(p)
        opt.step()
        assert p.data is buf


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first step ≈ lr * sign(grad).
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([3.7])
        opt.step()
        np.testing.assert_allclose(p.data, [1.0 - 0.01], rtol=1e-6)

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(300):
            quadratic_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_state_allocated_lazily_per_param(self):
        a, b = quadratic_param(), quadratic_param()
        opt = Adam([a, b], lr=0.1)
        quadratic_step(a)
        opt.step()
        assert 0 in opt._m and 1 not in opt._m

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam([quadratic_param()], beta1=1.0)

    def test_trains_real_model(self, rng):
        model = Dense(8, 3, rng)
        opt = Adam(model.parameters(), lr=0.05)
        x = rng.normal(size=(32, 8))
        y = x[:, :3].argmax(axis=1)  # linearly learnable labels
        first = None
        for _ in range(60):
            model.zero_grad()
            loss = cross_entropy(model(Tensor(x)), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.3

    def test_update_is_in_place(self):
        p = quadratic_param()
        buf = p.data
        opt = Adam([p], lr=0.1)
        quadratic_step(p)
        opt.step()
        assert p.data is buf


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.01)
        assert s.lr_at(0) == s.lr_at(1000) == 0.01

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ConstantLR(0.0)

    def test_step_decay(self):
        s = StepDecayLR(1.0, step_size=10, gamma=0.1)
        assert s.lr_at(0) == 1.0
        assert s.lr_at(10) == pytest.approx(0.1)
        assert s.lr_at(25) == pytest.approx(0.01)

    def test_cosine_endpoints(self):
        s = CosineLR(1.0, total_steps=100, min_lr=0.1)
        assert s.lr_at(0) == pytest.approx(1.0)
        assert s.lr_at(100) == pytest.approx(0.1)
        assert s.lr_at(200) == pytest.approx(0.1)  # clamps past the end

    def test_optimizer_uses_schedule(self):
        p = quadratic_param()
        opt = SGD([p], lr=StepDecayLR(1.0, step_size=1, gamma=0.5))
        assert opt.lr == 1.0
        quadratic_step(p)
        opt.step()
        assert opt.lr == 0.5
