"""Loss function tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import Parameter
from repro.nn.losses import cross_entropy, l2_penalty, mae_loss, mse_loss
from repro.nn.tensor import Tensor

from ..conftest import numerical_gradient


class TestCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((3, 5), -50.0)
        logits[np.arange(3), [0, 1, 2]] = 50.0
        loss = cross_entropy(Tensor(logits), np.array([0, 1, 2]))
        assert loss.item() < 1e-8

    def test_gradient_matches_numeric(self, rng):
        y = np.array([0, 2, 1, 2])
        x_data = rng.normal(size=(4, 3))

        def loss(t: Tensor) -> Tensor:
            return cross_entropy(t, y)

        x = Tensor(x_data.copy(), requires_grad=True)
        loss(x).backward()
        numeric = numerical_gradient(lambda: loss(Tensor(x.data)).item(), x.data)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-6, atol=1e-7)

    def test_gradient_closed_form(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        y = np.array([1, 0])
        cross_entropy(x, y).backward()
        # grad = (softmax - onehot)/N
        e = np.exp(x.data - x.data.max(axis=1, keepdims=True))
        soft = e / e.sum(axis=1, keepdims=True)
        soft[np.arange(2), y] -= 1
        np.testing.assert_allclose(x.grad, soft / 2, rtol=1e-9)

    def test_stable_for_large_logits(self):
        logits = Tensor(np.array([[1e4, -1e4]]), requires_grad=True)
        loss = cross_entropy(logits, np.array([1]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(rng.normal(size=(4,))), np.zeros(4, dtype=int))
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(rng.normal(size=(4, 3))), np.zeros(5, dtype=int))

    def test_label_range_validation(self, rng):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(rng.normal(size=(2, 3))), np.array([0, 3]))


class TestRegressionLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        assert mse_loss(pred, np.array([1.0, 2.0, 5.0])).item() == pytest.approx(4.0 / 3)

    def test_mse_grad(self, rng):
        target = rng.normal(size=(4,))
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        mse_loss(x, target).backward()
        np.testing.assert_allclose(x.grad, 2 * (x.data - target) / 4, rtol=1e-9)

    def test_mae_value(self):
        pred = Tensor(np.array([1.0, -1.0]))
        assert mae_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(1.0)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            mse_loss(Tensor(np.ones(3)), np.ones(4))
        with pytest.raises(ShapeError):
            mae_loss(Tensor(np.ones(3)), np.ones(4))


class TestL2Penalty:
    def test_value(self):
        params = [Parameter(np.array([1.0, 2.0])), Parameter(np.array([3.0]))]
        assert l2_penalty(params, 0.5).item() == pytest.approx(0.5 * 14.0)

    def test_empty_list(self):
        assert l2_penalty([], 0.5).item() == 0.0

    def test_gradient_is_scaled_params(self):
        p = Parameter(np.array([2.0, -3.0]))
        l2_penalty([p], 0.1).backward()
        np.testing.assert_allclose(p.grad, 0.1 * 2 * p.data)
