"""Property-based gradient checking over random architectures.

The single most important invariant of the NN substrate: for *any* small
network the autograd gradient matches central differences.  Hypothesis
draws architectures (depth, widths, activation, batch-norm) and inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, cross_entropy, make_mlp
from repro.nn.layers import ReLU

from ..conftest import numerical_gradient


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    depth=st.integers(0, 2),
    width=st.integers(2, 6),
    activation=st.sampled_from(["relu", "tanh"]),
    batch=st.integers(1, 4),
)
def test_property_random_mlp_gradients_match_numeric(
    seed, depth, width, activation, batch
):
    rng = np.random.default_rng(seed)
    in_features, classes = 5, 3
    model = make_mlp(
        rng,
        in_features=in_features,
        hidden=tuple([width] * depth),
        num_classes=classes,
        activation=activation,
    )
    x = rng.normal(size=(batch, in_features))
    # Keep ReLU inputs away from the kink for a clean numeric comparison.
    if activation == "relu":
        x = x + np.sign(x) * 0.05
    y = rng.integers(0, classes, size=batch)

    # Hidden pre-activations can still land on a ReLU kink, where central
    # differences disagree with the subgradient; reject those draws.
    if activation == "relu":
        h = Tensor(x)
        for layer in model.layers:
            if isinstance(layer, ReLU):
                assume(np.abs(h.data).min() > 1e-3)
            h = layer(h)

    def loss_value() -> float:
        return cross_entropy(model(Tensor(x)), y).item()

    model.zero_grad()
    cross_entropy(model(Tensor(x)), y).backward()

    # Check the gradient of one randomly chosen parameter tensor in full.
    params = list(model.parameters())
    target = params[int(rng.integers(len(params)))]
    numeric = numerical_gradient(lambda: loss_value(), target.data)
    np.testing.assert_allclose(target.grad, numeric, rtol=2e-4, atol=2e-6)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_property_gradients_zero_for_uninvolved_classes(seed):
    """Bias gradient of the logit layer sums to zero across classes
    (softmax cross-entropy's probability conservation)."""
    rng = np.random.default_rng(seed)
    model = make_mlp(rng, in_features=4, hidden=(5,), num_classes=4)
    x = rng.normal(size=(6, 4))
    y = rng.integers(0, 4, size=6)
    model.zero_grad()
    cross_entropy(model(Tensor(x)), y).backward()
    final_bias = list(model.parameters())[-1]
    assert abs(final_bias.grad.sum()) < 1e-12
