"""Gradient and semantics tests for repro.nn.functional."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn.functional as F
from repro.errors import ShapeError
from repro.nn.tensor import Tensor

from ..conftest import numerical_gradient


def check_grad(build_loss, x_data: np.ndarray, tol: float = 1e-5) -> None:
    x = Tensor(x_data.copy(), requires_grad=True)
    build_loss(x).backward()
    numeric = numerical_gradient(lambda: build_loss(Tensor(x.data)).item(), x.data)
    np.testing.assert_allclose(x.grad, numeric, rtol=tol, atol=tol)


class TestActivations:
    def test_relu_forward(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_grad(self, rng):
        # Shift away from 0 to keep central differences well-defined.
        x = rng.normal(size=(4, 4))
        x[np.abs(x) < 0.05] += 0.1
        check_grad(lambda t: F.relu(t).sum(), x)

    def test_leaky_relu_grad(self, rng):
        x = rng.normal(size=(3, 5))
        x[np.abs(x) < 0.05] += 0.1
        check_grad(lambda t: F.leaky_relu(t, 0.1).sum(), x)

    def test_sigmoid_range_and_grad(self, rng):
        x = rng.normal(size=(10,)) * 3
        out = F.sigmoid(Tensor(x))
        assert np.all(out.data > 0) and np.all(out.data < 1)
        check_grad(lambda t: F.sigmoid(t).sum(), x)

    def test_sigmoid_extreme_values_stable(self):
        out = F.sigmoid(Tensor([-500.0, 500.0]))
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_tanh_grad(self, rng):
        check_grad(lambda t: F.tanh(t).sum(), rng.normal(size=(6,)))

    def test_exp_log_roundtrip_grad(self, rng):
        x = np.abs(rng.normal(size=(5,))) + 0.5
        check_grad(lambda t: F.log(F.exp(t)).sum(), x)

    def test_sqrt_grad(self, rng):
        x = np.abs(rng.normal(size=(5,))) + 0.5
        check_grad(lambda t: F.sqrt(t).sum(), x)

    def test_abs_grad(self, rng):
        x = rng.normal(size=(5,))
        x[np.abs(x) < 0.05] += 0.2
        check_grad(lambda t: F.abs(t).sum(), x)

    def test_clip_grad_zero_outside(self):
        x = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        F.clip(x, 0.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_tie_goes_to_first(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([1.0, 3.0], requires_grad=True)
        F.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 7))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4), rtol=1e-12)

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_softmax_grad(self, rng):
        w = rng.normal(size=(3, 4))
        check_grad(lambda t: (F.softmax(t) * w).sum(), rng.normal(size=(3, 4)))

    def test_log_softmax_grad(self, rng):
        w = rng.normal(size=(2, 5))
        check_grad(lambda t: (F.log_softmax(t) * w).sum(), rng.normal(size=(2, 5)))

    def test_log_softmax_equals_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 6)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), rtol=1e-9
        )


class TestDropout:
    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_zero_p_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        assert F.dropout(x, 0.0, rng, training=True) is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_dropout_invalid_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_dropout_grad_masks(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        out = F.dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        # Gradient is zero exactly where the output was dropped.
        np.testing.assert_allclose((x.grad == 0), (out.data == 0))


class TestConcatStack:
    def test_concatenate_forward_backward(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        out = F.concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, 2 * np.ones((4, 3)))

    def test_concatenate_axis1(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 1)), requires_grad=True)
        F.concatenate([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 3) and b.grad.shape == (2, 1)

    def test_concatenate_empty_raises(self):
        with pytest.raises(ShapeError):
            F.concatenate([])

    def test_stack_forward_backward(self, rng):
        parts = [Tensor(rng.normal(size=(3,)), requires_grad=True) for _ in range(4)]
        out = F.stack(parts, axis=0)
        assert out.shape == (4, 3)
        out.sum().backward()
        for p in parts:
            np.testing.assert_allclose(p.grad, np.ones(3))

    def test_stack_empty_raises(self):
        with pytest.raises(ShapeError):
            F.stack([])


class TestPadAndEmbedding:
    def test_pad2d_shape_and_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        out = F.pad2d(x, 2)
        assert out.shape == (2, 3, 8, 8)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4, 4)))

    def test_pad2d_zero_is_identity(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 2, 2)))
        assert F.pad2d(x, 0) is x

    def test_pad2d_rejects_non4d(self):
        with pytest.raises(ShapeError):
            F.pad2d(Tensor(np.ones((3, 3))), 1)

    def test_embedding_lookup_grad_scatter(self):
        table = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        idx = np.array([0, 2, 0])
        out = F.embedding_lookup(table, idx)
        np.testing.assert_allclose(out.data, table.data[idx])
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 2.0
        expected[2] = 1.0
        np.testing.assert_allclose(table.grad, expected)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), cols=st.integers(2, 8))
def test_property_softmax_is_probability_distribution(seed, cols):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(3, cols)) * 5)
    out = F.softmax(x).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=1), np.ones(3), rtol=1e-9)
