"""Parameter serialization tests (bytes blobs and flat vectors)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.nn.models import ModelSpec, build_model
from repro.nn.serialization import (
    compressed_size,
    state_checksum,
    state_from_bytes,
    state_num_scalars,
    state_to_bytes,
    state_to_vector,
    vector_to_state,
)


@pytest.fixture
def state(rng) -> dict[str, np.ndarray]:
    return {
        "w1": rng.normal(size=(4, 3)),
        "b1": rng.normal(size=(3,)),
        "buffer:running": rng.normal(size=(3,)),
    }


class TestBytesRoundtrip:
    def test_roundtrip_exact(self, state):
        restored = state_from_bytes(state_to_bytes(state))
        assert set(restored) == set(state)
        for key in state:
            np.testing.assert_array_equal(restored[key], state[key])

    def test_uncompressed_roundtrip(self, state):
        restored = state_from_bytes(state_to_bytes(state, compress=False))
        np.testing.assert_array_equal(restored["w1"], state["w1"])

    def test_garbage_raises(self):
        with pytest.raises(SerializationError):
            state_from_bytes(b"not an npz file")

    def test_compression_shrinks_redundant_data(self):
        state = {"w": np.zeros((100, 100))}
        assert len(state_to_bytes(state)) < len(state_to_bytes(state, compress=False))


class TestVectorRoundtrip:
    def test_roundtrip_exact(self, state):
        vec = state_to_vector(state)
        assert vec.size == state_num_scalars(state)
        restored = vector_to_state(vec, state)
        for key in state:
            np.testing.assert_array_equal(restored[key], state[key])

    def test_vector_order_is_key_sorted(self):
        state = {"b": np.array([2.0]), "a": np.array([1.0])}
        np.testing.assert_array_equal(state_to_vector(state), [1.0, 2.0])

    def test_size_mismatch_raises(self, state):
        with pytest.raises(SerializationError):
            vector_to_state(np.zeros(3), state)

    def test_empty_state_raises(self):
        with pytest.raises(SerializationError):
            state_to_vector({})

    def test_vector_is_contiguous_float64(self, state):
        vec = state_to_vector(state)
        assert vec.flags["C_CONTIGUOUS"]
        assert vec.dtype == np.float64

    def test_model_state_roundtrip(self, rng):
        spec = ModelSpec("mlp", {"in_features": 6, "hidden": [4], "num_classes": 3})
        model = build_model(spec, rng)
        state = model.state_dict()
        vec = state_to_vector(state)
        model2 = build_model(spec, np.random.default_rng(99))
        model2.load_state_dict(vector_to_state(vec, model2.state_dict()))
        np.testing.assert_array_equal(
            state_to_vector(model2.state_dict()), vec
        )


class TestChecksum:
    def test_stable(self, state):
        assert state_checksum(state) == state_checksum(state)

    def test_sensitive_to_values(self, state):
        changed = dict(state)
        changed["w1"] = state["w1"] + 1e-12
        assert state_checksum(changed) != state_checksum(state)

    def test_sensitive_to_keys(self, state):
        renamed = {("x" + k): v for k, v in state.items()}
        assert state_checksum(renamed) != state_checksum(state)

    def test_insensitive_to_dict_order(self, state):
        reordered = dict(reversed(list(state.items())))
        assert state_checksum(reordered) == state_checksum(state)


class TestCompressedSize:
    def test_zeros_compress_well(self):
        raw = np.zeros(10000)
        assert compressed_size(raw) < raw.nbytes / 50

    def test_random_data_compresses_poorly(self, rng):
        raw = rng.normal(size=10000)
        assert compressed_size(raw) > raw.nbytes * 0.5

    def test_accepts_bytes(self):
        assert compressed_size(b"a" * 1000) < 100


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n_arrays=st.integers(1, 5))
def test_property_vector_roundtrip_any_shapes(seed, n_arrays):
    rng = np.random.default_rng(seed)
    state = {}
    for i in range(n_arrays):
        shape = tuple(int(s) for s in rng.integers(1, 4, size=int(rng.integers(1, 4))))
        state[f"p{i}"] = rng.normal(size=shape)
    vec = state_to_vector(state)
    restored = vector_to_state(vec, state)
    for key in state:
        np.testing.assert_array_equal(restored[key], state[key])
