"""Property suite: batched cohort kernels == per-client serial loop, bitwise.

The multi-core execution plane (DESIGN.md §8.5) fuses N homogeneous
clients' local-training subtasks into one stacked pass over a
``cohort_size`` axis.  Its entire correctness contract is *bit-identical
to the serial path* — not approximately equal, byte-for-byte equal — so
these tests compare ``CohortTrainer`` against the single-client oracle
``run_local_step`` with ``ndarray.tobytes()`` equality across
architectures, dtypes, cohort sizes 1–8, both optimizers, and both
gradient-collection modes (plain VC-ASGD vs gradient-consuming rules).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.steps import draw_batch_orders, run_local_step
from repro.data import Dataset
from repro.nn.cohort import CohortTrainer
from repro.nn.models import make_convnet, make_mlp
from repro.nn.serialization import StateLayout


def _members(template, group, rng, *, n, x_shape, num_classes, dtype, epochs):
    """Build one cohort's worth of inputs: base vectors, shards, orders."""
    layout = StateLayout.for_state(template.state_dict())
    init = layout.pack(template.state_arrays())
    base_vecs = np.stack(
        [init + 0.05 * rng.standard_normal(layout.total_size) for _ in range(group)]
    )
    shards = [
        Dataset(
            rng.normal(size=(n, *x_shape)).astype(dtype),
            rng.integers(0, num_classes, size=n),
        )
        for _ in range(group)
    ]
    orders = [draw_batch_orders(rng, n, epochs) for _ in range(group)]
    return layout, base_vecs, shards, orders


def _assert_cohort_matches_serial(
    template, group, rng, *, n, x_shape, num_classes, dtype,
    batch_size, optimizer, learning_rate, epochs, collect_gradient,
):
    layout, base_vecs, shards, orders = _members(
        template, group, rng,
        n=n, x_shape=x_shape, num_classes=num_classes, dtype=dtype, epochs=epochs,
    )
    packed, totals = CohortTrainer(template, group).run(
        base_vecs, shards, orders,
        batch_size=batch_size, optimizer=optimizer,
        learning_rate=learning_rate, local_epochs=epochs,
        collect_gradient=collect_gradient,
    )
    assert packed.shape == (group, layout.total_size)
    state_arrays = template.state_arrays()
    for g in range(group):
        vec, grad = run_local_step(
            template, state_arrays, layout, base_vecs[g], shards[g], orders[g],
            batch_size=batch_size, optimizer=optimizer,
            learning_rate=learning_rate, collect_gradient=collect_gradient,
        )
        assert packed[g].tobytes() == vec.tobytes(), f"member {g} params differ"
        if collect_gradient:
            assert totals[g].tobytes() == grad.tobytes(), f"member {g} grads differ"
        else:
            assert totals is None and grad is None


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    group=st.integers(1, 8),
    hidden=st.integers(2, 6),
    batch_norm=st.booleans(),
    activation=st.sampled_from(["relu", "tanh"]),
    dtype=st.sampled_from([np.float32, np.float64]),
    optimizer=st.sampled_from(["adam", "sgd"]),
    collect_gradient=st.booleans(),
    batch_size=st.integers(2, 7),
)
def test_property_mlp_cohort_bitwise_equals_serial(
    seed, group, hidden, batch_norm, activation, dtype,
    optimizer, collect_gradient, batch_size,
):
    rng = np.random.default_rng(seed)
    in_features, num_classes = 6, 3
    template = make_mlp(
        rng, in_features=in_features, hidden=(hidden,),
        num_classes=num_classes, activation=activation, batch_norm=batch_norm,
    )
    _assert_cohort_matches_serial(
        template, group, rng,
        n=11, x_shape=(in_features,), num_classes=num_classes, dtype=dtype,
        batch_size=batch_size, optimizer=optimizer, learning_rate=0.01,
        epochs=2, collect_gradient=collect_gradient,
    )


@pytest.mark.parametrize("group", [1, 2, 5, 8])
def test_every_cohort_size_mlp(group):
    """Dense sweep of the cohort axis itself (no shrinking surprises)."""
    rng = np.random.default_rng(group)
    template = make_mlp(rng, in_features=5, hidden=(4,), num_classes=3)
    _assert_cohort_matches_serial(
        template, group, rng,
        n=9, x_shape=(5,), num_classes=3, dtype=np.float64,
        batch_size=4, optimizer="adam", learning_rate=0.01,
        epochs=2, collect_gradient=False,
    )


@pytest.mark.parametrize("optimizer", ["adam", "sgd"])
@pytest.mark.parametrize("collect_gradient", [False, True])
def test_convnet_cohort_bitwise_equals_serial(optimizer, collect_gradient):
    """NCHW path: conv + batch-norm + global pooling, both update modes."""
    rng = np.random.default_rng(7)
    template = make_convnet(
        rng, in_channels=2, image_size=4, channels=(3,), num_classes=3
    )
    _assert_cohort_matches_serial(
        template, 3, rng,
        n=8, x_shape=(2, 4, 4), num_classes=3, dtype=np.float32,
        batch_size=3, optimizer=optimizer, learning_rate=0.01,
        epochs=2, collect_gradient=collect_gradient,
    )


def test_short_final_batch_matches():
    """n not divisible by batch_size: the ragged tail batch must fuse too."""
    rng = np.random.default_rng(21)
    template = make_mlp(rng, in_features=4, hidden=(3,), num_classes=2)
    _assert_cohort_matches_serial(
        template, 4, rng,
        n=10, x_shape=(4,), num_classes=2, dtype=np.float64,
        batch_size=7, optimizer="sgd", learning_rate=0.05,
        epochs=3, collect_gradient=True,
    )
