"""Workspace arena: buffer reuse mechanics and bit-identical kernels."""

from __future__ import annotations

import numpy as np

from repro.nn import (
    SGD,
    Tensor,
    Workspace,
    cross_entropy,
    make_convnet,
    state_checksum,
    use_workspaces,
    workspaces_enabled,
)
from repro.nn.conv import avg_pool2d, conv2d, max_pool2d


class TestWorkspace:
    def test_same_key_reuses_buffer(self):
        ws = Workspace()
        a = ws.buffer("cols", (4, 9))
        b = ws.buffer("cols", (4, 9))
        assert a is b

    def test_distinct_tags_and_shapes_coexist(self):
        ws = Workspace()
        a = ws.buffer("cols", (4, 9))
        b = ws.buffer("pad", (4, 9))
        c = ws.buffer("cols", (2, 9))
        assert a is not b and a is not c
        assert ws.nbytes == a.nbytes + b.nbytes + c.nbytes

    def test_zeros_clears(self):
        ws = Workspace()
        ws.buffer("x", (3,)).fill(7.0)
        np.testing.assert_array_equal(ws.zeros("x", (3,)), np.zeros(3))

    def test_clear_frees(self):
        ws = Workspace()
        ws.buffer("x", (3,))
        ws.clear()
        assert ws.nbytes == 0

    def test_toggle_context_manager(self):
        assert workspaces_enabled()
        with use_workspaces(False):
            assert not workspaces_enabled()
            with use_workspaces(True):
                assert workspaces_enabled()
            assert not workspaces_enabled()
        assert workspaces_enabled()


def _conv_forward_backward(x_data, w_data, b_data, workspace):
    x = Tensor(x_data.copy(), requires_grad=True)
    w = Tensor(w_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    out = conv2d(x, w, b, stride=1, pad=1, workspace=workspace)
    out.sum().backward()
    return out.data, x.grad, w.grad, b.grad


class TestBitIdenticalKernels:
    def test_conv2d_with_and_without_workspace(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        ws = Workspace()
        plain = _conv_forward_backward(x, w, b, None)
        # Two passes through the same workspace: the second pass reuses
        # every buffer and must still match the allocating kernel exactly.
        _conv_forward_backward(x, w, b, ws)
        reused = _conv_forward_backward(x, w, b, ws)
        for got, want in zip(reused, plain):
            np.testing.assert_array_equal(got, want)

    def test_pooling_with_and_without_workspace(self, rng):
        for pool in (max_pool2d, avg_pool2d):
            x_data = rng.normal(size=(2, 3, 8, 8))
            ws = Workspace()
            for _ in range(2):  # second pass exercises buffer reuse
                x1 = Tensor(x_data.copy(), requires_grad=True)
                x2 = Tensor(x_data.copy(), requires_grad=True)
                out1 = pool(x1, 2, workspace=None)
                out2 = pool(x2, 2, workspace=ws)
                out1.sum().backward()
                out2.sum().backward()
                np.testing.assert_array_equal(out1.data, out2.data)
                np.testing.assert_array_equal(x1.grad, x2.grad)

    def test_output_tensors_never_alias_workspace(self, rng):
        ws = Workspace()
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        first = conv2d(x, w, None, workspace=ws).data
        snapshot = first.copy()
        conv2d(x, w, None, workspace=ws)  # rewrites every workspace buffer
        np.testing.assert_array_equal(first, snapshot)


class TestEndToEndTraining:
    def _train(self, enabled: bool) -> str:
        with use_workspaces(enabled):
            rng = np.random.default_rng(0)
            model = make_convnet(rng, in_channels=1, image_size=8, num_classes=4)
            opt = SGD(model.parameters(), lr=0.05)
            data_rng = np.random.default_rng(1)
            for _ in range(4):
                x = Tensor(data_rng.normal(size=(6, 1, 8, 8)))
                y = data_rng.integers(0, 4, size=6)
                loss = cross_entropy(model(x), y)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return state_checksum(model.state_dict())

    def test_training_bit_identical_with_arena_on_and_off(self):
        assert self._train(True) == self._train(False)
