"""Convolution/pooling correctness: against naive loops and numeric grads."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.conv import (
    avg_pool2d,
    col2im,
    conv2d,
    conv_output_size,
    global_avg_pool2d,
    im2col,
    max_pool2d,
)
from repro.nn.tensor import Tensor

from ..conftest import numerical_gradient


def naive_conv2d(
    x: np.ndarray, w: np.ndarray, b: np.ndarray | None, stride: int, pad: int
) -> np.ndarray:
    """Reference convolution with explicit loops."""
    n, c, h, ww = x.shape
    co, ci, kh, kw = w.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (ww + 2 * pad - kw) // stride + 1
    out = np.zeros((n, co, oh, ow))
    for ni in range(n):
        for oi in range(co):
            for yi in range(oh):
                for xi in range(ow):
                    patch = x[ni, :, yi * stride : yi * stride + kh, xi * stride : xi * stride + kw]
                    out[ni, oi, yi, xi] = (patch * w[oi]).sum()
            if b is not None:
                out[ni, oi] += b[oi]
    return out


class TestOutputSize:
    def test_basic(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 3, 2, 1) == 4
        assert conv_output_size(5, 5, 1, 0) == 1

    def test_invalid_raises(self):
        with pytest.raises(ShapeError):
            conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_roundtrip_counts_overlaps(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols, oh, ow = im2col(x, 3, 3, 1, 0)
        assert cols.shape == (oh * ow, 9)
        back = col2im(np.ones_like(cols), x.shape, 3, 3, 1, 0)
        # Center pixel participates in 4 windows of a 4x4/3x3/s1 conv.
        assert back[0, 0, 1, 1] == 4.0
        assert back[0, 0, 0, 0] == 1.0

    def test_columns_match_patches(self, rng):
        x = rng.normal(size=(1, 2, 3, 3))
        cols, oh, ow = im2col(x, 2, 2, 1, 0)
        first_patch = x[0, :, :2, :2].reshape(-1)
        np.testing.assert_allclose(cols[0], first_patch)


class TestConv2D:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, rng, stride, pad):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, pad=pad)
        np.testing.assert_allclose(
            out.data, naive_conv2d(x, w, b, stride, pad), rtol=1e-9, atol=1e-9
        )

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), None, stride=1, pad=1)
        np.testing.assert_allclose(
            out.data, naive_conv2d(x, w, None, 1, 1), rtol=1e-9, atol=1e-9
        )

    def test_input_grad_numeric(self, rng):
        w = rng.normal(size=(2, 2, 3, 3))
        x_data = rng.normal(size=(1, 2, 5, 5))

        def loss(t: Tensor) -> Tensor:
            return conv2d(t, Tensor(w), None, stride=2, pad=1).sum()

        x = Tensor(x_data.copy(), requires_grad=True)
        loss(x).backward()
        numeric = numerical_gradient(lambda: loss(Tensor(x.data)).item(), x.data)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-5, atol=1e-5)

    def test_weight_grad_numeric(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        w_data = rng.normal(size=(3, 2, 2, 2))

        def loss(wt: Tensor) -> Tensor:
            return (conv2d(Tensor(x), wt, None, stride=1, pad=0) ** 2).sum()

        w = Tensor(w_data.copy(), requires_grad=True)
        loss(w).backward()
        numeric = numerical_gradient(lambda: loss(Tensor(w.data)).item(), w.data)
        np.testing.assert_allclose(w.grad, numeric, rtol=1e-4, atol=1e-5)

    def test_bias_grad_is_output_count(self, rng):
        x = rng.normal(size=(2, 1, 4, 4))
        w = rng.normal(size=(2, 1, 3, 3))
        b = Tensor(np.zeros(2), requires_grad=True)
        conv2d(Tensor(x), Tensor(w), b, stride=1, pad=0).sum().backward()
        np.testing.assert_allclose(b.grad, [2 * 2 * 2, 2 * 2 * 2])

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            conv2d(
                Tensor(rng.normal(size=(1, 3, 4, 4))),
                Tensor(rng.normal(size=(2, 4, 3, 3))),
                None,
            )

    def test_rejects_non4d(self, rng):
        with pytest.raises(ShapeError):
            conv2d(Tensor(rng.normal(size=(4, 4))), Tensor(rng.normal(size=(1, 1, 2, 2))), None)


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_avg_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad_uniform(self):
        x = Tensor(np.zeros((1, 1, 4, 4)), requires_grad=True)
        avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool(self, rng):
        x_data = rng.normal(size=(2, 3, 4, 4))
        out = global_avg_pool2d(Tensor(x_data))
        np.testing.assert_allclose(out.data, x_data.mean(axis=(2, 3)))

    def test_global_avg_pool_grad(self):
        x = Tensor(np.zeros((1, 2, 2, 2)), requires_grad=True)
        global_avg_pool2d(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 2, 2, 2), 0.25))

    def test_strided_max_pool(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        out = max_pool2d(Tensor(x), 3, stride=2)
        assert out.shape == (1, 1, 2, 2)
        assert out.data[0, 0, 0, 0] == x[0, 0, :3, :3].max()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    size=st.integers(3, 7),
    kernel=st.integers(1, 3),
)
def test_property_conv_matches_naive(seed, size, kernel):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(1, 2, size, size))
    w = rng.normal(size=(2, 2, kernel, kernel))
    out = conv2d(Tensor(x), Tensor(w), None, stride=1, pad=0)
    np.testing.assert_allclose(
        out.data, naive_conv2d(x, w, None, 1, 0), rtol=1e-8, atol=1e-8
    )
