"""Recurrent layer tests: shapes, BPTT gradients, learnability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import Adam, Dense, Tensor, cross_entropy
from repro.nn.rnn import RNN, Embedding, GRUCell, RNNCell

from ..conftest import numerical_gradient


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_ids(self, rng):
        emb = Embedding(5, 4, rng)
        with pytest.raises(ShapeError):
            emb(np.array([5]))
        with pytest.raises(ShapeError):
            emb(np.array([-1]))

    def test_gradient_scatters_to_rows(self, rng):
        emb = Embedding(6, 3, rng)
        out = emb(np.array([2, 2, 4]))
        out.sum().backward()
        grad_rows = np.abs(emb.weight.grad).sum(axis=1)
        assert grad_rows[2] > 0 and grad_rows[4] > 0
        assert grad_rows[0] == 0

    def test_invalid_dims(self, rng):
        with pytest.raises(ConfigurationError):
            Embedding(0, 4, rng)


class TestRNNCell:
    def test_step_shape(self, rng):
        cell = RNNCell(4, 6, rng)
        h = cell(Tensor(rng.normal(size=(3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_output_bounded_by_tanh(self, rng):
        cell = RNNCell(4, 6, rng)
        h = cell(Tensor(rng.normal(size=(8, 4)) * 10), cell.initial_state(8))
        assert np.all(np.abs(h.data) <= 1.0)

    def test_invalid_sizes(self, rng):
        with pytest.raises(ConfigurationError):
            RNNCell(0, 4, rng)

    def test_parameters_registered(self, rng):
        cell = RNNCell(4, 6, rng)
        names = {n for n, _ in cell.named_parameters()}
        assert names == {"w_xh", "w_hh", "bias"}


class TestGRUCell:
    def test_step_shape(self, rng):
        cell = GRUCell(4, 6, rng)
        h = cell(Tensor(rng.normal(size=(3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_zero_update_gate_keeps_state(self, rng):
        """With z ≈ 0 (large negative bias) the new state equals the old."""
        cell = GRUCell(3, 4, rng)
        cell.b_z.data[:] = -50.0
        h0 = Tensor(rng.normal(size=(2, 4)))
        h1 = cell(Tensor(rng.normal(size=(2, 3))), h0)
        np.testing.assert_allclose(h1.data, h0.data, atol=1e-8)

    def test_gate_parameter_count(self, rng):
        cell = GRUCell(4, 6, rng)
        assert len(list(cell.parameters())) == 9  # 3 gates x (Wx, Wh, b)


class TestRNNUnroll:
    def test_output_shapes(self, rng):
        rnn = RNN(RNNCell(4, 5, rng))
        out, h = rnn(Tensor(rng.normal(size=(2, 7, 4))))
        assert out.shape == (2, 7, 5)
        assert h.shape == (2, 5)

    def test_final_state_is_last_output(self, rng):
        rnn = RNN(RNNCell(4, 5, rng))
        out, h = rnn(Tensor(rng.normal(size=(2, 3, 4))))
        np.testing.assert_allclose(out.data[:, -1, :], h.data)

    def test_rejects_2d_input(self, rng):
        rnn = RNN(RNNCell(4, 5, rng))
        with pytest.raises(ShapeError):
            rnn(Tensor(rng.normal(size=(2, 4))))

    def test_custom_initial_state(self, rng):
        cell = RNNCell(4, 5, rng)
        rnn = RNN(cell)
        h0 = Tensor(np.ones((2, 5)))
        out1, _ = rnn(Tensor(np.zeros((2, 1, 4))), h0)
        out2, _ = rnn(Tensor(np.zeros((2, 1, 4))))
        assert not np.allclose(out1.data, out2.data)

    def test_bptt_gradient_matches_numeric(self, rng):
        cell = RNNCell(3, 4, rng)
        rnn = RNN(cell)
        x = rng.normal(size=(2, 4, 3))

        def loss_value() -> float:
            out, _ = rnn(Tensor(x))
            return float((out.data ** 2).sum())

        out, _ = rnn(Tensor(x))
        (out * out).sum().backward()
        numeric = numerical_gradient(lambda: loss_value(), cell.w_hh.data)
        np.testing.assert_allclose(cell.w_hh.grad, numeric, rtol=1e-4, atol=1e-6)

    def test_gru_bptt_gradient_matches_numeric(self, rng):
        cell = GRUCell(3, 4, rng)
        rnn = RNN(cell)
        x = rng.normal(size=(2, 3, 3))

        def loss_value() -> float:
            out, _ = rnn(Tensor(x))
            return float((out.data ** 2).sum())

        out, _ = rnn(Tensor(x))
        (out * out).sum().backward()
        numeric = numerical_gradient(lambda: loss_value(), cell.w_hn.data)
        np.testing.assert_allclose(cell.w_hn.grad, numeric, rtol=1e-4, atol=1e-6)


class TestSequenceLearning:
    def test_gru_learns_cyclic_sequence(self, rng):
        """Next-token prediction on a deterministic cycle reaches 100%."""
        vocab, width = 5, 8
        emb = Embedding(vocab, width, rng)
        cell = GRUCell(width, 16, rng)
        rnn = RNN(cell)
        head = Dense(16, vocab, rng)
        params = (
            list(emb.parameters()) + list(cell.parameters()) + list(head.parameters())
        )
        opt = Adam(params, lr=0.01)
        seq = np.tile(np.arange(vocab), 20)
        x = np.stack([seq[i : i + 6] for i in range(60)])
        y = np.array([seq[i + 6] for i in range(60)])
        for _ in range(60):
            for m in (emb, cell, head):
                m.zero_grad()
            _, h = rnn(emb(x))
            loss = cross_entropy(head(h), y)
            loss.backward()
            opt.step()
        _, h = rnn(emb(x))
        assert float((head(h).data.argmax(1) == y).mean()) == 1.0
