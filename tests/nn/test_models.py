"""Model zoo and ModelSpec tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.losses import cross_entropy
from repro.nn.models import (
    ModelSpec,
    PreActBlock,
    build_model,
    make_convnet,
    make_mlp,
    make_resnetv2,
)
from repro.nn.tensor import Tensor


class TestModelSpec:
    def test_json_roundtrip(self):
        spec = ModelSpec("mlp", {"in_features": 10, "hidden": [4], "num_classes": 3})
        assert ModelSpec.from_json(spec.to_json()) == spec

    def test_json_is_deterministic(self):
        spec = ModelSpec("mlp", {"b": 1, "a": 2})
        assert spec.to_json() == spec.to_json()

    def test_build_unknown_kind(self, rng):
        with pytest.raises(ConfigurationError):
            build_model(ModelSpec("transformer", {}), rng)

    def test_build_deterministic_init(self):
        spec = ModelSpec("mlp", {"in_features": 6, "hidden": [4], "num_classes": 2})
        m1 = build_model(spec, np.random.default_rng(7))
        m2 = build_model(spec, np.random.default_rng(7))
        for (_, a), (_, b) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)


class TestMLP:
    def test_forward_shape(self, rng):
        model = make_mlp(rng, in_features=12, hidden=(8, 8), num_classes=5)
        out = model(Tensor(rng.normal(size=(3, 12))))
        assert out.shape == (3, 5)

    def test_no_hidden_layers(self, rng):
        model = make_mlp(rng, in_features=4, hidden=(), num_classes=2)
        assert model(Tensor(rng.normal(size=(1, 4)))).shape == (1, 2)

    def test_batch_norm_option(self, rng):
        model = make_mlp(rng, in_features=4, hidden=(6,), num_classes=2, batch_norm=True)
        names = [n for n, _ in model.named_parameters()]
        assert any("gamma" in n for n in names)

    def test_tanh_activation(self, rng):
        model = make_mlp(rng, in_features=4, hidden=(6,), num_classes=2, activation="tanh")
        assert model(Tensor(rng.normal(size=(2, 4)))).shape == (2, 2)

    def test_unknown_activation(self, rng):
        with pytest.raises(ConfigurationError):
            make_mlp(rng, activation="swish")

    def test_invalid_dims(self, rng):
        with pytest.raises(ConfigurationError):
            make_mlp(rng, in_features=0)

    def test_trainable_end_to_end(self, rng):
        model = make_mlp(rng, in_features=4, hidden=(8,), num_classes=2)
        x = Tensor(rng.normal(size=(16, 4)))
        loss = cross_entropy(model(x), rng.integers(0, 2, size=16))
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())


class TestConvNet:
    def test_forward_shape(self, rng):
        model = make_convnet(rng, in_channels=3, image_size=8, channels=(8, 16), num_classes=10)
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 10)

    def test_backward_flows(self, rng):
        model = make_convnet(rng, channels=(4,), image_size=8)
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        cross_entropy(out, np.array([1, 2])).backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)


class TestResNetV2:
    def test_forward_shape(self, rng):
        model = make_resnetv2(rng, stage_channels=(8, 16), blocks_per_stage=1)
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 10)

    def test_depth_scales_with_blocks(self, rng):
        shallow = make_resnetv2(rng, stage_channels=(8,), blocks_per_stage=1)
        deep = make_resnetv2(np.random.default_rng(0), stage_channels=(8,), blocks_per_stage=3)
        assert deep.num_parameters() > shallow.num_parameters()

    def test_invalid_blocks(self, rng):
        with pytest.raises(ConfigurationError):
            make_resnetv2(rng, blocks_per_stage=0)

    def test_preact_block_identity_path(self, rng):
        block = PreActBlock(4, 4, rng, stride=1)
        out = block(Tensor(rng.normal(size=(2, 4, 6, 6))))
        assert out.shape == (2, 4, 6, 6)

    def test_preact_block_projection_on_stride(self, rng):
        block = PreActBlock(4, 8, rng, stride=2)
        out = block(Tensor(rng.normal(size=(2, 4, 6, 6))))
        assert out.shape == (2, 8, 3, 3)

    def test_backward_through_deep_net(self, rng):
        model = make_resnetv2(rng, stage_channels=(4, 8), blocks_per_stage=2)
        out = model(Tensor(rng.normal(size=(1, 3, 8, 8))))
        cross_entropy(out, np.array([0])).backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_spec_roundtrip_builds(self, rng):
        spec = ModelSpec(
            "resnetv2", {"stage_channels": [4, 8], "blocks_per_stage": 1}
        )
        model = build_model(ModelSpec.from_json(spec.to_json()), rng)
        assert model(Tensor(rng.normal(size=(1, 3, 8, 8)))).shape == (1, 10)
