"""LSTM cell tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import Adam, Dense, Tensor, cross_entropy
from repro.nn.rnn import RNN, Embedding, LSTMCell

from ..conftest import numerical_gradient


class TestLSTMCell:
    def test_step_shapes(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell(Tensor(rng.normal(size=(3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6) and c.shape == (3, 6)

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(4, 6, rng)
        np.testing.assert_array_equal(cell.b_f.data, 1.0)
        np.testing.assert_array_equal(cell.b_i.data, 0.0)

    def test_parameter_count(self, rng):
        cell = LSTMCell(4, 6, rng)
        assert len(list(cell.parameters())) == 12  # 4 gates x (Wx, Wh, b)

    def test_invalid_sizes(self, rng):
        with pytest.raises(ConfigurationError):
            LSTMCell(4, 0, rng)

    def test_closed_input_gate_preserves_cell(self, rng):
        """With i ≈ 0 and f ≈ 1, the cell state passes through unchanged."""
        cell = LSTMCell(3, 4, rng)
        cell.b_i.data[:] = -50.0
        cell.b_f.data[:] = 50.0
        h0, c0 = cell.initial_state(2)
        c0 = Tensor(rng.normal(size=(2, 4)))
        _, c1 = cell(Tensor(rng.normal(size=(2, 3))), (h0, c0))
        np.testing.assert_allclose(c1.data, c0.data, atol=1e-8)

    def test_unroll_with_rnn_wrapper(self, rng):
        rnn = RNN(LSTMCell(4, 5, rng))
        out, (h, c) = rnn(Tensor(rng.normal(size=(2, 6, 4))))
        assert out.shape == (2, 6, 5)
        np.testing.assert_allclose(out.data[:, -1, :], h.data)

    def test_bptt_gradient_matches_numeric(self, rng):
        cell = LSTMCell(3, 4, rng)
        rnn = RNN(cell)
        x = rng.normal(size=(2, 3, 3))

        def loss_value() -> float:
            out, _ = rnn(Tensor(x))
            return float((out.data ** 2).sum())

        out, _ = rnn(Tensor(x))
        (out * out).sum().backward()
        numeric = numerical_gradient(lambda: loss_value(), cell.w_hg.data)
        np.testing.assert_allclose(cell.w_hg.grad, numeric, rtol=1e-4, atol=1e-6)

    def test_learns_long_range_dependency(self, rng):
        """Classify sequences by their FIRST token (requires memory across
        the whole sequence — the LSTM's raison d'être)."""
        vocab, steps = 4, 10
        emb = Embedding(vocab, 6, rng)
        cell = LSTMCell(6, 12, rng)
        rnn = RNN(cell)
        head = Dense(12, vocab, rng)
        params = (
            list(emb.parameters()) + list(cell.parameters()) + list(head.parameters())
        )
        opt = Adam(params, lr=0.02)
        data_rng = np.random.default_rng(0)
        x = data_rng.integers(0, vocab, size=(120, steps))
        y = x[:, 0].copy()  # label = first token, noise afterwards
        for _ in range(80):
            for m in (emb, cell, head):
                m.zero_grad()
            _, (h, _c) = rnn(emb(x))
            loss = cross_entropy(head(h), y)
            loss.backward()
            opt.step()
        _, (h, _c) = rnn(emb(x))
        acc = float((head(h).data.argmax(1) == y).mean())
        assert acc > 0.9
