"""Codec property tests: round-trip inverses, declared tolerances,
determinism, and wire-size accounting.

Lossless codecs must be bit-exact inverses.  Lossy codecs must stay
within the per-element bound their own :meth:`Codec.tolerance` declares —
the bound is part of the codec's contract, and the error-feedback plane
relies on decode being deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SerializationError
from repro.nn.codecs import (
    CODEC_NAMES,
    DeltaCodec,
    Fp16Codec,
    Int8Codec,
    TopKCodec,
    ZlibCodec,
    make_codec,
)
from repro.nn.serialization import StateLayout

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e8, max_value=1e8
)
vectors = st.lists(finite, min_size=1, max_size=64).map(
    lambda xs: np.asarray(xs, dtype=np.float64)
)

LOSSLESS = [ZlibCodec(), DeltaCodec()]
LOSSY = [
    Fp16Codec(),
    Int8Codec(),
    TopKCodec(fraction=0.25),
    TopKCodec(fraction=0.25, quant="fp16"),
    TopKCodec(fraction=0.25, quant="int8"),
]


def small_layout() -> StateLayout:
    return StateLayout({"w": np.zeros((4, 3)), "b": np.zeros(3)})


class TestLosslessRoundtrip:
    @pytest.mark.parametrize("codec", LOSSLESS, ids=lambda c: c.name)
    @given(vec=vectors)
    @settings(max_examples=50, deadline=None)
    def test_bit_exact(self, codec, vec):
        out = codec.decode(codec.encode(vec))
        np.testing.assert_array_equal(out, vec)
        assert not codec.lossy
        assert np.all(codec.tolerance(vec) == 0.0)

    @given(vec=vectors, ref_seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_delta_with_reference_bit_exact(self, vec, ref_seed):
        reference = np.random.default_rng(ref_seed).normal(size=vec.size)
        codec = DeltaCodec()
        enc = codec.encode(vec, reference=reference)
        np.testing.assert_array_equal(codec.decode(enc), vec)
        assert enc.nbytes <= vec.nbytes

    def test_delta_against_itself_is_tiny(self):
        vec = np.random.default_rng(7).normal(size=2048)
        enc = DeltaCodec().encode(vec, reference=vec.copy())
        # XOR of identical vectors is all zeros: near-free on the wire.
        assert enc.nbytes < vec.nbytes / 50

    def test_delta_reference_size_mismatch(self):
        with pytest.raises(SerializationError):
            DeltaCodec().encode(np.zeros(4), reference=np.zeros(5))


class TestLossyRoundtrip:
    @pytest.mark.parametrize("codec", LOSSY, ids=str)
    @given(vec=vectors)
    @settings(max_examples=50, deadline=None)
    def test_within_declared_tolerance(self, codec, vec):
        decoded = codec.decode(codec.encode(vec))
        assert decoded.shape == vec.shape
        assert np.all(np.abs(decoded - vec) <= codec.tolerance(vec))

    @pytest.mark.parametrize("codec", LOSSY, ids=str)
    @given(vec=vectors)
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, codec, vec):
        a = codec.encode(vec.copy())
        b = codec.encode(vec.copy())
        assert a.nbytes == b.nbytes
        np.testing.assert_array_equal(codec.decode(a), codec.decode(b))

    def test_int8_per_tensor_scales(self):
        # A huge weight tensor must not crush a small bias tensor: with
        # the layout, the bias segment gets its own scale.
        layout = small_layout()
        vec = np.concatenate([np.full(3, 1e-3), np.full(12, 1e3)])
        codec = Int8Codec()
        decoded = codec.decode(codec.encode(vec, layout))
        bias = decoded[:3]  # layout keys sort "b" before "w"
        assert np.all(np.abs(bias - 1e-3) <= 1e-3 / 253 + 1e-12)
        # Without the layout one global scale flattens the bias to zero.
        flat = codec.decode(codec.encode(vec))
        assert np.all(flat[:3] == 0.0)

    def test_topk_keeps_largest(self):
        # Values chosen exactly representable in float32 so the fp32
        # value pass-through is bit-exact; ceil(0.33 * 6) keeps k=2.
        vec = np.array([0.125, -5.0, 0.25, 4.0, 0.0, -0.375])
        decoded = TopKCodec(fraction=0.33).decode(
            TopKCodec(fraction=0.33).encode(vec)
        )
        np.testing.assert_array_equal(
            decoded, np.array([0.0, -5.0, 0.0, 4.0, 0.0, 0.0])
        )


class TestWireAccounting:
    @given(vec=vectors)
    @settings(max_examples=25, deadline=None)
    def test_zlib_never_exceeds_raw(self, vec):
        enc = ZlibCodec().encode(vec)
        assert 0 < enc.nbytes <= enc.raw_nbytes == vec.nbytes

    def test_topk_wire_formula(self):
        vec = np.random.default_rng(3).normal(size=1000)
        for quant, value_bytes in (("fp32", 4), ("fp16", 2), ("int8", 1)):
            enc = TopKCodec(fraction=0.01, quant=quant).encode(vec)
            assert enc.nbytes == 10 * (4 + value_bytes) + 16

    def test_quantized_beats_baseline_on_random_vectors(self):
        vec = np.random.default_rng(11).normal(size=4096)
        base = ZlibCodec().encode(vec).nbytes
        assert Fp16Codec().encode(vec).nbytes < base
        assert Int8Codec().encode(vec).nbytes < base / 4


class TestValidation:
    def test_rejects_matrices(self):
        with pytest.raises(SerializationError):
            ZlibCodec().encode(np.zeros((2, 2)))

    def test_layout_size_mismatch(self):
        with pytest.raises(SerializationError):
            Int8Codec().encode(np.zeros(7), small_layout())

    def test_topk_fraction_bounds(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                TopKCodec(fraction=bad)
        with pytest.raises(ConfigurationError):
            TopKCodec(quant="fp8")

    def test_factory_covers_names(self):
        for name in CODEC_NAMES:
            assert make_codec(name).name == name
        with pytest.raises(ConfigurationError):
            make_codec("gzip")
