"""Initializer statistics and metric correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.initializers import (
    get_initializer,
    glorot_normal,
    glorot_uniform,
    he_normal,
    he_uniform,
    normal,
    ones,
    zeros,
)
from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    evaluate_classifier,
    top_k_accuracy,
)
from repro.nn.models import make_mlp
from repro.nn.tensor import Tensor
from repro.errors import ShapeError


class TestInitializers:
    def test_he_normal_std(self, rng):
        w = he_normal((1000, 50), rng)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 0.005

    def test_he_normal_conv_fans(self, rng):
        # OIHW (16, 8, 3, 3): fan_in = 8*9 = 72.
        w = he_normal((16, 8, 3, 3), rng)
        assert abs(w.std() - np.sqrt(2.0 / 72)) < 0.02

    def test_he_uniform_bounds(self, rng):
        w = he_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 100)
        assert np.abs(w).max() <= limit

    def test_glorot_normal_std(self, rng):
        w = glorot_normal((400, 600), rng)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 0.005

    def test_glorot_uniform_bounds(self, rng):
        w = glorot_uniform((50, 50), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 100)

    def test_zeros_ones(self, rng):
        np.testing.assert_array_equal(zeros((3, 3), rng), 0.0)
        np.testing.assert_array_equal(ones((3, 3), rng), 1.0)

    def test_normal_factory(self, rng):
        init = normal(std=0.5)
        w = init((2000,), rng)
        assert abs(w.std() - 0.5) < 0.03

    def test_registry_lookup(self):
        assert get_initializer("he_normal") is he_normal

    def test_registry_unknown(self):
        with pytest.raises(ConfigurationError):
            get_initializer("xavier_magic")

    def test_deterministic_given_rng(self):
        a = he_normal((4, 4), np.random.default_rng(3))
        b = he_normal((4, 4), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_bias_shape_fans(self, rng):
        w = he_normal((64,), rng)
        assert w.shape == (64,)


class TestMetrics:
    def test_accuracy_basic(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 1.0], [0.0, 1.0]])
        labels = np.array([0, 1, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(0.75)

    def test_accuracy_accepts_tensor(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert accuracy(logits, np.array([0])) == 1.0

    def test_accuracy_shape_check(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_top_k(self):
        logits = np.array([[0.1, 0.2, 0.9, 0.5]])
        assert top_k_accuracy(logits, np.array([3]), k=2) == 1.0
        assert top_k_accuracy(logits, np.array([0]), k=2) == 0.0

    def test_top_k_clamps_to_classes(self):
        logits = np.array([[0.1, 0.9]])
        assert top_k_accuracy(logits, np.array([0]), k=10) == 1.0

    def test_confusion_matrix(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1, 1])
        mat = confusion_matrix(logits, labels, num_classes=2)
        np.testing.assert_array_equal(mat, [[1, 0], [1, 1]])
        assert mat.sum() == 3

    def test_evaluate_classifier_restores_training_mode(self, rng):
        model = make_mlp(rng, in_features=4, hidden=(4,), num_classes=2)
        model.train()
        x = rng.normal(size=(10, 4))
        y = rng.integers(0, 2, size=10)
        evaluate_classifier(model, x, y)
        assert model.training

    def test_evaluate_classifier_batches_consistent(self, rng):
        model = make_mlp(rng, in_features=4, hidden=(4,), num_classes=2)
        x = rng.normal(size=(50, 4))
        y = rng.integers(0, 2, size=50)
        loss_a, acc_a = evaluate_classifier(model, x, y, batch_size=7)
        loss_b, acc_b = evaluate_classifier(model, x, y, batch_size=50)
        assert loss_a == pytest.approx(loss_b)
        assert acc_a == pytest.approx(acc_b)
