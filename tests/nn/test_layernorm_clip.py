"""LayerNorm, gradient clipping, and warmup-schedule tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import (
    ConstantLR,
    LayerNorm,
    Parameter,
    StepDecayLR,
    Tensor,
    WarmupLR,
    clip_grad_norm,
)

from ..conftest import numerical_gradient


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        ln = LayerNorm(8)
        out = ln(Tensor(rng.normal(loc=3.0, scale=5.0, size=(4, 8))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_works_on_3d_sequences(self, rng):
        ln = LayerNorm(6)
        out = ln(Tensor(rng.normal(size=(2, 5, 6))))
        assert out.shape == (2, 5, 6)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)

    def test_gamma_beta_affine(self, rng):
        ln = LayerNorm(4)
        ln.gamma.data[:] = 2.0
        ln.beta.data[:] = 1.0
        out = ln(Tensor(rng.normal(size=(3, 4))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 1.0, atol=1e-9)

    def test_no_mode_split(self, rng):
        ln = LayerNorm(4)
        x = Tensor(rng.normal(size=(2, 4)))
        train_out = ln(x).data.copy()
        ln.eval()
        np.testing.assert_array_equal(ln(x).data, train_out)

    def test_gradient_matches_numeric(self, rng):
        ln = LayerNorm(5)
        x_data = rng.normal(size=(3, 5))

        def loss(t: Tensor):
            return (ln(t) ** 2).sum()

        x = Tensor(x_data.copy(), requires_grad=True)
        loss(x).backward()
        numeric = numerical_gradient(lambda: loss(Tensor(x.data)).item(), x.data)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-4, atol=1e-6)

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            LayerNorm(4)(Tensor(rng.normal(size=(2, 5))))
        with pytest.raises(ConfigurationError):
            LayerNorm(0)

    def test_parameters_registered(self):
        ln = LayerNorm(3)
        assert {n for n, _ in ln.named_parameters()} == {"gamma", "beta"}


class TestClipGradNorm:
    def make_params(self, grads: list[np.ndarray]) -> list[Parameter]:
        params = []
        for g in grads:
            p = Parameter(np.zeros_like(g))
            p.grad = g.copy()
            params.append(p)
        return params

    def test_no_clip_below_threshold(self):
        params = self.make_params([np.array([0.3, 0.4])])  # norm 0.5
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(params[0].grad, [0.3, 0.4])

    def test_clips_to_max_norm(self):
        params = self.make_params([np.array([3.0, 4.0])])  # norm 5
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(params[0].grad) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        params = self.make_params([np.array([3.0]), np.array([4.0])])
        clip_grad_norm(params, max_norm=2.5)  # global norm 5 -> halved
        np.testing.assert_allclose(params[0].grad, [1.5])
        np.testing.assert_allclose(params[1].grad, [2.0])

    def test_in_place(self):
        params = self.make_params([np.array([30.0])])
        buf = params[0].grad
        clip_grad_norm(params, max_norm=1.0)
        assert params[0].grad is buf

    def test_skips_gradless(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ConfigurationError):
            clip_grad_norm([], max_norm=0.0)


class TestWarmupLR:
    def test_ramps_linearly(self):
        sched = WarmupLR(ConstantLR(1.0), warmup_steps=4)
        assert sched.lr_at(0) == pytest.approx(0.25)
        assert sched.lr_at(1) == pytest.approx(0.5)
        assert sched.lr_at(3) == pytest.approx(1.0)
        assert sched.lr_at(100) == pytest.approx(1.0)

    def test_wraps_decaying_base(self):
        base = StepDecayLR(1.0, step_size=10, gamma=0.1)
        sched = WarmupLR(base, warmup_steps=2)
        assert sched.lr_at(0) == pytest.approx(0.5)
        assert sched.lr_at(15) == pytest.approx(0.1)  # past warmup: base rules

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WarmupLR(ConstantLR(1.0), warmup_steps=0)
