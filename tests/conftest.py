"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, SyntheticImageConfig, make_classification_splits
from repro.simulation import Simulator, Trace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def trace() -> Trace:
    return Trace()


@pytest.fixture
def tiny_splits(rng) -> tuple[Dataset, Dataset, Dataset]:
    """Small train/val/test splits for fast end-to-end tests."""
    cfg = SyntheticImageConfig(image_size=4, num_classes=4, noise_std=1.0)
    return make_classification_splits(
        cfg, rng, num_train=160, num_val=48, num_test=48, flat=True
    )


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad
