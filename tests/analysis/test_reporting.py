"""Reporting module tests."""

from __future__ import annotations

import pytest

from repro.analysis import comparison_table, markdown_report, run_summary_table
from repro.core import EpochRecord, RunResult


def make_result(label: str, accs: list[float], epoch_s: float = 600.0) -> RunResult:
    result = RunResult(label=label)
    for i, acc in enumerate(accs, start=1):
        result.append(
            EpochRecord(
                epoch=i,
                end_time_s=i * epoch_s,
                val_accuracy_mean=acc,
                val_accuracy_min=acc - 0.01,
                val_accuracy_max=acc + 0.01,
                test_accuracy=acc - 0.02,
                alpha=0.95,
                assimilations=50,
                timeouts_so_far=0,
                lost_updates_so_far=0,
            )
        )
    result.counters = {"timeouts": 3, "preemptions": 1, "lost_updates": 2}
    result.stopped_reason = "max_epochs"
    return result


class TestSummaryTable:
    def test_contains_headline_numbers(self):
        table = run_summary_table([make_result("fast", [0.3, 0.6, 0.8])])
        assert "fast" in table
        assert "0.8" in table
        assert "3" in table  # timeouts counter

    def test_multiple_rows(self):
        table = run_summary_table(
            [make_result("a", [0.5]), make_result("b", [0.6])]
        )
        assert "a" in table and "b" in table

    def test_no_negative_zero_fluctuation(self):
        table = run_summary_table([make_result("mono", [0.1, 0.2, 0.3])])
        assert "-0" not in table


class TestComparisonTable:
    def test_declares_winner(self):
        fast = make_result("fast", [0.4, 0.7, 0.8], epoch_s=300.0)
        slow = make_result("slow", [0.2, 0.5, 0.8], epoch_s=600.0)
        table = comparison_table(fast, slow, thresholds=[0.5, 0.75])
        lines = table.splitlines()
        assert any("fast" in line for line in lines[2:])

    def test_never_reached(self):
        low = make_result("low", [0.2, 0.3])
        high = make_result("high", [0.5, 0.9])
        table = comparison_table(low, high, thresholds=[0.85])
        assert "never" in table
        assert "high" in table


class TestMarkdownReport:
    def test_structure(self):
        report = markdown_report(
            [make_result("a", [0.4, 0.6]), make_result("b", [0.3, 0.7])],
            title="Demo",
            thresholds=[0.5],
        )
        assert report.startswith("# Demo")
        assert "## Summary" in report
        assert "## a" in report and "## b" in report
        assert "## Head-to-head" in report
        assert "stopped: max_epochs" in report

    def test_single_run_has_no_head_to_head(self):
        report = markdown_report([make_result("solo", [0.5])])
        assert "Head-to-head" not in report

    def test_crossover_mentioned_when_present(self):
        early = make_result("early", [0.6, 0.62, 0.63], epoch_s=600)
        late = make_result("late", [0.2, 0.5, 0.9], epoch_s=600)
        report = markdown_report([early, late], thresholds=[0.5])
        assert "cross at" in report or "no crossover" in report
