"""Dashboard rendering: golden output on a hand-built payload, plus
structural checks on a real seeded run (including the new spans panel)."""

from __future__ import annotations

import pytest

from repro.analysis.dashboard import (
    _spans_panel,
    sweep_dashboard,
    telemetry_dashboard,
)
from repro.core.runner import DistributedRunner
from repro.obs import build_sweep_telemetry

from ..core.test_runner import tiny_config


def synthetic_payload() -> dict:
    """A minimal, fully deterministic telemetry document."""
    return {
        "schema": "repro.telemetry",
        "schema_version": 1,
        "label": "P1C2T2",
        "seed": 7,
        "stopped_reason": "max_epochs",
        "total_time_s": 7200.0,
        "config": {
            "num_param_servers": 1,
            "num_clients": 2,
            "max_concurrent_subtasks": 2,
            "num_shards": 4,
            "store_kind": "eventual",
            "rule": "vcasgd",
        },
        "epochs": [],
        "counters": {"assimilations": 8, "timeouts": 1},
        "metrics": None,
        "audit": {"ok": True, "checks": 10, "records_seen": 100, "violations": []},
        "profile": None,
        "spans": {
            "lineages": {
                "total": 8,
                "complete": 7,
                "terminated": 1,
                "fates": {"merged": 7, "exhausted:timeout": 1},
            },
            "lineage_problems": [],
            "critical_path": {
                "start_s": 0.0,
                "end_s": 7200.0,
                "total_s": 7200.0,
                "hop_count": 4,
                "per_hop_totals": {"client.train": 6400.0, "ps.service": 800.0},
            },
            "stragglers": {
                "client-000": {
                    "client.train": {
                        "count": 4, "p50_s": 150.0, "p95_s": 160.0, "max_s": 161.0
                    }
                },
            },
            "staleness": {"merges": 7, "mean": 2.5, "max": 4, "by_client": {}},
            "dropped_records": 0,
        },
        "digest": "deadbeef",
    }


GOLDEN_SPANS_PANEL = """\
lineages: 8 workunits — 7 complete, 1 terminated (merged=7, exhausted:timeout=1)
critical path (4 hops, 2.00 h to last epoch)
hop          | seconds | share
-------------+---------+------
client.train | 6400    | 88.9%
ps.service   | 800     | 11.1%
staleness: 7 merges, mean lag 2.50 versions, max 4
straggler attribution (client.train durations)
client     | trains | p50 s | p95 s | max s
-----------+--------+-------+-------+------
client-000 | 4      | 150   | 160   | 161"""


class TestSpansPanelGolden:
    def test_golden_output(self):
        rendered = "\n".join(_spans_panel(synthetic_payload()))
        # render_table pads cells with trailing spaces; compare modulo that.
        normalize = lambda text: [line.rstrip() for line in text.splitlines()]
        assert normalize(rendered) == normalize(GOLDEN_SPANS_PANEL)

    def test_absent_section_renders_nothing(self):
        payload = synthetic_payload()
        payload["spans"] = None
        assert _spans_panel(payload) == []

    def test_lineage_problems_surface(self):
        payload = synthetic_payload()
        payload["spans"]["lineage_problems"] = ["wu-x: no terminal fate"]
        rendered = "\n".join(_spans_panel(payload))
        assert "lineage problems: 1" in rendered
        assert "wu-x: no terminal fate" in rendered

    def test_full_dashboard_includes_panel(self):
        rendered = telemetry_dashboard(synthetic_payload())
        assert "lineages: 8 workunits" in rendered
        assert "audit: OK" in rendered


class TestSeededRunDashboard:
    @pytest.fixture(scope="class")
    def runner(self):
        runner = DistributedRunner(tiny_config())
        runner.run()
        return runner

    def test_panels_render_from_live_telemetry(self, runner):
        rendered = telemetry_dashboard(runner.telemetry())
        assert f"run {runner.result.label}" in rendered
        assert "run counters" in rendered
        assert "lineages:" in rendered
        assert "critical path" in rendered
        assert "straggler attribution" in rendered
        assert "audit: OK" in rendered

    def test_rendering_is_deterministic(self, runner):
        payload = runner.telemetry()
        assert telemetry_dashboard(payload) == telemetry_dashboard(payload)

    def test_sweep_dashboard_row_per_run(self, runner):
        payload = build_sweep_telemetry([runner.telemetry()])
        rendered = sweep_dashboard(payload)
        assert runner.result.label in rendered
        assert "1 runs" in rendered
