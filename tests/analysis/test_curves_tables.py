"""Curve metrics and table rendering tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    auc_accuracy,
    crossover_time,
    final_gap,
    format_hours,
    format_pct,
    interpolate_to_grid,
    render_table,
    smoothness,
    time_to_threshold,
)
from repro.errors import ConfigurationError


class TestInterpolation:
    def test_linear_between_samples(self):
        t = np.array([0.0, 10.0])
        v = np.array([0.0, 1.0])
        out = interpolate_to_grid(t, v, np.array([5.0]))
        assert out[0] == pytest.approx(0.5)

    def test_clamps_outside_range(self):
        t = np.array([1.0, 2.0])
        v = np.array([0.3, 0.7])
        out = interpolate_to_grid(t, v, np.array([0.0, 3.0]))
        np.testing.assert_allclose(out, [0.3, 0.7])

    def test_validates_shapes(self):
        with pytest.raises(ConfigurationError):
            interpolate_to_grid(np.zeros(3), np.zeros(4), np.zeros(2))

    def test_rejects_decreasing_times(self):
        with pytest.raises(ConfigurationError):
            interpolate_to_grid(np.array([2.0, 1.0]), np.zeros(2), np.zeros(1))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            interpolate_to_grid(np.array([]), np.array([]), np.zeros(1))


class TestTimeToThreshold:
    def test_interpolates_crossing(self):
        t = np.array([0.0, 10.0])
        v = np.array([0.0, 1.0])
        assert time_to_threshold(t, v, 0.25) == pytest.approx(2.5)

    def test_none_when_never_reached(self):
        assert time_to_threshold(np.array([0.0, 1.0]), np.array([0.1, 0.2]), 0.9) is None

    def test_first_sample_already_above(self):
        assert time_to_threshold(np.array([3.0, 4.0]), np.array([0.9, 0.95]), 0.5) == 3.0

    def test_flat_segment(self):
        t = np.array([0.0, 1.0, 2.0])
        v = np.array([0.2, 0.5, 0.5])
        assert time_to_threshold(t, v, 0.5) == pytest.approx(1.0)


class TestCrossover:
    def test_detects_crossover(self):
        """Curve A fast-then-flat, curve B slow-then-high (the α=0.7 vs
        0.95 pattern): crossover in the middle."""
        t = np.linspace(0, 10, 50)
        a = 0.7 * (1 - np.exp(-t))  # fast early, asymptote 0.7
        b = 0.09 * t  # slow linear, ends at 0.9
        cross = crossover_time(t, a, t, b)
        assert cross is not None
        assert 5.0 < cross < 9.0

    def test_none_when_dominated(self):
        t = np.linspace(0, 10, 20)
        assert crossover_time(t, t + 1.0, t, t) is None

    def test_none_when_no_overlap(self):
        a_t = np.array([0.0, 1.0])
        b_t = np.array([5.0, 6.0])
        assert crossover_time(a_t, a_t, b_t, b_t) is None


class TestSmoothness:
    def test_monotone_curve_scores_zero(self):
        assert smoothness(np.array([0.1, 0.3, 0.5, 0.9])) == 0.0

    def test_oscillation_scores_positive(self):
        assert smoothness(np.array([0.1, 0.5, 0.2, 0.6])) > 0.0

    def test_bigger_dips_score_higher(self):
        mild = smoothness(np.array([0.5, 0.49, 0.6]))
        wild = smoothness(np.array([0.5, 0.2, 0.6]))
        assert wild > mild

    def test_short_series(self):
        assert smoothness(np.array([0.5])) == 0.0


class TestGapAndAuc:
    def test_final_gap(self):
        a = np.array([0.1, 0.8, 0.8, 0.8])
        b = np.array([0.1, 0.7, 0.7, 0.7])
        assert final_gap(a, b, last_k=3) == pytest.approx(0.1)

    def test_auc_rewards_early_learning(self):
        t = np.linspace(0, 1, 50)
        early = 1 - np.exp(-8 * t)
        late = t
        assert auc_accuracy(t, early) > auc_accuracy(t, late)

    def test_auc_degenerate_single_point(self):
        assert auc_accuracy(np.array([1.0]), np.array([0.6])) == pytest.approx(0.6)


class TestTables:
    def test_render_alignment_and_content(self):
        out = render_table(
            ["name", "value"],
            [["alpha", 0.95], ["beta", 123.456789]],
            title="Demo",
        )
        lines = out.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in out and "0.95" in out
        assert "123.5" in out  # 4 significant digits

    def test_render_handles_bools_and_strings(self):
        out = render_table(["k", "v"], [["flag", True], ["s", "text"]])
        assert "True" in out and "text" in out

    def test_format_helpers(self):
        assert format_hours(3600) == "1.00 h"
        assert format_hours(5400) == "1.50 h"
        assert format_pct(0.7) == "70.0%"
