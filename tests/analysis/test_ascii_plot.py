"""ASCII chart renderer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ascii_chart
from repro.errors import ConfigurationError


def simple_series():
    x = np.linspace(0, 10, 20)
    return {"up": (x, x), "down": (x, 10 - x)}


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart(simple_series(), width=5)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"bad": ([1, 2], [1, 2, 3])})

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"bad": ([], [])})


class TestRendering:
    def test_contains_markers_and_legend(self):
        out = ascii_chart(simple_series(), width=40, height=10)
        assert "o up" in out and "x down" in out
        assert "o" in out and "x" in out

    def test_title_and_labels(self):
        out = ascii_chart(
            simple_series(), width=40, height=10,
            title="T", x_label="hours", y_label="acc",
        )
        assert out.splitlines()[0] == "T"
        assert "x: hours" in out and "y: acc" in out

    def test_axis_bounds_shown(self):
        out = ascii_chart({"s": ([0.0, 4.0], [0.25, 0.75])}, width=30, height=8)
        assert "0.75" in out and "0.25" in out
        assert "4" in out

    def test_monotone_series_renders_monotone(self):
        """The 'up' series' marker column index increases with row height."""
        x = np.linspace(0, 1, 10)
        out = ascii_chart({"up": (x, x)}, width=30, height=10)
        rows = [line.split("|", 1)[1] for line in out.splitlines() if "|" in line]
        cols = [row.index("o") for row in rows if "o" in row]
        # Rows render top (high y) to bottom (low y), so the marker column
        # decreases as we scan down for an increasing series.
        assert cols == sorted(cols, reverse=True)

    def test_constant_series_no_crash(self):
        out = ascii_chart({"flat": ([0, 1, 2], [0.5, 0.5, 0.5])}, width=20, height=5)
        assert "o" in out

    def test_single_point(self):
        out = ascii_chart({"dot": ([1.0], [1.0])}, width=20, height=5)
        assert "o" in out

    def test_many_series_cycle_markers(self):
        x = [0.0, 1.0]
        series = {f"s{i}": (x, [i, i + 1]) for i in range(10)}
        out = ascii_chart(series, width=30, height=12)
        assert "s9" in out  # all series in the legend

    def test_chart_width_respected(self):
        out = ascii_chart(simple_series(), width=40, height=8)
        plot_lines = [l for l in out.splitlines() if "|" in l]
        assert all(len(l.split("|", 1)[1]) <= 40 for l in plot_lines)
