"""Unit tests for the scheduler's ready-queue implementations.

Both implementations must honour the same pick contract (earliest
eligible sticky match, else earliest eligible, else None); the indexed
queue additionally has lazy stale-entry machinery worth exercising
directly.  Cross-implementation equivalence at the full-scheduler level
lives in test_scheduler_equivalence.py.
"""

from __future__ import annotations

import random

import pytest

from repro.boinc import IndexedReadyQueue, LegacyListQueue
from repro.boinc.ready_queue import make_ready_queue

IMPLS = (IndexedReadyQueue, LegacyListQueue)


def shard_of_factory(mapping):
    return lambda wu_id: mapping[wu_id]


def always(_wu_id: str) -> bool:
    return True


@pytest.mark.parametrize("impl", IMPLS)
class TestContract:
    def test_fifo_without_sticky(self, impl):
        q = impl()
        shards = {}
        for i in range(4):
            shards[f"w{i}"] = f"s{i}"
            q.push(f"w{i}", f"s{i}")
        order = [q.pick((), shard_of_factory(shards), always) for _ in range(4)]
        assert order == ["w0", "w1", "w2", "w3"]
        assert q.pick((), shard_of_factory(shards), always) is None

    def test_sticky_match_wins_over_fifo(self, impl):
        q = impl()
        shards = {"w0": "s0", "w1": "s1", "w2": "s2"}
        for wu_id, shard in shards.items():
            q.push(wu_id, shard)
        assert q.pick({"s2"}, shard_of_factory(shards), always) == "w2"
        # The sticky unit is gone; FIFO resumes from the head.
        assert q.pick({"s2"}, shard_of_factory(shards), always) == "w0"

    def test_earliest_sticky_match_among_several(self, impl):
        q = impl()
        shards = {"w0": "sA", "w1": "sB", "w2": "sA", "w3": "sB"}
        for wu_id, shard in shards.items():
            q.push(wu_id, shard)
        # Both sA and sB are cached: earliest enqueue (w0) must win
        # regardless of sticky-set iteration order.
        assert q.pick({"sB", "sA"}, shard_of_factory(shards), always) == "w0"
        assert q.pick({"sB", "sA"}, shard_of_factory(shards), always) == "w1"

    def test_ineligible_entries_are_skipped_but_stay(self, impl):
        q = impl()
        shards = {"w0": "s0", "w1": "s1"}
        for wu_id, shard in shards.items():
            q.push(wu_id, shard)
        picked = q.pick((), shard_of_factory(shards), lambda w: w != "w0")
        assert picked == "w1"
        assert "w0" in q and len(q) == 1
        # w0 becomes eligible later (e.g. the host's replica bar clears).
        assert q.pick((), shard_of_factory(shards), always) == "w0"

    def test_nothing_eligible_returns_none(self, impl):
        q = impl()
        q.push("w0", "s0")
        assert q.pick((), lambda w: "s0", lambda w: False) is None
        assert len(q) == 1

    def test_remove(self, impl):
        q = impl()
        q.push("w0", "s0")
        q.push("w1", "s1")
        assert q.remove("w0") is True
        assert q.remove("w0") is False  # already gone
        assert "w0" not in q
        assert q.snapshot() == ["w1"]

    def test_requeue_moves_to_tail(self, impl):
        q = impl()
        shards = {"w0": "s0", "w1": "s1"}
        q.push("w0", "s0")
        q.push("w1", "s1")
        # Reissue path: the unit leaves (granted) and comes back later.
        assert q.pick((), shard_of_factory(shards), always) == "w0"
        q.push("w0", "s0")
        assert q.snapshot() == ["w1", "w0"]
        assert q.pick((), shard_of_factory(shards), always) == "w1"
        assert q.pick((), shard_of_factory(shards), always) == "w0"


class TestIndexedInternals:
    def test_stale_entries_trimmed_lazily(self):
        q = IndexedReadyQueue()
        for i in range(6):
            q.push(f"w{i}", "sA")  # one shared bucket
        for i in range(5):
            q.remove(f"w{i}")
        assert len(q) == 1
        # The five stale entries still sit in the deques until a pick
        # walks over them.
        assert len(q._fifo) == 6
        assert q.pick({"sA"}, lambda w: "sA", always) == "w5"
        assert len(q) == 0
        assert q.pick({"sA"}, lambda w: "sA", always) is None

    def test_remove_then_repush_invalidates_old_entry(self):
        q = IndexedReadyQueue()
        q.push("w0", "sA")
        q.push("w1", "sA")
        q.remove("w0")
        q.push("w0", "sA")  # new seq: must now sit behind w1
        assert q.snapshot() == ["w1", "w0"]
        assert q.pick((), lambda w: "sA", always) == "w1"
        assert q.pick((), lambda w: "sA", always) == "w0"

    def test_sticky_seq_prune_is_order_independent(self):
        # min-seq across buckets must win even when the iteration order
        # of the sticky set would visit the younger bucket first.
        q = IndexedReadyQueue()
        q.push("old", "sA")
        q.push("young", "sB")
        for sticky in ({"sA", "sB"}, {"sB", "sA"}, ["sB", "sA"], ["sA", "sB"]):
            got = q.pick(sticky, lambda w: "sA" if w == "old" else "sB", always)
            assert got == "old"
            # Rebuild the old-before-young ordering for the next round.
            q.remove("young")
            q.push("old", "sA")
            q.push("young", "sB")


def test_make_ready_queue():
    assert isinstance(make_ready_queue("indexed"), IndexedReadyQueue)
    assert isinstance(make_ready_queue("legacy"), LegacyListQueue)
    with pytest.raises(ValueError):
        make_ready_queue("btree")


def test_randomized_equivalence_against_legacy():
    """Drive both queues through the same random op stream; every pick
    and every snapshot must agree (the legacy queue is the oracle)."""
    rng = random.Random(0xFEE7)
    indexed, legacy = IndexedReadyQueue(), LegacyListQueue()
    shards: dict[str, str] = {}
    next_id = 0
    for _ in range(2000):
        op = rng.random()
        if op < 0.45 or not shards:
            wu_id = f"w{next_id}"
            next_id += 1
            shard = f"s{rng.randrange(8)}"
            shards[wu_id] = shard
            indexed.push(wu_id, shard)
            legacy.push(wu_id, shard)
        elif op < 0.6:
            victim = rng.choice(sorted(shards))
            assert indexed.remove(victim) == legacy.remove(victim)
        else:
            sticky = {f"s{rng.randrange(8)}" for _ in range(rng.randrange(3))}
            blocked = {w for w in shards if rng.random() < 0.2}
            eligible = lambda w, b=blocked: w not in b
            shard_of = shard_of_factory(shards)
            assert indexed.pick(sticky, shard_of, eligible) == legacy.pick(
                sticky, shard_of, eligible
            )
        assert len(indexed) == len(legacy)
        assert indexed.snapshot() == legacy.snapshot()
