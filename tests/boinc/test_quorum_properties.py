"""Hypothesis property suite for :class:`QuorumAssimilator` edge cases.

Randomized replica arrival orders and agreement structures pin down the
corner semantics the example-based tests cannot enumerate:

* tie-breaking between disjoint agreement cliques is deterministic in
  arrival order (same sequence -> same canonical result);
* late replicas of an already-canonical unit are always discarded, with
  the ``on_late`` agreement flag computed against the canonical payload;
* units whose quorum is never reached assimilate nothing (default mode
  waits forever; collusion-aware mode fails terminally once every
  expected replica has arrived).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boinc import CallbackAssimilator, Workunit
from repro.boinc.replication import QuorumAssimilator, QuorumConfig, replica_id
from repro.simulation import Simulator, Trace

# Each replica's payload is np.full(4, group): same group <=> agreement.
GROUPS = st.lists(st.integers(0, 3), min_size=1, max_size=6)


def make_replica(k: int, host: str) -> Workunit:
    wu = Workunit(
        wu_id=replica_id("u", k),
        job_id="job",
        epoch=0,
        shard_index=0,
        input_files=("m", "p", "s0"),
        work_units=1.0,
        timeout_s=100.0,
    )
    wu.mark_sent(host, 0.0)
    wu.mark_result_received(0.0)
    return wu


def run_quorum(groups: list[int], min_quorum: int, collusion: bool = False):
    """Feed one replica per group entry; return (quorum, assimilated ids,
    on_done count, late events)."""
    sink: list[str] = []
    done = [0]
    late: list[tuple[str, bool]] = []
    config = QuorumConfig(
        replicas=len(groups),
        min_quorum=min(min_quorum, len(groups)),
        collusion_aware=collusion,
    )
    quorum = QuorumAssimilator(
        CallbackAssimilator(lambda wu, p: sink.append(wu.wu_id)),
        config,
        trace=Trace(),
        sim=Simulator(),
    )
    quorum.on_late = lambda key, wu, agrees: late.append((wu.wu_id, agrees))
    for k, group in enumerate(groups):
        quorum.assimilate(
            make_replica(k, f"h{k}"),
            np.full(4, float(group)),
            lambda: done.__setitem__(0, done[0] + 1),
        )
    return quorum, sink, done[0], late


def largest_group_size(groups: list[int]) -> int:
    return max(groups.count(g) for g in set(groups))


@settings(max_examples=60, deadline=None)
@given(groups=GROUPS, min_quorum=st.integers(1, 4))
def test_at_most_one_canonical_and_all_done(groups, min_quorum):
    quorum, sink, done, _ = run_quorum(groups, min_quorum)
    assert len(sink) <= 1
    assert done == len(groups)  # every replica's completion ran exactly once
    assert quorum.quorums_reached == len(sink)
    assert quorum.decided_units() == len(sink)


@settings(max_examples=60, deadline=None)
@given(groups=GROUPS, min_quorum=st.integers(1, 4))
def test_decides_iff_some_clique_reaches_quorum(groups, min_quorum):
    quorum, sink, _, _ = run_quorum(groups, min_quorum)
    expected = largest_group_size(groups) >= min(min_quorum, len(groups))
    assert bool(sink) == expected
    if not expected:
        # Quorum never reached: the unit hangs pending, nothing merged.
        assert quorum.pending_units() == 1
        assert quorum.quorums_reached == 0


@settings(max_examples=60, deadline=None)
@given(groups=GROUPS, min_quorum=st.integers(1, 4))
def test_tie_breaking_is_arrival_deterministic(groups, min_quorum):
    """Disjoint same-size cliques: the winner is a pure function of the
    arrival sequence — replaying it reproduces the same canonical."""
    _, first, _, _ = run_quorum(groups, min_quorum)
    _, second, _, _ = run_quorum(groups, min_quorum)
    assert first == second


@settings(max_examples=60, deadline=None)
@given(groups=GROUPS, min_quorum=st.integers(1, 4), extra_group=st.integers(0, 3))
def test_late_replicas_always_discarded(groups, min_quorum, extra_group):
    quorum, sink, _, late = run_quorum(groups, min_quorum)
    if not sink:
        return  # never decided; nothing can be late
    canonical_group = groups[int(sink[0].rsplit("#r", 1)[1])]
    before = quorum.discarded_extras
    quorum.assimilate(
        make_replica(len(groups), "straggler"),
        np.full(4, float(extra_group)),
        lambda: None,
    )
    assert quorum.discarded_extras == before + 1
    assert len(sink) == 1  # no second assimilation
    assert late[-1] == (replica_id("u", len(groups)), extra_group == canonical_group)


@settings(max_examples=60, deadline=None)
@given(groups=GROUPS, min_quorum=st.integers(1, 4))
def test_collusion_mode_always_terminates_at_full_arrival(groups, min_quorum):
    """With every expected replica arrived, collusion-aware units are
    terminal: canonical chosen or quorum failed — never hung."""
    quorum, sink, done, _ = run_quorum(groups, min_quorum, collusion=True)
    assert quorum.pending_units() == 0
    assert quorum.quorums_reached + quorum.quorums_failed == 1
    assert done == len(groups)
    if quorum.quorums_failed:
        assert sink == []


@settings(max_examples=60, deadline=None)
@given(groups=GROUPS, min_quorum=st.integers(1, 4))
def test_collusion_canonical_comes_from_a_largest_clique(groups, min_quorum):
    """With uniform reliability the weighted score reduces to clique size,
    so the canonical replica must belong to a maximal agreement group."""
    _, sink, _, _ = run_quorum(groups, min_quorum, collusion=True)
    if not sink:
        return
    winner_group = groups[int(sink[0].rsplit("#r", 1)[1])]
    assert groups.count(winner_group) == largest_group_size(groups)
