"""Transfer-layer fault injection and BOINC-style persistent transfers.

Covers the chaos fabric's web-server hooks (per-transfer failures, stalls,
partitions), the split download API (simulation-correct callback vs the
test-only ``peek_payloads`` accessor), and the client daemon's retry loop
with capped exponential backoff.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc import FileCatalog, ServerFile, Workunit, WebServer
from repro.boinc.client import (
    MAX_TRANSFER_RETRIES,
    TRANSFER_RETRY_BASE_S,
    TRANSFER_RETRY_CAP_S,
    ClientDaemon,
)
from repro.boinc.files import TransferError
from repro.boinc.scheduler import Scheduler, SchedulerConfig
from repro.simulation import NetworkLink, Simulator, Trace
from repro.simulation.chaos import (
    PartitionSchedule,
    PartitionWindow,
    TransferFaultPlan,
)
from repro.simulation.resources import InstanceSpec


@pytest.fixture
def link() -> NetworkLink:
    return NetworkLink(latency_s=0.5, bandwidth_bps=1000.0)


@pytest.fixture
def catalog() -> FileCatalog:
    cat = FileCatalog()
    cat.publish(ServerFile("model", payload="spec", raw_size=1000))
    cat.publish(ServerFile("params", payload=b"p", raw_size=2000))
    cat.publish(ServerFile("shard-00", payload="data", raw_size=500, sticky=True))
    return cat


def make_web(sim, catalog, trace=None, faults=None, partitions=None) -> WebServer:
    return WebServer(
        sim,
        catalog,
        compression_enabled=False,
        trace=trace,
        faults=faults,
        partitions=partitions,
    )


class TestDownloadApiSplit:
    def test_download_returns_none(self, sim, catalog, link):
        web = make_web(sim, catalog)
        assert web.download(["model"], link, None, lambda p: None) is None

    def test_payloads_only_via_callback(self, sim, catalog, link):
        web = make_web(sim, catalog)
        got: dict[str, object] = {}
        web.download(["model", "params"], link, None, got.update)
        assert got == {}  # nothing before the simulated transfer completes
        sim.run()
        assert got == {"model": "spec", "params": b"p"}

    def test_peek_payloads_charges_nothing(self, sim, catalog, link):
        web = make_web(sim, catalog)
        web.peek_enabled = True  # test-only flag
        payloads = web.peek_payloads(["model", "shard-00"])
        assert payloads["model"] == "spec"
        assert web.bytes_down == 0
        assert sim.pending() == 0  # no simulated transfer scheduled

    def test_peek_payloads_guarded_by_default(self, sim, catalog, link):
        from repro.errors import SimulationError

        web = make_web(sim, catalog)
        with pytest.raises(SimulationError):
            web.peek_payloads(["model"])


class TestFaultInjection:
    def test_certain_failure_fires_on_error(self, sim, catalog, link):
        web = make_web(sim, catalog, faults=TransferFaultPlan(failure_p=1.0))
        errors: list[TransferError] = []
        web.download(
            ["model"],
            link,
            None,
            lambda p: pytest.fail("on_done must not fire"),
            rng=np.random.default_rng(0),
            on_error=errors.append,
            client_id="c1",
        )
        sim.run()
        assert errors and errors[0].reason == "failure"
        assert errors[0].files == ("model",)
        assert web.transfers_failed == 1
        assert web.bytes_wasted == 1000
        assert web.bytes_down == 0

    def test_failure_detected_before_nominal_time(self, sim, catalog, link):
        web = make_web(sim, catalog, faults=TransferFaultPlan(failure_p=1.0))
        nominal = link.transfer_time(1000)
        when: list[float] = []
        web.download(
            ["model"], link, None, lambda p: None,
            rng=np.random.default_rng(0), on_error=lambda e: when.append(sim.now),
            client_id="c1",
        )
        sim.run()
        assert 0 < when[0] < nominal

    def test_stall_detected_after_timeout(self, sim, catalog, link):
        web = make_web(
            sim, catalog, faults=TransferFaultPlan(stall_p=1.0, stall_timeout_s=77.0)
        )
        when: list[float] = []
        web.download(
            ["model"], link, None, lambda p: None,
            rng=np.random.default_rng(0), on_error=lambda e: when.append(sim.now),
            client_id="c1",
        )
        sim.run()
        assert when == [77.0]

    def test_no_on_error_means_no_injection(self, sim, catalog, link):
        # Setup paths (work-generator shard publication, legacy callers)
        # pass no on_error and must never lose a transfer to chaos.
        web = make_web(sim, catalog, faults=TransferFaultPlan(failure_p=1.0))
        got: list[object] = []
        web.download(
            ["model"], link, None, lambda p: got.append(p),
            rng=np.random.default_rng(0), client_id="c1",
        )
        sim.run()
        assert got and web.transfers_failed == 0

    def test_upload_fault(self, sim, catalog, link):
        web = make_web(sim, catalog, faults=TransferFaultPlan(failure_p=1.0))
        errors: list[TransferError] = []
        web.upload(
            4000, link, lambda: pytest.fail("on_done must not fire"),
            rng=np.random.default_rng(0), on_error=errors.append, client_id="c1",
        )
        sim.run()
        assert errors[0].reason == "failure"
        assert web.bytes_wasted == 4000
        assert web.bytes_up == 0


class TestPartitions:
    def test_partition_fails_fast(self, sim, catalog, link, trace):
        partitions = PartitionSchedule((PartitionWindow(0.0, 100.0),))
        web = make_web(sim, catalog, trace=trace, partitions=partitions)
        errors: list[TransferError] = []
        web.download(
            ["model"], link, None, lambda p: None,
            rng=np.random.default_rng(0), on_error=errors.append, client_id="c1",
        )
        sim.run()
        assert errors[0].reason == "partition"
        assert sim.now == pytest.approx(link.handshake_time())
        assert trace.count("net.partition") == 1

    def test_partition_is_per_client(self, sim, catalog, link):
        partitions = PartitionSchedule((PartitionWindow(0.0, 100.0, ("c1",)),))
        web = make_web(sim, catalog, partitions=partitions)
        outcomes: list[str] = []
        web.download(
            ["model"], link, None, lambda p: outcomes.append("done:c2"),
            rng=np.random.default_rng(0),
            on_error=lambda e: outcomes.append("err:c2"), client_id="c2",
        )
        web.download(
            ["model"], link, None, lambda p: outcomes.append("done:c1"),
            rng=np.random.default_rng(0),
            on_error=lambda e: outcomes.append("err:c1"), client_id="c1",
        )
        sim.run()
        assert sorted(outcomes) == ["done:c2", "err:c1"]


# ---------------------------------------------------------------------------
# Client daemon persistent-transfer behaviour
# ---------------------------------------------------------------------------

SPEC = InstanceSpec(
    name="test-host", vcpus=2, clock_ghz=2.0, ram_gb=8.0, network_gbps=1.0
)


def make_client(sim, web, sched, trace=None, rng=None) -> ClientDaemon:
    return ClientDaemon(
        client_id="c1",
        sim=sim,
        spec=SPEC,
        scheduler=sched,
        web=web,
        executor=lambda wu, payloads: ("result", 100),
        max_concurrent=2,
        link=NetworkLink(latency_s=0.1, bandwidth_bps=1e6),
        rng=rng,
        trace=trace,
    )


def make_wu(i: int = 0, timeout_s: float = 1e6) -> Workunit:
    return Workunit(
        wu_id=f"wu{i:02d}",
        job_id="job",
        epoch=0,
        shard_index=i,
        input_files=("model", "params"),
        work_units=10.0,
        timeout_s=timeout_s,
        max_attempts=3,
    )


class TestClientBackoff:
    def test_backoff_grows_and_caps(self, sim, catalog):
        web = make_web(sim, catalog)
        sched = Scheduler(sim, SchedulerConfig())
        client = make_client(sim, web, sched)  # rng=None: no jitter
        assert client._transfer_backoff(0) == TRANSFER_RETRY_BASE_S
        assert client._transfer_backoff(1) == 2 * TRANSFER_RETRY_BASE_S
        assert client._transfer_backoff(50) == TRANSFER_RETRY_CAP_S

    def test_jitter_is_bounded(self, sim, catalog):
        web = make_web(sim, catalog)
        sched = Scheduler(sim, SchedulerConfig())
        client = make_client(sim, web, sched, rng=np.random.default_rng(3))
        for retry in range(6):
            base = min(TRANSFER_RETRY_BASE_S * 2.0**retry, TRANSFER_RETRY_CAP_S)
            delay = client._transfer_backoff(retry)
            assert base <= delay <= 1.25 * base


class TestClientRetryLoop:
    def test_transient_fault_retries_then_completes(self, sim, catalog, trace):
        # failure_p=0.6: some transfers fail, retries eventually succeed.
        web = make_web(
            sim, catalog, trace=trace, faults=TransferFaultPlan(failure_p=0.6)
        )
        sched = Scheduler(sim, SchedulerConfig(timeout_s=1e6))
        client = make_client(sim, web, sched, trace=trace, rng=np.random.default_rng(3))
        sched.add_workunits([make_wu()])
        client.poll_for_work()
        sim.run()
        assert client.subtasks_completed == 1
        assert client.transfer_retries >= 1
        assert trace.count("net.retry") == client.transfer_retries

    def test_permanent_fault_gives_up_and_frees_slot(self, sim, catalog, trace):
        web = make_web(
            sim, catalog, trace=trace, faults=TransferFaultPlan(failure_p=1.0)
        )
        sched = Scheduler(sim, SchedulerConfig(timeout_s=1e6))
        client = make_client(sim, web, sched, trace=trace, rng=np.random.default_rng(7))
        sched.add_workunits([make_wu()])
        client.poll_for_work()
        sim.run()
        assert client.subtasks_completed == 0
        assert client.transfers_abandoned == 1
        assert client.transfer_retries == MAX_TRANSFER_RETRIES
        assert client.free_slots == client.max_concurrent  # slot reclaimed
        assert trace.count("net.gave_up") == 1

    def test_deadline_abort_stops_retry_loop(self, sim, catalog, trace):
        # Scheduler deadline fires while the client is still backing off:
        # the abort clears the in-flight slot and the retry loop must stop.
        web = make_web(
            sim, catalog, trace=trace, faults=TransferFaultPlan(failure_p=1.0)
        )
        sched = Scheduler(sim, SchedulerConfig(timeout_s=30.0, max_attempts=1))
        client = make_client(sim, web, sched, trace=trace, rng=np.random.default_rng(7))
        sched.on_timeout = lambda wu_id, cid: client.abort_workunit(wu_id)
        sched.add_workunits([make_wu(timeout_s=30.0)])
        client.poll_for_work()
        sim.run()
        assert sched.timeouts == 1
        assert client.transfers_abandoned == 0  # loop exited via abort path
        assert client.transfer_retries < MAX_TRANSFER_RETRIES

    def test_partition_lifts_and_work_completes(self, sim, catalog, trace):
        partitions = PartitionSchedule((PartitionWindow(0.0, 20.0),))
        web = make_web(sim, catalog, trace=trace, partitions=partitions)
        sched = Scheduler(sim, SchedulerConfig(timeout_s=1e6))
        client = make_client(sim, web, sched, trace=trace, rng=np.random.default_rng(7))
        sched.add_workunits([make_wu()])
        client.poll_for_work()
        sim.run()
        assert client.subtasks_completed == 1
        assert trace.count("net.partition") >= 1
        assert trace.count("net.retry") >= 1

    def test_upload_retries_after_fault(self, sim, catalog, trace):
        # Faults only on the upload side: downloads carry no failure draw
        # here because the first rng draw decides; use a partition window
        # that opens after download completes instead.
        partitions = PartitionSchedule((PartitionWindow(5.0, 30.0),))
        web = make_web(sim, catalog, trace=trace, partitions=partitions)
        sched = Scheduler(sim, SchedulerConfig(timeout_s=1e6))
        client = make_client(sim, web, sched, trace=trace, rng=np.random.default_rng(7))
        sched.add_workunits([make_wu()])
        client.poll_for_work()
        sim.run()
        assert client.subtasks_completed == 1
        phases = {r["phase"] for r in trace.of_kind("net.retry")}
        assert "upload" in phases
