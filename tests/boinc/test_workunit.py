"""Workunit state-machine tests."""

from __future__ import annotations

import pytest

from repro.boinc import Workunit, WorkunitState
from repro.errors import WorkunitError


def make_wu(max_attempts: int = 3) -> Workunit:
    return Workunit(
        wu_id="job:e000:s000",
        job_id="job",
        epoch=0,
        shard_index=0,
        input_files=("model.json", "params.h5", "shard-00"),
        work_units=144.0,
        timeout_s=300.0,
        max_attempts=max_attempts,
    )


class TestHappyPath:
    def test_full_lifecycle(self):
        wu = make_wu()
        attempt = wu.mark_sent("c1", now=10.0)
        assert wu.state is WorkunitState.IN_PROGRESS
        assert attempt.deadline == 310.0
        wu.mark_result_received(now=100.0)
        assert wu.state is WorkunitState.VALIDATING
        wu.mark_valid(now=101.0, result="payload")
        assert wu.state is WorkunitState.DONE
        assert wu.is_terminal
        assert wu.completed_at == 101.0
        assert wu.current_attempt.outcome == "success"

    def test_shard_file_is_last_input(self):
        assert make_wu().shard_file() == "shard-00"


class TestTimeoutAndRetry:
    def test_timeout_requeues(self):
        wu = make_wu()
        wu.mark_sent("c1", now=0.0)
        assert wu.mark_timeout(now=300.0) is True
        assert wu.state is WorkunitState.UNSENT
        assert wu.current_attempt.outcome == "timeout"

    def test_attempt_budget_exhaustion_leads_to_error(self):
        wu = make_wu(max_attempts=2)
        wu.mark_sent("c1", now=0.0)
        assert wu.mark_timeout(now=1.0) is True
        wu.mark_sent("c2", now=2.0)
        assert wu.mark_timeout(now=3.0) is False
        assert wu.state is WorkunitState.ERROR
        assert wu.is_terminal

    def test_cannot_send_beyond_budget(self):
        wu = make_wu(max_attempts=1)
        wu.mark_sent("c1", now=0.0)
        wu.mark_timeout(now=1.0)
        with pytest.raises(WorkunitError):
            wu.mark_sent("c2", now=2.0)

    def test_client_error_requeues(self):
        wu = make_wu()
        wu.mark_sent("c1", now=0.0)
        assert wu.mark_client_error(now=5.0) is True
        assert wu.state is WorkunitState.UNSENT

    def test_invalid_result_requeues(self):
        wu = make_wu()
        wu.mark_sent("c1", now=0.0)
        wu.mark_result_received(now=1.0)
        assert wu.mark_invalid(now=2.0) is True
        assert wu.state is WorkunitState.UNSENT
        assert wu.current_attempt.outcome == "invalid"

    def test_retry_after_timeout_can_succeed(self):
        wu = make_wu()
        wu.mark_sent("c1", now=0.0)
        wu.mark_timeout(now=300.0)
        wu.mark_sent("c2", now=301.0)
        wu.mark_result_received(now=400.0)
        wu.mark_valid(now=401.0, result=None)
        assert wu.state is WorkunitState.DONE
        assert wu.num_attempts == 2


class TestIllegalTransitions:
    def test_result_before_send(self):
        with pytest.raises(WorkunitError):
            make_wu().mark_result_received(now=0.0)

    def test_double_send(self):
        wu = make_wu()
        wu.mark_sent("c1", now=0.0)
        with pytest.raises(WorkunitError):
            wu.mark_sent("c2", now=1.0)

    def test_valid_without_result(self):
        wu = make_wu()
        wu.mark_sent("c1", now=0.0)
        with pytest.raises(WorkunitError):
            wu.mark_valid(now=1.0, result=None)

    def test_timeout_after_done(self):
        wu = make_wu()
        wu.mark_sent("c1", now=0.0)
        wu.mark_result_received(now=1.0)
        wu.mark_valid(now=2.0, result=None)
        with pytest.raises(WorkunitError):
            wu.mark_timeout(now=3.0)

    def test_current_attempt_before_any(self):
        with pytest.raises(WorkunitError):
            _ = make_wu().current_attempt
