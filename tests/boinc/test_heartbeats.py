"""Trickle-heartbeat tests: deadline sliding for slow-but-alive clients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc import (
    BoincServer,
    CallbackAssimilator,
    ClientDaemon,
    ParameterValidator,
    Scheduler,
    SchedulerConfig,
    ServerFile,
    Workunit,
)
from repro.simulation import InstanceSpec, Simulator


def build(sim: Simulator, heartbeats: bool, clock_ghz: float = 0.24):
    """One very slow client computing a unit that exceeds the timeout."""
    assim = CallbackAssimilator(lambda wu, payload: None)
    server = BoincServer(
        sim,
        assimilator=assim,
        validator=ParameterValidator(expected_size=4),
        scheduler_config=SchedulerConfig(
            timeout_s=50.0,
            heartbeats_enabled=heartbeats,
            heartbeat_interval_s=20.0,
            backoff_base_s=0.0,
        ),
    )
    server.catalog.publish(ServerFile("model", "spec", raw_size=10, sticky=True))
    server.catalog.publish(ServerFile("params", np.zeros(4), raw_size=10))
    server.catalog.publish(ServerFile("shard-00", "d", raw_size=10, sticky=True))
    # 10 work units at 0.1 units/s -> 100 s of compute > 50 s timeout.
    spec = InstanceSpec("slow", vcpus=1, clock_ghz=clock_ghz, ram_gb=4, network_gbps=1)
    client = ClientDaemon(
        client_id="c0",
        sim=sim,
        spec=spec,
        scheduler=server.scheduler,
        web=server.web,
        executor=lambda wu, payloads: (np.ones(4), 10),
        max_concurrent=1,
    )
    server.attach_client(client)
    wu = Workunit(
        wu_id="wu00",
        job_id="job",
        epoch=0,
        shard_index=0,
        input_files=("model", "params", "shard-00"),
        work_units=10.0,
        timeout_s=50.0,
        max_attempts=2,
    )
    server.publish_workunits([wu])
    return server, assim, client, wu


class TestHeartbeats:
    def test_without_heartbeats_slow_unit_times_out(self, sim):
        server, assim, client, wu = build(sim, heartbeats=False)
        sim.run()
        assert server.scheduler.timeouts >= 1
        assert client.subtasks_aborted >= 1

    def test_with_heartbeats_slow_unit_completes(self, sim):
        server, assim, client, wu = build(sim, heartbeats=True)
        sim.run()
        assert server.scheduler.timeouts == 0
        assert assim.count == 1
        assert server.scheduler.heartbeats >= 4  # ~100 s / 20 s interval
        assert wu.state.value == "done"

    def test_heartbeats_stop_after_completion(self, sim):
        server, assim, client, wu = build(sim, heartbeats=True)
        sim.run()
        final_count = server.scheduler.heartbeats
        sim.schedule(500.0, lambda: None)
        sim.run()
        assert server.scheduler.heartbeats == final_count

    def test_dead_client_stops_heartbeating_and_times_out(self, sim):
        """Heartbeats must not mask real failures: a terminated client's
        unit still times out one t_o after its last heartbeat."""
        server, assim, client, wu = build(sim, heartbeats=True)
        sim.schedule(30.0, client.terminate)
        sim.run()
        assert assim.count == 0
        # Unit failed over via client_error (terminate reports immediately).
        assert wu.attempts[0].outcome == "client_error"

    def test_heartbeat_disabled_config_rejects_reports(self, sim):
        sched = Scheduler(sim, SchedulerConfig(heartbeats_enabled=False))
        wu = Workunit(
            wu_id="w",
            job_id="j",
            epoch=0,
            shard_index=0,
            input_files=("m", "p", "s"),
            work_units=1.0,
            timeout_s=10.0,
        )
        sched.add_workunits([wu])
        sched.request_work("c1", set(), 1)
        assert sched.report_heartbeat("w", "c1") is False

    def test_stale_heartbeat_ignored(self, sim):
        sched = Scheduler(
            sim, SchedulerConfig(timeout_s=10.0, heartbeats_enabled=True)
        )
        wu = Workunit(
            wu_id="w",
            job_id="j",
            epoch=0,
            shard_index=0,
            input_files=("m", "p", "s"),
            work_units=1.0,
            timeout_s=10.0,
        )
        sched.add_workunits([wu])
        sched.request_work("c1", set(), 1)
        sim.run()  # times out
        assert sched.report_heartbeat("w", "c1") is False

    def test_heartbeat_slides_deadline(self, sim):
        sched = Scheduler(
            sim, SchedulerConfig(timeout_s=100.0, heartbeats_enabled=True)
        )
        wu = Workunit(
            wu_id="w",
            job_id="j",
            epoch=0,
            shard_index=0,
            input_files=("m", "p", "s"),
            work_units=1.0,
            timeout_s=100.0,
        )
        sched.add_workunits([wu])
        sched.request_work("c1", set(), 1)
        original = wu.current_attempt.deadline
        sim.schedule(60.0, lambda: sched.report_heartbeat("w", "c1"))
        sim.run(until=61.0)
        assert wu.current_attempt.deadline == pytest.approx(160.0)
        assert wu.current_attempt.deadline > original
