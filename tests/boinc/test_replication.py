"""Replication / quorum validation tests (§II-C redundancy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc import CallbackAssimilator, Scheduler, SchedulerConfig, Workunit
from repro.boinc.replication import (
    QuorumAssimilator,
    QuorumConfig,
    logical_id,
    replica_id,
)
from repro.errors import ConfigurationError


def make_replica(logical: str, replica: int, epoch: int = 0) -> Workunit:
    return Workunit(
        wu_id=replica_id(logical, replica),
        job_id="job",
        epoch=epoch,
        shard_index=0,
        input_files=("m", "p", "s0"),
        work_units=1.0,
        timeout_s=100.0,
    )


class TestIds:
    def test_replica_id_roundtrip(self):
        rid = replica_id("job:e000:s007", 2)
        assert rid == "job:e000:s007#r2"
        assert logical_id(rid) == "job:e000:s007"

    def test_logical_id_of_plain_id(self):
        assert logical_id("job:e000:s007") == "job:e000:s007"


class TestQuorumConfig:
    def test_valid(self):
        QuorumConfig(replicas=3, min_quorum=2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replicas": 0},
            {"replicas": 2, "min_quorum": 3},
            {"replicas": 2, "min_quorum": 0},
            {"rtol": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            QuorumConfig(**kwargs)


class TestQuorumAssimilator:
    def make(self, replicas=2, quorum=2, rtol=1e-9):
        seen: list[np.ndarray] = []
        inner = CallbackAssimilator(lambda wu, payload: seen.append(payload))
        qa = QuorumAssimilator(
            inner, QuorumConfig(replicas=replicas, min_quorum=quorum, rtol=rtol)
        )
        return qa, inner, seen

    def test_waits_for_quorum(self):
        qa, inner, seen = self.make()
        done = []
        vec = np.ones(4)
        qa.assimilate(make_replica("u", 0), vec, lambda: done.append(1))
        assert inner.count == 0  # only one replica so far
        assert qa.pending_units() == 1
        qa.assimilate(make_replica("u", 1), vec.copy(), lambda: done.append(2))
        assert inner.count == 1  # quorum of 2 identical results
        assert qa.decided_units() == 1
        assert done == [1, 2]  # every replica's pipeline completes

    def test_forwards_exactly_one_canonical(self):
        qa, inner, seen = self.make(replicas=3, quorum=2)
        vec = np.ones(4)
        for r in range(3):
            qa.assimilate(make_replica("u", r), vec.copy(), lambda: None)
        assert inner.count == 1
        assert qa.discarded_extras == 1  # the third replica was ignored

    def test_disagreeing_replica_blocks_quorum(self):
        qa, inner, seen = self.make()
        qa.assimilate(make_replica("u", 0), np.ones(4), lambda: None)
        qa.assimilate(make_replica("u", 1), np.full(4, 5.0), lambda: None)
        assert inner.count == 0
        assert qa.disagreements >= 1

    def test_majority_beats_corrupt_replica(self):
        qa, inner, seen = self.make(replicas=3, quorum=2)
        good = np.ones(4)
        qa.assimilate(make_replica("u", 0), good, lambda: None)
        qa.assimilate(make_replica("u", 1), np.full(4, 9.0), lambda: None)  # corrupt
        qa.assimilate(make_replica("u", 2), good.copy(), lambda: None)
        assert inner.count == 1
        np.testing.assert_array_equal(seen[0], good)

    def test_fuzzy_tolerance(self):
        qa, inner, seen = self.make(rtol=1e-3)
        qa.assimilate(make_replica("u", 0), np.ones(4), lambda: None)
        qa.assimilate(make_replica("u", 1), np.ones(4) * (1 + 1e-5), lambda: None)
        assert inner.count == 1  # within tolerance

    def test_independent_logical_units(self):
        qa, inner, seen = self.make(quorum=1, replicas=2)
        qa.assimilate(make_replica("a", 0), np.ones(2), lambda: None)
        qa.assimilate(make_replica("b", 0), np.zeros(2), lambda: None)
        assert inner.count == 2

    def test_shape_mismatch_never_agrees(self):
        qa, inner, seen = self.make()
        qa.assimilate(make_replica("u", 0), np.ones(4), lambda: None)
        qa.assimilate(make_replica("u", 1), np.ones(5), lambda: None)
        assert inner.count == 0


class TestOneResultPerHost:
    def test_host_never_gets_two_replicas_of_same_unit(self, sim):
        sched = Scheduler(sim, SchedulerConfig(timeout_s=100.0))
        wus = [make_replica("u", r) for r in range(2)]
        sched.add_workunits(wus)
        first = sched.request_work("c1", set(), 4)
        assert len(first) == 1  # second replica is ineligible for c1
        second = sched.request_work("c2", set(), 4)
        assert len(second) == 1

    def test_retry_of_own_unit_allowed(self, sim):
        sched = Scheduler(
            sim, SchedulerConfig(timeout_s=10.0, backoff_base_s=0.0)
        )
        sched.add_workunits([make_replica("u", 0)])
        sched.request_work("c1", set(), 1)
        sim.run()  # timeout -> requeue
        granted = sched.request_work("c1", set(), 1)
        assert len(granted) == 1  # same physical unit, same host: allowed

    def test_rule_disabled(self, sim):
        sched = Scheduler(
            sim, SchedulerConfig(timeout_s=100.0, one_result_per_host=False)
        )
        sched.add_workunits([make_replica("u", r) for r in range(2)])
        assert len(sched.request_work("c1", set(), 4)) == 2


class TestEndToEndReplication:
    def test_full_run_reaches_all_quorums(self):
        from repro.core import TrainingJobConfig, run_experiment
        from repro.core.job import LocalTrainingConfig
        from repro.data import SyntheticImageConfig
        from repro.nn.models import ModelSpec

        cfg = TrainingJobConfig(
            num_param_servers=1,
            num_clients=3,
            max_concurrent_subtasks=2,
            model=ModelSpec("mlp", {"in_features": 48, "hidden": [8], "num_classes": 4}),
            data=SyntheticImageConfig(image_size=4, num_classes=4, noise_std=1.5),
            num_train=120,
            num_val=40,
            num_test=40,
            num_shards=6,
            max_epochs=2,
            local_training=LocalTrainingConfig(local_epochs=3, learning_rate=0.01),
            replicas=2,
            quorum=2,
            seed=3,
        )
        result = run_experiment(cfg)
        assert result.counters["quorums_reached"] == 12  # 6 shards x 2 epochs
        assert result.counters["replica_disagreements"] == 0
        assert result.counters["assimilations"] == 12

    def test_replicas_capped_by_clients(self):
        from repro.core import TrainingJobConfig

        with pytest.raises(ConfigurationError):
            TrainingJobConfig(num_clients=2, replicas=3, quorum=2)
