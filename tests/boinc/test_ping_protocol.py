"""Ping + server-suggested-sleep work-fetch protocol tests.

The contract under test: a ping either grants work or returns a sleep
hint derived from the client's failure backoff, the queue state, and
server backpressure; parked waiters are woken FIFO and only as many as
there are new units — an idle fleet of any size generates no storm.
"""

from __future__ import annotations

import pytest

from repro.boinc import Scheduler, SchedulerConfig, Workunit
from repro.errors import SchedulerError
from repro.simulation import Simulator


def make_wus(n: int, replica: str = "") -> list[Workunit]:
    return [
        Workunit(
            wu_id=f"job:e0:s{i}{replica}",
            job_id="job",
            epoch=0,
            shard_index=i,
            input_files=("model", "params", f"shard-{i:02d}"),
            work_units=10.0,
            timeout_s=100.0,
            max_attempts=3,
        )
        for i in range(n)
    ]


def ping_config(**overrides) -> SchedulerConfig:
    defaults = dict(
        timeout_s=100.0,
        work_fetch="ping",
        ping_busy_s=5.0,
        ping_idle_base_s=30.0,
        ping_idle_max_s=240.0,
        backoff_base_s=60.0,
    )
    defaults.update(overrides)
    return SchedulerConfig(**defaults)


class TestSleepHints:
    def test_grant_returns_zero_hint(self, sim, trace):
        sched = Scheduler(sim, ping_config(), trace=trace)
        sched.add_workunits(make_wus(2))
        granted, hint = sched.ping("c1", set(), 2)
        assert len(granted) == 2 and hint == 0.0
        pings = [r for r in trace if r.kind == "sched.ping"]
        assert len(pings) == 1 and pings[0]["granted"] == 2
        assert not [r for r in trace if r.kind == "sched.sleep_hint"]

    def test_idle_hint_doubles_and_caps(self, sim, trace):
        sched = Scheduler(sim, ping_config(), trace=trace)
        hints = [sched.ping("c1", set(), 1)[1] for _ in range(6)]
        assert hints == [30.0, 60.0, 120.0, 240.0, 240.0, 240.0]
        reasons = {r["reason"] for r in trace if r.kind == "sched.sleep_hint"}
        assert reasons == {"idle"}

    def test_grant_resets_idle_growth(self, sim):
        sched = Scheduler(sim, ping_config())
        sched.ping("c1", set(), 1)
        sched.ping("c1", set(), 1)  # empty_pings = 2
        sched.add_workunits(make_wus(1))
        granted, _ = sched.ping("c1", set(), 1)
        assert granted
        sched.report_result(granted[0].wu_id, "c1")
        _, hint = sched.ping("c1", set(), 1)
        assert hint == 30.0  # back to the base, not 120

    def test_backoff_dominates_hint(self, sim, trace):
        sched = Scheduler(sim, ping_config(), trace=trace)
        sched.add_workunits(make_wus(1))
        granted, _ = sched.ping("c1", set(), 1)
        sched.report_client_failure("c1")  # backoff_base_s from now
        _, hint = sched.ping("c1", set(), 1)
        assert hint == pytest.approx(60.0, abs=1e-3)
        reasons = [r["reason"] for r in trace if r.kind == "sched.sleep_hint"]
        assert reasons == ["backoff"]

    def test_ineligible_hint_when_queue_nonempty(self, sim, trace):
        # Only a sibling replica of something c1 already computed remains:
        # queue non-empty, nothing grantable -> short busy retry.
        sched = Scheduler(sim, ping_config(), trace=trace)
        sched.add_workunits(make_wus(1, replica="#r0"))
        sched.add_workunits(make_wus(1, replica="#r1"))
        granted, _ = sched.ping("c1", set(), 1)
        assert granted[0].wu_id == "job:e0:s0#r0"
        sched.report_result("job:e0:s0#r0", "c1")
        _, hint = sched.ping("c1", set(), 1)
        assert hint == 5.0
        reasons = [r["reason"] for r in trace if r.kind == "sched.sleep_hint"]
        assert reasons[-1] == "ineligible"

    def test_probation_hint(self, sim, trace):
        sched = Scheduler(
            sim, ping_config(probation_threshold=0.9, reliability_decay=0.5),
            trace=trace,
        )
        sched.add_workunits(make_wus(3))
        granted, _ = sched.ping("c1", set(), 1)
        sched.report_client_failure("c1")  # reliability 0.5 -> probation
        sim.run(until=100.0)  # clear the failure backoff window
        granted, _ = sched.ping("c1", set(), 2)
        assert len(granted) == 1  # probation: one unit at a time
        _, hint = sched.ping("c1", set(), 2)
        assert hint == 5.0
        reasons = [r["reason"] for r in trace if r.kind == "sched.sleep_hint"]
        assert reasons[-1] == "probation"

    def test_backpressure_extends_idle_hint(self, sim):
        sched = Scheduler(sim, ping_config())
        sched.backpressure_fn = lambda: 12.5
        _, hint = sched.ping("c1", set(), 1)
        assert hint == pytest.approx(30.0 + 12.5)


class TestWaiters:
    def test_new_work_wakes_at_most_that_many_waiters(self, sim):
        sched = Scheduler(sim, ping_config())
        woken: list[str] = []
        for i in range(5):
            cid = f"c{i}"
            sched.ping(cid, set(), 1, wake=lambda c=cid: woken.append(c))
        sched.add_workunits(make_wus(2))
        sim.run()
        assert woken == ["c0", "c1"]  # FIFO, O(new work) not O(fleet)
        assert len(sched._waiters) == 3

    def test_woken_waiter_is_unparked(self, sim):
        sched = Scheduler(sim, ping_config())
        sched.ping("c1", set(), 1, wake=lambda: None)
        assert "c1" in sched._waiters
        sched.add_workunits(make_wus(1))
        assert "c1" not in sched._waiters

    def test_repinging_client_replaces_its_parking(self, sim):
        sched = Scheduler(sim, ping_config())
        sched.ping("c1", set(), 1, wake=lambda: None)
        sched.ping("c2", set(), 1, wake=lambda: None)
        sched.ping("c1", set(), 1, wake=lambda: None)  # re-ping: re-parked last
        assert list(sched._waiters) == ["c2", "c1"]

    def test_cancel_waiter(self, sim):
        sched = Scheduler(sim, ping_config())
        woken: list[str] = []
        sched.ping("c1", set(), 1, wake=lambda: woken.append("c1"))
        sched.cancel_waiter("c1")
        sched.add_workunits(make_wus(1))
        sim.run()
        assert woken == []

    def test_requeue_after_failure_wakes_waiters(self, sim):
        sched = Scheduler(sim, ping_config())
        sched.add_workunits(make_wus(1))
        granted, _ = sched.ping("c1", set(), 1)
        assert granted
        woken: list[str] = []
        sched.ping("c2", set(), 1, wake=lambda: woken.append("c2"))
        sched.report_client_failure("c1")  # unit reissued -> wake c2
        sim.run()
        assert woken == ["c2"]

    def test_pings_counter(self, sim):
        sched = Scheduler(sim, ping_config())
        sched.ping("c1", set(), 1)
        sched.ping("c2", set(), 1)
        assert sched.pings == 2


class TestConfigValidation:
    def test_unknown_work_fetch_rejected(self):
        with pytest.raises(SchedulerError):
            SchedulerConfig(work_fetch="carrier-pigeon")

    def test_bad_hint_bounds_rejected(self):
        with pytest.raises(SchedulerError):
            SchedulerConfig(ping_idle_base_s=60.0, ping_idle_max_s=30.0)
        with pytest.raises(SchedulerError):
            SchedulerConfig(ping_busy_s=0.0)


class TestEndToEnd:
    def test_ping_mode_run_completes(self):
        from repro.core import run_experiment

        from ..core.test_runner import tiny_config

        result = run_experiment(tiny_config(work_fetch="ping"))
        assert len(result.epochs) == 2
        assert result.counters["assimilations"] == 12
        assert result.counters["pings"] > 0

    def test_poke_mode_has_no_pings_counter(self):
        from repro.core import run_experiment

        from ..core.test_runner import tiny_config

        result = run_experiment(tiny_config())
        assert "pings" not in result.counters
