"""Property test: the indexed scheduler is behaviourally identical to legacy.

Satellite of the fleet-scale scheduling core: Hypothesis drives random
action sequences — work requests with random sticky sets, time advances
past deadlines, client failures, validator rejections, server-side
cancellations — through two *complete* ``Scheduler`` instances (each
with its own ``Simulator``), one on ``queue_impl="legacy"`` and one on
``"indexed"``.  After every action and at the end, the two must agree
on the grant order, the reissue/timeout counters, the queue snapshot,
and each workunit's terminal state.  This is the proof that lets the
indexed queue be the default while seed runs stay bit-identical.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boinc import Scheduler, SchedulerConfig, Workunit, WorkunitState
from repro.simulation import Simulator

NUM_WUS = 12
NUM_CLIENTS = 4
SHARD_FILES = 4
TIMEOUT_S = 50.0


def build(queue_impl: str) -> Scheduler:
    sim = Simulator()
    sched = Scheduler(
        sim,
        SchedulerConfig(
            timeout_s=TIMEOUT_S,
            max_attempts=3,
            queue_impl=queue_impl,
            backoff_base_s=10.0,
        ),
    )
    sched.add_workunits(
        [
            Workunit(
                wu_id=f"job:e0:s{i}",
                job_id="job",
                epoch=0,
                shard_index=i,
                input_files=("model", "params", f"shard-{i % SHARD_FILES}"),
                work_units=10.0,
                timeout_s=TIMEOUT_S,
                max_attempts=3,
            )
            for i in range(NUM_WUS)
        ]
    )
    return sched


# One action = (kind, client index, sticky-shard mask / payload bits).
actions = st.lists(
    st.tuples(
        st.sampled_from(
            ["request", "request", "request", "report", "invalid", "advance",
             "fail_client", "cancel"]
        ),
        st.integers(min_value=0, max_value=NUM_CLIENTS - 1),
        st.integers(min_value=0, max_value=2**SHARD_FILES - 1),
    ),
    min_size=1,
    max_size=60,
)


def apply_action(sched: Scheduler, action, in_flight: dict) -> list:
    """Run one action against one scheduler; returns the observable log."""
    kind, client_idx, bits = action
    client_id = f"c{client_idx}"
    log: list = []
    if kind == "request":
        sticky = {
            f"shard-{s}" for s in range(SHARD_FILES) if bits & (1 << s)
        }
        granted = sched.request_work(client_id, sticky, max_units=(bits % 3) + 1)
        for wu in granted:
            in_flight.setdefault(client_id, []).append(wu.wu_id)
        log.append(("granted", client_id, [wu.wu_id for wu in granted]))
    elif kind == "report":
        queue = in_flight.get(client_id, [])
        if queue:
            wu_id = queue.pop(bits % len(queue))
            accepted = sched.report_result(wu_id, client_id)
            log.append(("reported", wu_id, accepted))
            if accepted:
                wu = sched.get_workunit(wu_id)
                wu.mark_valid(sched.sim.now, result=None)
    elif kind == "invalid":
        queue = in_flight.get(client_id, [])
        if queue:
            wu_id = queue.pop(bits % len(queue))
            if sched.report_result(wu_id, client_id):
                log.append(("invalid", wu_id, sched.requeue_after_invalid(wu_id)))
    elif kind == "advance":
        # Advance far enough to fire any outstanding deadline.
        sched.sim.run(until=sched.sim.now + (TIMEOUT_S * ((bits % 2) + 1)))
        for queue in in_flight.values():
            queue.clear()  # timed-out units are no longer this client's
        log.append(("advanced", round(sched.sim.now, 6)))
    elif kind == "fail_client":
        requeued = sched.report_client_failure(client_id)
        in_flight.pop(client_id, None)
        log.append(("failed", client_id, [wu.wu_id for wu in requeued]))
    elif kind == "cancel":
        wu_id = f"job:e0:s{bits % NUM_WUS}"
        wu = sched.get_workunit(wu_id)
        if not wu.is_terminal and wu.state is not WorkunitState.VALIDATING:
            victim = sched.cancel_workunit(wu_id)
            for queue in in_flight.values():
                if wu_id in queue:
                    queue.remove(wu_id)
            log.append(("cancelled", wu_id, victim))
    return log


def observables(sched: Scheduler) -> dict:
    return {
        "queue": sched.unsent_ids(),
        "in_progress": sched.in_progress_count(),
        "terminal": sched.terminal_count(),
        "timeouts": sched.timeouts,
        "reissues": sched.reissues,
        "cancellations": sched.cancellations,
        "states": {
            wu_id: wu.state.value for wu_id, wu in sched._workunits.items()
        },
        "attempts": {
            wu_id: [(a.client_id, a.outcome) for a in wu.attempts]
            for wu_id, wu in sched._workunits.items()
        },
        "now": sched.sim.now,
    }


@settings(max_examples=200, deadline=None)
@given(actions=actions)
def test_indexed_scheduler_equivalent_to_legacy(actions):
    legacy = build("legacy")
    indexed = build("indexed")
    flight_legacy: dict = {}
    flight_indexed: dict = {}
    for action in actions:
        log_legacy = apply_action(legacy, action, flight_legacy)
        log_indexed = apply_action(indexed, action, flight_indexed)
        assert log_legacy == log_indexed, f"diverged on {action}"
        assert observables(legacy) == observables(indexed), (
            f"state diverged after {action}"
        )
