"""Sharded server-plane tests: hash partition, KV cut-over barrier,
validator routing, and the runner-level sharded path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc import (
    FileCatalog,
    ParameterValidator,
    ShardedValidatorPool,
    ShardedWorkGenerator,
    WorkGenerator,
    plane_of,
)
from repro.boinc.server_plane import PLANE_EPOCH_KEY
from repro.data import Dataset
from repro.errors import ConfigurationError
from repro.kvstore import EventualStore, StoreLatency
from repro.simulation import Simulator, Trace

NUM_SHARDS = 10


@pytest.fixture
def train_set(rng) -> Dataset:
    return Dataset(rng.normal(size=(100, 6)), rng.integers(0, 4, size=100))


def make_sharded(train_set, sim, planes=3, store=None, trace=None, replicas=1):
    catalog = FileCatalog()
    inner = WorkGenerator(
        job_id="job",
        catalog=catalog,
        train_set=train_set,
        num_shards=NUM_SHARDS,
        model_spec_json='{"kind": "mlp"}',
        timeout_s=300.0,
        rng=np.random.default_rng(0),
    )
    if store is None:
        store = EventualStore(
            sim, StoreLatency(base_s=0.01, per_byte_s=0.0), name="test-store"
        )
    gen = ShardedWorkGenerator(
        inner,
        planes=planes,
        store=store,
        sim=sim,
        trace=trace,
        plane_rngs=[np.random.default_rng(100 + p) for p in range(planes)],
    )
    return gen, store


class TestPartition:
    def test_plane_of_is_stable_and_in_range(self):
        for planes in (1, 2, 3, 7):
            for i in range(50):
                p = plane_of(f"job:e000:s{i:03d}", planes)
                assert 0 <= p < planes
                assert p == plane_of(f"job:e000:s{i:03d}", planes)

    def test_single_plane_short_circuits(self):
        assert plane_of("anything", 1) == 0

    def test_every_shard_minted_exactly_once(self, train_set, sim):
        gen, _ = make_sharded(train_set, sim, planes=3)
        wus = gen.make_epoch(0, "params:v0")
        assert len(wus) == NUM_SHARDS
        assert {wu.shard_index for wu in wus} == set(range(NUM_SHARDS))
        assert len({wu.wu_id for wu in wus}) == NUM_SHARDS

    def test_partition_actually_spreads(self, train_set, sim):
        gen, _ = make_sharded(train_set, sim, planes=3)
        planes_used = {
            gen.plane_for(f"job:e000:s{i:03d}") for i in range(NUM_SHARDS)
        }
        assert len(planes_used) > 1

    def test_replicas_of_one_subtask_share_a_plane(self, train_set, sim):
        gen, _ = make_sharded(train_set, sim, planes=3, replicas=2)
        wus = gen.make_epoch(0, "params:v0", replicas=2)
        assert len(wus) == 2 * NUM_SHARDS

    def test_bad_plane_count_rejected(self, train_set, sim):
        with pytest.raises(ConfigurationError):
            make_sharded(train_set, sim, planes=0)

    def test_rng_stream_count_enforced(self, train_set, sim):
        catalog = FileCatalog()
        inner = WorkGenerator(
            job_id="job",
            catalog=catalog,
            train_set=train_set,
            num_shards=NUM_SHARDS,
            model_spec_json="{}",
            timeout_s=300.0,
            rng=np.random.default_rng(0),
        )
        store = EventualStore(Simulator(), StoreLatency(0.01, 0.0))
        with pytest.raises(ConfigurationError):
            ShardedWorkGenerator(
                inner, planes=3, store=store, sim=sim,
                plane_rngs=[np.random.default_rng(0)],
            )


class TestCutoverBarrier:
    def test_publish_waits_for_all_plane_markers(self, train_set, sim):
        trace = Trace()
        gen, store = make_sharded(train_set, sim, planes=3, trace=trace)
        published: list[int] = []
        flat = gen.generate_epoch(
            0, "params:v0", replicas=1, publish=lambda wus: published.append(len(wus))
        )
        assert len(flat) == NUM_SHARDS
        assert published == []  # markers still in flight
        sim.run()
        assert published == [NUM_SHARDS]
        assert gen.cutovers == 1
        cutovers = [r for r in trace if r.kind == "plane.cutover"]
        assert len(cutovers) == 1
        assert cutovers[0]["planes"] == 3 and cutovers[0]["epoch"] == 0
        assert cutovers[0]["waited_s"] > 0.0

    def test_marker_keys_written_per_plane(self, train_set, sim):
        gen, store = make_sharded(train_set, sim, planes=3)
        gen.generate_epoch(0, "params:v0", replicas=1, publish=lambda wus: None)
        sim.run()
        for plane in range(3):
            assert store._data[f"{PLANE_EPOCH_KEY}:{plane}"] == 0

    def test_slow_plane_delays_cutover(self, train_set, sim):
        # A store outage window covering one plane's write must push the
        # whole cut-over past the window (delayed, never split).
        from repro.simulation.chaos import StoreFaultWindow

        trace = Trace()
        gen, store = make_sharded(train_set, sim, planes=2, trace=trace)
        store.set_fault_windows(
            (StoreFaultWindow(start_s=0.0, duration_s=5.0),)
        )
        published: list[float] = []
        gen.generate_epoch(
            0, "params:v0", replicas=1, publish=lambda wus: published.append(sim.now)
        )
        sim.run()
        assert published and published[0] >= 5.0
        (cutover,) = [r for r in trace if r.kind == "plane.cutover"]
        assert cutover["waited_s"] >= 5.0

    def test_retries_publish_without_barrier(self, train_set, sim):
        gen, store = make_sharded(train_set, sim, planes=3)
        wus = gen.make_retries(0, "params:v0", [2, 5], round_index=1)
        assert {wu.shard_index for wu in wus} == {2, 5}
        assert gen.cutovers == 0  # no barrier, no marker writes
        assert store.writes == 0


class TestValidatorPool:
    def test_routing_is_stable_and_books_aggregate(self, sim):
        pool = ShardedValidatorPool(
            [ParameterValidator(expected_size=4) for _ in range(3)]
        )
        good = np.zeros(4)
        bad = np.zeros(7)
        for i in range(12):
            wu_id = f"job:e000:s{i:03d}"
            assert pool.shard_for(wu_id) is pool.shard_for(wu_id)
            pool.validate(good if i % 2 == 0 else bad, wu_id=wu_id)
        assert pool.accepted == 6 and pool.rejected == 6
        # Each shard's private books sum to the pool totals.
        assert sum(s.accepted + s.rejected for s in pool.shards) == 12

    def test_replica_routed_like_its_logical_unit(self):
        pool = ShardedValidatorPool(
            [ParameterValidator(expected_size=4) for _ in range(3)]
        )
        assert pool.shard_for("job:e000:s001#r0") is pool.shard_for(
            "job:e000:s001#r1"
        )

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedValidatorPool([])

    def test_expected_size_passthrough(self):
        pool = ShardedValidatorPool([ParameterValidator(expected_size=9)])
        assert pool.expected_size == 9


class TestEndToEnd:
    def test_sharded_run_completes_and_is_deterministic(self):
        from repro.core import run_experiment

        from ..core.test_runner import tiny_config

        first = run_experiment(tiny_config(server_planes=2))
        second = run_experiment(tiny_config(server_planes=2))
        assert len(first.epochs) == 2
        assert first.counters["assimilations"] == 12
        assert first.counters["plane_cutovers"] == 2  # one per epoch
        assert [e.to_dict() for e in first.epochs] == [
            e.to_dict() for e in second.epochs
        ]
        assert first.counters == second.counters

    def test_single_plane_has_no_cutover_counter(self):
        from repro.core import run_experiment

        from ..core.test_runner import tiny_config

        result = run_experiment(tiny_config())
        assert "plane_cutovers" not in result.counters
