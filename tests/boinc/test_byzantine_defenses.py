"""Byzantine defense layers: collusion-aware quorum, deferred credit,
host quarantine and validator norm bounds.

These are the server-side answers to the adversary fabric
(:mod:`repro.simulation.adversary`); the attack/defense matrix in
``benchmarks/test_attack_defense.py`` exercises them end to end, while
these tests pin each mechanism in isolation.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.boinc import (
    BoincServer,
    CallbackAssimilator,
    ParameterValidator,
    Scheduler,
    SchedulerConfig,
    Workunit,
)
from repro.boinc.replication import (
    QuorumAssimilator,
    QuorumConfig,
    replica_id,
)
from repro.errors import ConfigurationError, SchedulerError
from repro.simulation import Simulator, Trace


def make_replica(logical: str, k: int, host: str, now: float = 0.0) -> Workunit:
    wu = Workunit(
        wu_id=replica_id(logical, k),
        job_id="job",
        epoch=0,
        shard_index=0,
        input_files=("m", "p", "s0"),
        work_units=10.0,
        timeout_s=100.0,
    )
    wu.mark_sent(host, now)
    wu.mark_result_received(now)
    return wu


def payload(value: float, claimed: float | None = None, size: int = 4):
    return SimpleNamespace(
        params=np.full(size, value), gradient=None, claimed_credit=claimed
    )


def make_quorum(
    config: QuorumConfig,
    reliability: dict[str, float] | None = None,
    sink: list | None = None,
):
    inner = CallbackAssimilator(
        lambda wu, p: sink.append(wu.wu_id) if sink is not None else None
    )
    quorum = QuorumAssimilator(inner, config, trace=Trace(), sim=Simulator())
    if reliability is not None:
        quorum.reliability_fn = lambda host: reliability.get(host, 1.0)
    return quorum


class TestCollusionAwareQuorum:
    CFG = QuorumConfig(replicas=3, min_quorum=2, collusion_aware=True)

    def test_degraded_cartel_loses_to_trusted_singleton(self):
        """Two bit-identical wrong answers from low-reliability hosts are
        out-scored by one honest replica from a trusted host."""
        sink: list = []
        quorum = make_quorum(
            self.CFG, {"bad1": 0.3, "bad2": 0.3, "good": 0.95}, sink
        )
        quorum.assimilate(make_replica("u", 0, "bad1"), payload(9.0), lambda: None)
        quorum.assimilate(make_replica("u", 1, "bad2"), payload(9.0), lambda: None)
        assert sink == []  # ambiguous: wait for the honest replica
        quorum.assimilate(make_replica("u", 2, "good"), payload(1.0), lambda: None)
        assert sink == ["u#r2"]
        assert quorum.quorums_reached == 1

    def test_fresh_cartel_outvotes_singleton(self):
        """Without a reliability history the cartel wins — the guard needs
        the quarantine loop to build a track record first."""
        sink: list = []
        quorum = make_quorum(self.CFG, {}, sink)
        for k, host in enumerate(("bad1", "bad2", "good")):
            value = 9.0 if host.startswith("bad") else 1.0
            quorum.assimilate(make_replica("u", k, host), payload(value), lambda: None)
        assert sink == ["u#r0"]

    def test_early_decision_when_unbeatable(self):
        """A full-reliability agreeing pair decides before the last replica
        arrives: one outstanding host cannot outweigh score 2.0."""
        sink: list = []
        quorum = make_quorum(self.CFG, None, sink)
        quorum.assimilate(make_replica("u", 0, "h1"), payload(1.0), lambda: None)
        assert sink == []
        quorum.assimilate(make_replica("u", 1, "h2"), payload(1.0), lambda: None)
        assert sink == ["u#r0"]
        assert quorum.pending_units() == 0

    def test_low_reliability_pair_waits_for_third(self):
        """An agreeing pair whose combined score (0.8) could still be
        overtaken by the one outstanding replica (weight <= 1.0) must wait."""
        sink: list = []
        quorum = make_quorum(self.CFG, {"h1": 0.4, "h2": 0.4}, sink)
        quorum.assimilate(make_replica("u", 0, "h1"), payload(1.0), lambda: None)
        quorum.assimilate(make_replica("u", 1, "h2"), payload(1.0), lambda: None)
        assert quorum.decided_units() == 0
        quorum.assimilate(make_replica("u", 2, "h3"), payload(1.0), lambda: None)
        assert quorum.decided_units() == 1
        assert sink == ["u#r0"]

    def test_all_disagree_fails_quorum(self):
        failed: list = []
        quorum = make_quorum(self.CFG, {"h1": 0.5, "h2": 0.5, "h3": 0.5})
        quorum.on_failed = lambda key, wus: failed.append((key, len(wus)))
        for k, value in enumerate((1.0, 2.0, 3.0)):
            quorum.assimilate(
                make_replica("u", k, f"h{k + 1}"), payload(value), lambda: None
            )
        assert quorum.quorums_failed == 1
        assert failed == [("u", 3)]
        assert quorum.pending_units() == 0

    def test_trust_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            QuorumConfig(trust_threshold=0.0)
        with pytest.raises(ConfigurationError):
            QuorumConfig(trust_threshold=1.5)


class TestQuorumDeferredCredit:
    def build(self, config: QuorumConfig, reliability=None):
        sim = Simulator()
        quorum = make_quorum(config, reliability)
        quorum.sim = sim
        server = BoincServer(
            sim,
            assimilator=quorum,
            validator=ParameterValidator(expected_size=4),
            scheduler_config=SchedulerConfig(timeout_s=100.0),
        )
        server.enable_quorum_credit(quorum)
        return server, quorum

    def test_winners_share_median_claim(self):
        server, _ = self.build(QuorumConfig(replicas=3, min_quorum=3))
        for k, (host, claimed) in enumerate(
            (("a", 10.0), ("b", 12.0), ("cheat", 1000.0))
        ):
            server._handle_accepted_result(
                make_replica("u", k, host), payload(1.0, claimed=claimed)
            )
        for host in ("a", "b", "cheat"):
            assert server.credit.host_total(host) == 12.0

    def test_claims_deferred_until_decision(self):
        server, _ = self.build(QuorumConfig(replicas=2, min_quorum=2))
        server._handle_accepted_result(make_replica("u", 0, "a"), payload(1.0, 7.0))
        assert server.credit.granted_total == 0.0  # stashed, not granted
        server._handle_accepted_result(make_replica("u", 1, "b"), payload(1.0, 7.0))
        assert server.credit.host_total("a") == 7.0
        assert server.credit.host_total("b") == 7.0

    def test_loser_denied(self):
        server, _ = self.build(QuorumConfig(replicas=3, min_quorum=2))
        server._handle_accepted_result(make_replica("u", 0, "liar"), payload(9.0, 10.0))
        server._handle_accepted_result(make_replica("u", 1, "a"), payload(1.0, 10.0))
        server._handle_accepted_result(make_replica("u", 2, "b"), payload(1.0, 10.0))
        assert server.credit.host_total("a") == 10.0
        assert server.credit.host_total("liar") == 0.0
        assert server.credit.hosts["liar"].results_denied == 1

    def test_late_agreeing_replica_gets_decided_amount(self):
        server, _ = self.build(QuorumConfig(replicas=3, min_quorum=2))
        server._handle_accepted_result(make_replica("u", 0, "a"), payload(1.0, 10.0))
        server._handle_accepted_result(make_replica("u", 1, "b"), payload(1.0, 14.0))
        # Decided at median 12; the straggler claims 99 but matches.
        server._handle_accepted_result(make_replica("u", 2, "late"), payload(1.0, 99.0))
        assert server.credit.host_total("late") == 12.0

    def test_late_disagreeing_replica_denied(self):
        server, _ = self.build(QuorumConfig(replicas=3, min_quorum=2))
        server._handle_accepted_result(make_replica("u", 0, "a"), payload(1.0, 10.0))
        server._handle_accepted_result(make_replica("u", 1, "b"), payload(1.0, 10.0))
        server._handle_accepted_result(make_replica("u", 2, "liar"), payload(5.0, 10.0))
        assert server.credit.host_total("liar") == 0.0
        assert server.credit.hosts["liar"].results_denied == 1

    def test_failed_quorum_denies_everyone(self):
        server, quorum = self.build(
            QuorumConfig(
                replicas=2, min_quorum=2, collusion_aware=True, trust_threshold=0.99
            ),
            reliability={"a": 0.5, "b": 0.5},
        )
        server.invalid_feedback = True
        server._handle_accepted_result(make_replica("u", 0, "a"), payload(1.0, 10.0))
        server._handle_accepted_result(make_replica("u", 1, "b"), payload(2.0, 10.0))
        assert quorum.quorums_failed == 1
        assert server.credit.host_total("a") == 0.0
        assert server.credit.hosts["a"].results_denied == 1
        assert server.credit.hosts["b"].results_denied == 1
        assert server.scheduler.client("a").invalid_results == 1


class TestQuarantine:
    def make(self, after: int) -> Scheduler:
        return Scheduler(
            Simulator(), SchedulerConfig(timeout_s=100.0, quarantine_after=after)
        )

    def test_threshold_bars_host(self):
        sched = self.make(2)
        assert sched.record_invalid_result("h") is False
        assert sched.record_invalid_result("h") is True  # newly quarantined
        assert sched.record_invalid_result("h") is False  # already barred
        assert sched.client("h").quarantined
        assert sched.hosts_quarantined == 1

    def test_quarantined_host_gets_no_work(self):
        sched = self.make(1)
        wu = Workunit(
            wu_id="w0", job_id="j", epoch=0, shard_index=0,
            input_files=("m", "p", "s0"), work_units=1.0, timeout_s=50.0,
        )
        sched.add_workunits([wu])
        sched.record_invalid_result("h")
        assert sched.request_work("h", set(), 2) == []
        granted = sched.request_work("honest", set(), 2)
        assert [w.wu_id for w in granted] == ["w0"]

    def test_sleep_hint_reason(self):
        sched = self.make(1)
        sched.record_invalid_result("h")
        granted, hint = sched.ping("h", set(), 2)
        assert granted == []
        assert hint == sched.config.ping_idle_max_s

    def test_disabled_by_default(self):
        sched = self.make(0)
        for _ in range(10):
            sched.record_invalid_result("h")
        assert not sched.client("h").quarantined
        assert sched.hosts_quarantined == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(SchedulerError):
            SchedulerConfig(quarantine_after=-1)


class TestValidatorNormBound:
    def test_norm_bound_rejects(self):
        validator = ParameterValidator(expected_size=4, max_norm=1.0)
        verdict = validator.validate(np.full(4, 10.0))
        assert not verdict.ok
        assert verdict.code == "norm_bound"
        assert validator.rejections_by_code == {"norm_bound": 1}

    def test_within_bound_accepted(self):
        validator = ParameterValidator(expected_size=4, max_norm=10.0)
        assert validator.validate(np.full(4, 0.5)).ok

    def test_no_bound_by_default(self):
        validator = ParameterValidator(expected_size=4)
        assert validator.validate(np.full(4, 1e5)).ok

    @pytest.mark.parametrize(
        "vec,code",
        [
            ("not-an-array", "decode"),
            (np.zeros((2, 2)), "shape"),
            (np.zeros(3), "size"),
            (np.array([1.0, np.nan, 0.0, 0.0]), "non_finite"),
            (np.full(4, 1e7), "bound"),
        ],
    )
    def test_reason_codes(self, vec, code):
        validator = ParameterValidator(expected_size=4)
        verdict = validator.validate(vec)
        assert not verdict.ok
        assert verdict.code == code
        assert validator.rejections_by_code == {code: 1}
