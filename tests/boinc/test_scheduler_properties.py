"""Randomized scheduler stress: invariants under arbitrary event orders.

Hypothesis drives a random interleaving of client requests, result
reports, client failures and time advances, then checks the scheduler's
conservation laws:

* a workunit is IN_PROGRESS on at most one client at a time;
* no workunit ever exceeds its attempt budget;
* every workunit is always in exactly one of: unsent queue, some client's
  assigned set, VALIDATING, or a terminal state;
* counters are consistent (reissues ≤ total failed attempts).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boinc import Scheduler, SchedulerConfig, Workunit, WorkunitState
from repro.simulation import Simulator

MAX_ATTEMPTS = 4
NUM_WUS = 6
CLIENTS = ["c0", "c1", "c2"]


def make_wus() -> list[Workunit]:
    return [
        Workunit(
            wu_id=f"wu{i}",
            job_id="j",
            epoch=0,
            shard_index=i,
            input_files=("m", "p", f"s{i}"),
            work_units=1.0,
            timeout_s=50.0,
            max_attempts=MAX_ATTEMPTS,
        )
        for i in range(NUM_WUS)
    ]


ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("request"), st.sampled_from(CLIENTS), st.integers(1, 3)),
        st.tuples(st.just("report"), st.sampled_from(CLIENTS), st.integers(0, NUM_WUS - 1)),
        st.tuples(st.just("fail"), st.sampled_from(CLIENTS), st.just(0)),
        st.tuples(st.just("advance"), st.just(""), st.integers(1, 80)),
    ),
    min_size=1,
    max_size=40,
)


def check_invariants(sched: Scheduler, wus: list[Workunit]) -> None:
    assigned_owners: dict[str, list[str]] = {}
    for client_id in CLIENTS:
        record = sched.register_client(client_id)
        for wu_id in record.assigned:
            assigned_owners.setdefault(wu_id, []).append(client_id)

    for wu in wus:
        # Attempt budget respected.
        assert wu.num_attempts <= MAX_ATTEMPTS
        owners = assigned_owners.get(wu.wu_id, [])
        if wu.state is WorkunitState.IN_PROGRESS:
            # Exactly one owner, matching the current attempt.
            assert owners == [wu.current_attempt.client_id]
        else:
            assert owners == []
        if wu.state is WorkunitState.ERROR:
            assert wu.num_attempts == MAX_ATTEMPTS

    # The unsent queue holds only UNSENT workunits, each at most once.
    queue = sched.unsent_ids()
    assert len(queue) == len(set(queue))
    assert len(queue) == sched.unsent_count()
    for wu_id in queue:
        assert sched.get_workunit(wu_id).state is WorkunitState.UNSENT

    # Incremental counters agree with a full rescan.
    assert sched.in_progress_count() == sum(
        1 for wu in wus if wu.state is WorkunitState.IN_PROGRESS
    )
    assert sched.terminal_count() == sum(1 for wu in wus if wu.is_terminal)
    assert sched.all_terminal() == all(wu.is_terminal for wu in wus)


@settings(max_examples=60, deadline=None)
@given(actions=ACTIONS)
def test_property_scheduler_invariants_hold(actions):
    sim = Simulator()
    sched = Scheduler(
        sim,
        SchedulerConfig(
            timeout_s=50.0,
            max_attempts=MAX_ATTEMPTS,
            backoff_base_s=10.0,
            one_result_per_host=False,  # plain units; replication covered elsewhere
        ),
    )
    wus = make_wus()
    sched.add_workunits(wus)

    for kind, client, arg in actions:
        if kind == "request":
            sched.request_work(client, set(), arg)
        elif kind == "report":
            sched.report_result(f"wu{arg}", client)  # may be stale; must not crash
        elif kind == "fail":
            sched.report_client_failure(client)
        elif kind == "advance":
            sim.run(until=sim.now + arg)
        check_invariants(sched, wus)

    # Drain all pending timeouts and re-check.
    sim.run()
    check_invariants(sched, wus)
    assert sched.reissues <= sched.timeouts + sum(
        sched.register_client(c).failed for c in CLIENTS
    )
