"""Validator checks and client/server integration over the simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc import (
    BoincServer,
    CallbackAssimilator,
    ClientDaemon,
    ParameterValidator,
    SchedulerConfig,
    ServerFile,
    Workunit,
)
from repro.simulation import InstanceSpec, Simulator


class TestValidator:
    @pytest.fixture
    def validator(self) -> ParameterValidator:
        return ParameterValidator(expected_size=10)

    def test_accepts_good_vector(self, validator, rng):
        assert validator.validate(rng.normal(size=10)).ok
        assert validator.accepted == 1

    def test_rejects_wrong_type(self, validator):
        res = validator.validate([1.0] * 10)
        assert not res.ok and "type" in res.reason

    def test_rejects_wrong_ndim(self, validator, rng):
        assert not validator.validate(rng.normal(size=(2, 5))).ok

    def test_rejects_wrong_size(self, validator, rng):
        assert not validator.validate(rng.normal(size=11)).ok

    def test_rejects_nan(self, validator):
        vec = np.zeros(10)
        vec[3] = np.nan
        res = validator.validate(vec)
        assert not res.ok and "finite" in res.reason

    def test_rejects_inf(self, validator):
        vec = np.zeros(10)
        vec[0] = np.inf
        assert not validator.validate(vec).ok

    def test_rejects_exploded_magnitude(self, validator):
        vec = np.zeros(10)
        vec[0] = 1e9
        res = validator.validate(vec)
        assert not res.ok and "magnitude" in res.reason
        assert validator.rejected == 1


def build_system(
    sim: Simulator,
    num_clients: int = 2,
    max_concurrent: int = 2,
    timeout_s: float = 500.0,
    executor=None,
) -> tuple[BoincServer, CallbackAssimilator, list[ClientDaemon]]:
    """Minimal BOINC system: echo executor, tiny files, fast links."""
    assimilated: list[str] = []
    assim = CallbackAssimilator(lambda wu, payload: assimilated.append(wu.wu_id))
    assim.log = assimilated  # type: ignore[attr-defined]
    server = BoincServer(
        sim,
        assimilator=assim,
        validator=ParameterValidator(expected_size=4),
        scheduler_config=SchedulerConfig(timeout_s=timeout_s, max_attempts=3),
    )
    server.catalog.publish(ServerFile("model", "spec", raw_size=100, sticky=True))
    server.catalog.publish(ServerFile("params", np.zeros(4), raw_size=100))
    for i in range(50):
        server.catalog.publish(
            ServerFile(f"shard-{i:02d}", f"data{i}", raw_size=200, sticky=True)
        )

    if executor is None:
        def executor(wu: Workunit, payloads: dict) -> tuple[np.ndarray, int]:
            return np.ones(4), 100

    spec = InstanceSpec("c", vcpus=4, clock_ghz=2.4, ram_gb=8, network_gbps=1)
    clients = []
    for i in range(num_clients):
        client = ClientDaemon(
            client_id=f"c{i}",
            sim=sim,
            spec=spec,
            scheduler=server.scheduler,
            web=server.web,
            executor=executor,
            max_concurrent=max_concurrent,
        )
        server.attach_client(client)
        clients.append(client)
    return server, assim, clients


def make_wus(
    n: int, timeout_s: float = 500.0, max_attempts: int = 5
) -> list[Workunit]:
    return [
        Workunit(
            wu_id=f"wu{i:02d}",
            job_id="job",
            epoch=0,
            shard_index=i,
            input_files=("model", "params", f"shard-{i:02d}"),
            work_units=10.0,
            timeout_s=timeout_s,
            max_attempts=max_attempts,
        )
        for i in range(n)
    ]


class TestEndToEnd:
    def test_all_workunits_complete_and_assimilate(self, sim):
        server, assim, _ = build_system(sim)
        server.publish_workunits(make_wus(8))
        sim.run()
        assert server.scheduler.all_terminal()
        assert assim.count == 8
        assert sorted(assim.log) == [f"wu{i:02d}" for i in range(8)]

    def test_concurrency_respects_tn(self, sim):
        server, _, clients = build_system(sim, num_clients=1, max_concurrent=3)
        server.publish_workunits(make_wus(10))
        max_active = 0

        def watch() -> None:
            nonlocal max_active
            max_active = max(max_active, clients[0].resource.active_count)
            sim.schedule(0.5, watch)

        sim.schedule(0.0, watch)
        sim.run(max_events=100_000, until=10_000)
        assert 0 < max_active <= 3

    def test_invalid_results_are_retried(self, sim):
        calls = {"n": 0}

        def flaky_executor(wu: Workunit, payloads: dict) -> tuple[np.ndarray, int]:
            calls["n"] += 1
            if calls["n"] == 1:
                return np.full(4, np.nan), 100  # first result invalid
            return np.ones(4), 100

        server, assim, _ = build_system(sim, num_clients=1, executor=flaky_executor)
        server.publish_workunits(make_wus(1))
        sim.run()
        assert assim.count == 1
        assert server.validator.rejected == 1
        assert server.scheduler.get_workunit("wu00").num_attempts == 2

    def test_client_termination_recovers_via_reissue(self, sim):
        server, assim, clients = build_system(sim, num_clients=2, max_concurrent=1)
        server.publish_workunits(make_wus(4))
        # Kill client 0 shortly after it starts working.
        sim.schedule(1.0, clients[0].terminate)
        sim.run()
        assert server.scheduler.all_terminal()
        assert assim.count == 4  # survivor finished everything
        assert clients[1].subtasks_completed >= 3

    def test_all_clients_dead_leaves_work_unsent(self, sim):
        server, assim, clients = build_system(sim, num_clients=1)
        server.publish_workunits(make_wus(3))
        sim.schedule(0.5, clients[0].terminate)
        sim.run()
        assert assim.count < 3
        assert server.scheduler.unsent_count() > 0

    def test_timeout_abort_and_reliability_probation(self, sim):
        """A pathologically slow client repeatedly times out, its
        reliability decays onto probation, and the fast client eventually
        completes every unit — fault tolerance + reliability end to end."""
        server, assim, clients = build_system(
            sim, num_clients=2, max_concurrent=1, timeout_s=30.0
        )
        # Make client 0 pathologically slow by shrinking its core rate.
        clients[0].resource.spec = InstanceSpec(
            "slow", vcpus=4, clock_ghz=0.024, ram_gb=8, network_gbps=1
        )
        server.publish_workunits(make_wus(2, timeout_s=30.0, max_attempts=12))
        sim.run()
        assert server.scheduler.timeouts >= 1
        assert clients[0].subtasks_aborted >= 1
        assert assim.count == 2
        # The slow client's failure lowered its reliability and put it in
        # work-fetch backoff, which is what let the fast client recover.
        record = server.scheduler.client("c0")
        assert record.reliability < 1.0
        assert record.consecutive_failures >= 1

    def test_sticky_cache_reused_across_epochs(self, sim):
        server, _, clients = build_system(sim, num_clients=1)
        server.publish_workunits(make_wus(4))
        sim.run()
        bytes_after_first = server.web.bytes_down
        # Same shards again (epoch 2): shard files should be cache hits.
        second = [
            Workunit(
                wu_id=f"e2-wu{i:02d}",
                job_id="job",
                epoch=1,
                shard_index=i,
                input_files=("model", "params", f"shard-{i:02d}"),
                work_units=10.0,
                timeout_s=500.0,
            )
            for i in range(4)
        ]
        server.publish_workunits(second)
        sim.run()
        delta = server.web.bytes_down - bytes_after_first
        # Only the params file (100 B x 4) should transfer, not shards/model.
        assert delta == 400
        assert clients[0].cache.hits >= 4
