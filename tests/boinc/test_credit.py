"""Credit ledger tests (the VC incentive mechanism)."""

from __future__ import annotations

import pytest

from repro.boinc.credit import CreditClaim, CreditLedger
from repro.errors import ConfigurationError


def claim(host: str, amount: float, wu: str = "wu0") -> CreditClaim:
    return CreditClaim(host_id=host, wu_id=wu, claimed=amount)


class TestValidation:
    def test_negative_claim(self):
        with pytest.raises(ConfigurationError):
            claim("h1", -1.0)

    def test_bad_half_life(self):
        with pytest.raises(ConfigurationError):
            CreditLedger(half_life_s=0)

    def test_empty_quorum(self):
        with pytest.raises(ConfigurationError):
            CreditLedger().grant_quorum([], now=0.0)


class TestGranting:
    def test_single_grant(self):
        ledger = CreditLedger()
        granted = ledger.grant_single(claim("h1", 144.0), now=0.0)
        assert granted == 144.0
        assert ledger.host_total("h1") == 144.0
        assert ledger.granted_total == 144.0

    def test_quorum_grants_median(self):
        """An inflated claim does not raise anyone's grant."""
        ledger = CreditLedger()
        grant = ledger.grant_quorum(
            [claim("honest1", 100.0), claim("honest2", 102.0), claim("cheat", 10000.0)],
            now=0.0,
        )
        assert grant == 102.0
        assert ledger.host_total("cheat") == 102.0
        assert ledger.host_total("honest1") == 102.0

    def test_quorum_members_all_credited(self):
        ledger = CreditLedger()
        ledger.grant_quorum([claim("a", 50.0), claim("b", 50.0)], now=0.0)
        assert ledger.host_total("a") == ledger.host_total("b") == 50.0
        assert ledger.granted_total == 100.0

    def test_denied_results_earn_nothing(self):
        ledger = CreditLedger()
        ledger.deny("flaky", now=0.0)
        assert ledger.host_total("flaky") == 0.0
        assert ledger.hosts["flaky"].results_denied == 1


class TestClaimCap:
    def warm(self, ledger: CreditLedger, quorums: int = 3) -> None:
        """Fill the recent-claim window with honest 100.0 claims."""
        for i in range(quorums):
            ledger.grant_quorum(
                [claim("w1", 100.0, f"warm{i}"), claim("w2", 100.0, f"warm{i}")],
                now=0.0,
            )

    def test_two_claim_midpoint_is_capped(self):
        ledger = CreditLedger()
        self.warm(ledger)  # 6 honest claims in the window
        grant = ledger.grant_quorum(
            [claim("honest", 100.0), claim("cheat", 10000.0)], now=0.0
        )
        # Median of 2 claims is the 5050.0 midpoint; the cap holds it at
        # 2x the recent-claim median instead.
        assert grant == 200.0
        assert ledger.claims_capped == 1
        assert ledger.host_total("cheat") == 200.0

    def test_cap_inactive_before_window_fills(self):
        ledger = CreditLedger()
        grant = ledger.grant_quorum(
            [claim("honest", 100.0), claim("cheat", 10000.0)], now=0.0
        )
        assert grant == 5050.0  # cold start: plain midpoint
        assert ledger.claims_capped == 0

    def test_honest_equal_claims_never_capped(self):
        ledger = CreditLedger()
        self.warm(ledger, quorums=10)
        grant = ledger.grant_quorum(
            [claim("a", 100.0), claim("b", 100.0)], now=0.0
        )
        assert grant == 100.0
        assert ledger.claims_capped == 0

    def test_three_claim_median_untouched(self):
        ledger = CreditLedger()
        self.warm(ledger)
        grant = ledger.grant_quorum(
            [claim("a", 100.0), claim("b", 102.0), claim("cheat", 10000.0)],
            now=0.0,
        )
        assert grant == 102.0
        assert ledger.claims_capped == 0

    def test_cap_disabled_restores_midpoint(self):
        ledger = CreditLedger(claim_cap_factor=None)
        self.warm(ledger, quorums=10)
        grant = ledger.grant_quorum(
            [claim("honest", 100.0), claim("cheat", 10000.0)], now=0.0
        )
        assert grant == 5050.0

    def test_bad_cap_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            CreditLedger(claim_cap_factor=0.5)


class TestRecentAverage:
    def test_decays_with_half_life(self):
        ledger = CreditLedger(half_life_s=100.0)
        ledger.grant_single(claim("h1", 80.0), now=0.0)
        board = ledger.leaderboard(now=100.0)  # one half-life later
        assert board[0].recent_average == pytest.approx(40.0)
        assert board[0].total == 80.0  # total never decays

    def test_fresh_grants_add_after_decay(self):
        ledger = CreditLedger(half_life_s=100.0)
        ledger.grant_single(claim("h1", 80.0), now=0.0)
        ledger.grant_single(claim("h1", 10.0), now=100.0)
        assert ledger.host_total("h1") == 90.0
        assert ledger.hosts["h1"].recent_average == pytest.approx(50.0)


class TestLeaderboard:
    def test_sorted_by_total(self):
        ledger = CreditLedger()
        ledger.grant_single(claim("small", 10.0), now=0.0)
        ledger.grant_single(claim("big", 99.0), now=0.0)
        board = ledger.leaderboard()
        assert [h.host_id for h in board] == ["big", "small"]

    def test_tie_breaks_by_id(self):
        ledger = CreditLedger()
        ledger.grant_single(claim("b", 10.0), now=0.0)
        ledger.grant_single(claim("a", 10.0), now=0.0)
        assert [h.host_id for h in ledger.leaderboard()] == ["a", "b"]
