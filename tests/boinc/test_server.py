"""BoincServer composition tests: result routing, credit, invalid paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc import (
    BoincServer,
    CallbackAssimilator,
    ClientDaemon,
    CreditLedger,
    ParameterValidator,
    SchedulerConfig,
    ServerFile,
    Workunit,
    WorkunitState,
)
from repro.simulation import InstanceSpec, Simulator


def build(sim: Simulator, executor=None, ledger=None):
    assim = CallbackAssimilator(lambda wu, payload: None)
    server = BoincServer(
        sim,
        assimilator=assim,
        validator=ParameterValidator(expected_size=4),
        scheduler_config=SchedulerConfig(timeout_s=400.0, backoff_base_s=0.0),
        credit_ledger=ledger,
    )
    server.catalog.publish(ServerFile("model", "spec", raw_size=10, sticky=True))
    server.catalog.publish(ServerFile("params", np.zeros(4), raw_size=10))
    server.catalog.publish(ServerFile("shard-00", "d", raw_size=10, sticky=True))
    if executor is None:
        executor = lambda wu, payloads: (np.ones(4), 10)
    spec = InstanceSpec("c", vcpus=4, clock_ghz=2.4, ram_gb=8, network_gbps=1)
    client = ClientDaemon(
        client_id="c0",
        sim=sim,
        spec=spec,
        scheduler=server.scheduler,
        web=server.web,
        executor=executor,
        max_concurrent=2,
    )
    server.attach_client(client)
    return server, assim, client


def make_wu(wu_id: str = "wu00", work: float = 5.0) -> Workunit:
    return Workunit(
        wu_id=wu_id,
        job_id="job",
        epoch=0,
        shard_index=0,
        input_files=("model", "params", "shard-00"),
        work_units=work,
        timeout_s=400.0,
    )


class TestResultPath:
    def test_valid_result_assimilated_and_credited(self, sim):
        ledger = CreditLedger()
        server, assim, _ = build(sim, ledger=ledger)
        server.publish_workunits([make_wu(work=7.0)])
        sim.run()
        assert assim.count == 1
        assert ledger.host_total("c0") == pytest.approx(7.0)
        assert server.scheduler.get_workunit("wu00").state is WorkunitState.DONE

    def test_default_ledger_created(self, sim):
        server, _, _ = build(sim)
        assert isinstance(server.credit, CreditLedger)

    def test_invalid_result_denied_and_requeued(self, sim):
        calls = {"n": 0}

        def executor(wu, payloads):
            calls["n"] += 1
            if calls["n"] == 1:
                return np.full(4, np.inf), 10
            return np.ones(4), 10

        ledger = CreditLedger()
        server, assim, _ = build(sim, executor=executor, ledger=ledger)
        server.publish_workunits([make_wu()])
        sim.run()
        assert assim.count == 1
        assert server.validator.rejected == 1
        host = ledger.hosts["c0"]
        assert host.results_denied == 1
        assert host.results_granted == 1

    def test_on_assimilated_hook_fires(self, sim):
        server, _, _ = build(sim)
        seen: list[str] = []
        server.on_assimilated = lambda wu: seen.append(wu.wu_id)
        server.publish_workunits([make_wu()])
        sim.run()
        assert seen == ["wu00"]

    def test_trace_records_assimilation(self, sim):
        server, _, _ = build(sim)
        server.publish_workunits([make_wu()])
        sim.run()
        assert server.trace.count("server.assimilated") == 1


class TestFleetCoordination:
    def test_publish_pokes_clients(self, sim):
        server, assim, client = build(sim)
        server.publish_workunits([make_wu("a"), make_wu("b")])
        # Both slots of the single client were filled synchronously.
        assert client.free_slots == 0
        sim.run()
        assert assim.count == 2

    def test_poke_skips_dead_clients(self, sim):
        server, assim, client = build(sim)
        client.terminate()
        server.publish_workunits([make_wu()])
        sim.run()
        assert assim.count == 0
        assert server.scheduler.unsent_count() == 1

    def test_timeout_notifies_client_abort(self, sim):
        # A slow executor never finishes before the deadline.
        server, assim, client = build(sim)
        wu = make_wu(work=10_000.0)
        wu = Workunit(
            wu_id="slow",
            job_id="job",
            epoch=0,
            shard_index=0,
            input_files=("model", "params", "shard-00"),
            work_units=10_000.0,
            timeout_s=50.0,
            max_attempts=1,
        )
        server.publish_workunits([wu])
        sim.run()
        assert client.subtasks_aborted == 1
        assert wu.state is WorkunitState.ERROR
