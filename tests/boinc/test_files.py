"""File catalogue, sticky cache, and web-server transfer tests."""

from __future__ import annotations

import pytest

from repro.boinc import FileCatalog, ServerFile, StickyCache, WebServer
from repro.errors import ConfigurationError, SchedulerError
from repro.simulation import NetworkLink


@pytest.fixture
def link() -> NetworkLink:
    # 1000 B/s, zero latency: transfer time == bytes / 1000.
    return NetworkLink(latency_s=0.0, bandwidth_bps=1000.0)


@pytest.fixture
def catalog() -> FileCatalog:
    cat = FileCatalog()
    cat.publish(
        ServerFile("model", payload="spec", raw_size=3000, compressed_size=1000, sticky=True)
    )
    cat.publish(
        ServerFile("params", payload=b"p", raw_size=2000, compressed_size=1800, sticky=False)
    )
    return cat


class TestServerFile:
    def test_wire_size_with_compression(self):
        f = ServerFile("a", None, raw_size=100, compressed_size=40)
        assert f.wire_size(compression_enabled=True) == 40
        assert f.wire_size(compression_enabled=False) == 100

    def test_incompressible_file(self):
        f = ServerFile("a", None, raw_size=100, compressed_size=40, compressible=False)
        assert f.wire_size(compression_enabled=True) == 100

    def test_default_compressed_size(self):
        f = ServerFile("a", None, raw_size=100)
        assert f.compressed_size == 100

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerFile("a", None, raw_size=-1)


class TestCatalog:
    def test_publish_and_get(self, catalog):
        assert catalog.get("model").payload == "spec"
        assert "model" in catalog
        assert catalog.names() == ["model", "params"]

    def test_republish_replaces(self, catalog):
        catalog.publish(ServerFile("params", payload=b"new", raw_size=10))
        assert catalog.get("params").payload == b"new"

    def test_missing_raises(self, catalog):
        with pytest.raises(SchedulerError):
            catalog.get("ghost")


class TestStickyCache:
    def test_add_and_hit(self):
        cache = StickyCache(capacity_bytes=100)
        cache.add("a", 40)
        assert cache.has("a")
        assert cache.used_bytes == 40

    def test_lru_eviction(self):
        cache = StickyCache(capacity_bytes=100)
        cache.add("a", 50)
        cache.add("b", 50)
        cache.touch("a")  # 'b' becomes least recent
        cache.add("c", 50)
        assert cache.has("a") and cache.has("c") and not cache.has("b")

    def test_re_add_refreshes_not_duplicates(self):
        cache = StickyCache(capacity_bytes=100)
        cache.add("a", 40)
        cache.add("a", 40)
        assert cache.used_bytes == 40

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            StickyCache(capacity_bytes=0)


class TestWebServer:
    def test_download_time_sums_uncached_files(self, sim, catalog, link):
        web = WebServer(sim, catalog, compression_enabled=True)
        cache = StickyCache(1e6)
        done: list[float] = []
        web.download(["model", "params"], link, cache, lambda p: done.append(sim.now))
        sim.run()
        # model 1000 B + params 1800 B at 1000 B/s = 2.8 s.
        assert done == pytest.approx([2.8])
        assert web.bytes_down == 2800

    def test_sticky_cached_file_is_free(self, sim, catalog, link):
        web = WebServer(sim, catalog, compression_enabled=True)
        cache = StickyCache(1e6)
        web.download(["model"], link, cache, lambda p: None)
        sim.run()
        start = sim.now
        done: list[float] = []
        web.download(["model"], link, cache, lambda p: done.append(sim.now))
        sim.run()
        assert done == [start]  # zero transfer time
        assert cache.hits == 1

    def test_non_sticky_always_transfers(self, sim, catalog, link):
        web = WebServer(sim, catalog, compression_enabled=True)
        cache = StickyCache(1e6)
        for _ in range(2):
            web.download(["params"], link, cache, lambda p: None)
            sim.run()
        assert web.bytes_down == 3600
        assert not cache.has("params")

    def test_compression_disabled_charges_raw(self, sim, catalog, link):
        web = WebServer(sim, catalog, compression_enabled=False)
        done: list[float] = []
        web.download(["model"], link, None, lambda p: done.append(sim.now))
        sim.run()
        assert done == pytest.approx([3.0])  # 3000 raw bytes

    def test_payloads_delivered(self, sim, catalog, link):
        web = WebServer(sim, catalog, compression_enabled=True)
        got: dict = {}
        web.download(["model", "params"], link, None, got.update)
        sim.run()
        assert got == {"model": "spec", "params": b"p"}

    def test_upload_duration_and_accounting(self, sim, catalog, link):
        web = WebServer(sim, catalog, compression_enabled=True)
        done: list[float] = []
        web.upload(500, link, lambda: done.append(sim.now))
        sim.run()
        assert done == pytest.approx([0.5])
        assert web.bytes_up == 500

    def test_trace_emission(self, sim, catalog, link, trace):
        web = WebServer(sim, catalog, compression_enabled=True, trace=trace)
        web.download(["model"], link, None, lambda p: None)
        web.upload(100, link, lambda: None)
        sim.run()
        assert trace.count("web.download") == 1
        assert trace.count("web.upload") == 1
