"""Scheduler policy tests: assignment, timeouts, affinity, reliability."""

from __future__ import annotations

import pytest

from repro.boinc import Scheduler, SchedulerConfig, Workunit, WorkunitState
from repro.errors import SchedulerError
from repro.simulation import Simulator


def make_wus(n: int, timeout_s: float = 100.0, max_attempts: int = 3) -> list[Workunit]:
    return [
        Workunit(
            wu_id=f"wu{i:02d}",
            job_id="job",
            epoch=0,
            shard_index=i,
            input_files=("model", "params", f"shard-{i:02d}"),
            work_units=10.0,
            timeout_s=timeout_s,
            max_attempts=max_attempts,
        )
        for i in range(n)
    ]


@pytest.fixture
def sched(sim) -> Scheduler:
    return Scheduler(sim, SchedulerConfig(timeout_s=100.0))


class TestAssignment:
    def test_grants_up_to_max_units(self, sched):
        sched.add_workunits(make_wus(5))
        granted = sched.request_work("c1", set(), max_units=3)
        assert len(granted) == 3
        assert sched.unsent_count() == 2
        assert all(wu.state is WorkunitState.IN_PROGRESS for wu in granted)

    def test_empty_queue_grants_nothing(self, sched):
        assert sched.request_work("c1", set(), 4) == []

    def test_zero_units_request(self, sched):
        sched.add_workunits(make_wus(2))
        assert sched.request_work("c1", set(), 0) == []

    def test_duplicate_wu_id_rejected(self, sched):
        wus = make_wus(1)
        sched.add_workunits(wus)
        with pytest.raises(SchedulerError):
            sched.add_workunits(make_wus(1))

    def test_unknown_workunit_lookup(self, sched):
        with pytest.raises(SchedulerError):
            sched.get_workunit("nope")

    def test_unknown_client_lookup(self, sched):
        with pytest.raises(SchedulerError):
            sched.client("ghost")


class TestAffinity:
    def test_prefers_cached_shard(self, sched):
        sched.add_workunits(make_wus(5))
        granted = sched.request_work("c1", {"shard-03"}, 1)
        assert granted[0].shard_file() == "shard-03"

    def test_falls_back_to_fifo(self, sched):
        sched.add_workunits(make_wus(3))
        granted = sched.request_work("c1", {"shard-99"}, 1)
        assert granted[0].wu_id == "wu00"

    def test_affinity_disabled(self, sim):
        sched = Scheduler(sim, SchedulerConfig(affinity_enabled=False))
        sched.add_workunits(make_wus(5))
        granted = sched.request_work("c1", {"shard-03"}, 1)
        assert granted[0].wu_id == "wu00"


class TestTimeouts:
    def test_timeout_requeues_and_counts(self, sim, sched):
        sched.add_workunits(make_wus(1))
        sched.request_work("c1", set(), 1)
        sim.run()
        assert sched.timeouts == 1
        assert sched.unsent_count() == 1  # requeued
        assert sched.get_workunit("wu00").state is WorkunitState.UNSENT

    def test_timeout_notifies_hook(self, sim, sched):
        fired: list[tuple[str, str]] = []
        sched.on_timeout = lambda wu, client: fired.append((wu, client))
        sched.add_workunits(make_wus(1))
        sched.request_work("c1", set(), 1)
        sim.run()
        assert fired == [("wu00", "c1")]

    def test_result_before_deadline_cancels_timeout(self, sim, sched):
        sched.add_workunits(make_wus(1))
        sched.request_work("c1", set(), 1)
        sim.schedule(50.0, lambda: sched.report_result("wu00", "c1"))
        sim.run()
        assert sched.timeouts == 0
        assert sched.get_workunit("wu00").state is WorkunitState.VALIDATING

    def test_late_result_is_stale(self, sim, sched):
        """Result arriving after the timeout is discarded, as BOINC does
        once the unit is reassigned."""
        sched.add_workunits(make_wus(1))
        sched.request_work("c1", set(), 1)
        accepted: list[bool] = []
        sim.schedule(150.0, lambda: accepted.append(sched.report_result("wu00", "c1")))
        sim.run()
        assert accepted == [False]
        assert sched.timeouts == 1

    def test_exhausted_attempts_error_state(self, sim):
        sched = Scheduler(
            sim,
            SchedulerConfig(
                timeout_s=10.0, reliability_enabled=False, backoff_base_s=0.0
            ),
        )
        sched.add_workunits(make_wus(1, timeout_s=10.0, max_attempts=2))
        sched.request_work("c1", set(), 1)
        sim.run()  # first timeout, requeued
        sched.request_work("c1", set(), 1)
        sim.run()  # second timeout, budget gone
        assert sched.get_workunit("wu00").state is WorkunitState.ERROR

    def test_result_for_other_clients_attempt_is_stale(self, sim, sched):
        """After timeout and reissue to c2, a (late) c1 upload is stale even
        though the unit is IN_PROGRESS again."""
        sched.add_workunits(make_wus(1))
        sched.request_work("c1", set(), 1)
        sim.run()  # c1 times out, requeued
        sched.request_work("c2", set(), 1)
        assert sched.report_result("wu00", "c1") is False
        assert sched.report_result("wu00", "c2") is True


class TestClientFailure:
    def test_failure_requeues_all_inflight(self, sim, sched):
        sched.add_workunits(make_wus(3))
        sched.request_work("c1", set(), 3)
        requeued = sched.report_client_failure("c1")
        assert len(requeued) == 3
        assert sched.unsent_count() == 3
        assert sched.client("c1").assigned == set()

    def test_failure_cancels_timeout_events(self, sim, sched):
        sched.add_workunits(make_wus(1))
        sched.request_work("c1", set(), 1)
        sched.report_client_failure("c1")
        sim.run()
        assert sched.timeouts == 0  # timeout event was cancelled
        assert sched.reissues == 1


class TestReliability:
    def test_success_keeps_reliability_high(self, sim, sched):
        sched.add_workunits(make_wus(2))
        sched.request_work("c1", set(), 1)
        sched.report_result("wu00", "c1")
        assert sched.client("c1").reliability > 0.9

    def test_failures_decay_reliability(self, sim):
        sched = Scheduler(
            sim, SchedulerConfig(timeout_s=100.0, backoff_base_s=0.0)
        )
        sched.add_workunits(make_wus(6))
        for _ in range(6):
            granted = sched.request_work("c1", set(), 1)
            if granted:
                sched.report_client_failure("c1")
        assert sched.client("c1").reliability < 0.3

    def test_backoff_blocks_after_failure(self, sim, sched):
        sched.add_workunits(make_wus(3))
        sched.request_work("c1", set(), 1)
        sched.report_client_failure("c1")
        # Immediately after a failure the client is in backoff.
        assert sched.request_work("c1", set(), 1) == []
        assert sched.client("c1").backoff_until > sim.now

    def test_backoff_doubles_and_resets(self, sim, sched):
        record = sched.register_client("c1")
        sched.add_workunits(make_wus(4))
        sched.request_work("c1", set(), 1)
        sched.report_client_failure("c1")
        first = record.backoff_until - sim.now
        record.backoff_until = 0.0  # simulate time passing
        sched.request_work("c1", set(), 1)
        sched.report_client_failure("c1")
        second = record.backoff_until - sim.now
        assert second == pytest.approx(2 * first)
        # Success clears the backoff ladder.
        record.backoff_until = 0.0
        sched.request_work("c1", set(), 1)
        granted = sched.client("c1").assigned
        assert granted
        sched.report_result(next(iter(granted)), "c1")
        assert record.consecutive_failures == 0
        assert record.backoff_until == 0.0

    def test_probation_limits_grants(self, sim):
        sched = Scheduler(sim, SchedulerConfig(timeout_s=100.0))
        sched.add_workunits(make_wus(10))
        record = sched.register_client("flaky")
        record.reliability = 0.1  # below probation threshold
        granted = sched.request_work("flaky", set(), 4)
        assert len(granted) == 1  # probation: one at a time
        granted2 = sched.request_work("flaky", set(), 4)
        assert granted2 == []  # still holding one

    def test_reliability_disabled_no_probation(self, sim):
        sched = Scheduler(
            sim, SchedulerConfig(timeout_s=100.0, reliability_enabled=False)
        )
        sched.add_workunits(make_wus(10))
        record = sched.register_client("flaky")
        record.reliability = 0.0
        assert len(sched.request_work("flaky", set(), 4)) == 4


class TestProgressTracking:
    def test_counts(self, sim, sched):
        sched.add_workunits(make_wus(4))
        sched.request_work("c1", set(), 2)
        assert sched.in_progress_count() == 2
        assert sched.terminal_count() == 0
        assert not sched.all_terminal()
