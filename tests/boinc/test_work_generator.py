"""Work-generator tests: shard publication and epoch minting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc import FileCatalog, WorkGenerator
from repro.data import Dataset
from repro.errors import ConfigurationError


@pytest.fixture
def train_set(rng) -> Dataset:
    return Dataset(rng.normal(size=(100, 6)), rng.integers(0, 4, size=100))


def make_generator(train_set, **kwargs) -> tuple[WorkGenerator, FileCatalog]:
    catalog = FileCatalog()
    defaults = dict(
        job_id="job",
        catalog=catalog,
        train_set=train_set,
        num_shards=10,
        model_spec_json='{"kind": "mlp"}',
        timeout_s=300.0,
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return WorkGenerator(**defaults), catalog


class TestStaticPublication:
    def test_model_file_published_sticky(self, train_set):
        gen, catalog = make_generator(train_set)
        model_file = catalog.get(gen.model_file_name)
        assert model_file.sticky
        assert model_file.payload == '{"kind": "mlp"}'

    def test_all_shards_published(self, train_set):
        gen, catalog = make_generator(train_set)
        for i in range(10):
            name = gen.shard_file_name(i)
            assert name in catalog
            assert catalog.get(name).sticky

    def test_shard_payloads_are_datasets(self, train_set):
        gen, catalog = make_generator(train_set)
        shard = catalog.get(gen.shard_file_name(0)).payload
        assert isinstance(shard, Dataset)
        assert len(shard) == 10

    def test_shard_sizes_cover_train_set(self, train_set):
        gen, _ = make_generator(train_set)
        assert sum(len(s) for s in gen.shards) == len(train_set)

    def test_compressed_size_below_raw(self, train_set):
        gen, catalog = make_generator(train_set)
        f = catalog.get(gen.shard_file_name(0))
        assert 0 < f.compressed_size <= f.raw_size

    def test_invalid_config(self, train_set):
        with pytest.raises(ConfigurationError):
            make_generator(train_set, num_shards=0)
        with pytest.raises(ConfigurationError):
            make_generator(train_set, work_units_per_subtask=0.0)


class TestEpochMinting:
    def test_one_workunit_per_shard(self, train_set):
        gen, _ = make_generator(train_set)
        wus = gen.make_epoch(0, "params")
        assert len(wus) == 10
        assert {wu.shard_index for wu in wus} == set(range(10))

    def test_input_files_reference_params_and_shard(self, train_set):
        gen, _ = make_generator(train_set)
        wu = gen.make_epoch(3, "params-v7")[4]
        assert wu.input_files == (
            gen.model_file_name,
            "params-v7",
            gen.shard_file_name(4),
        )
        assert wu.epoch == 3

    def test_ids_unique_across_epochs(self, train_set):
        gen, _ = make_generator(train_set)
        ids = {wu.wu_id for wu in gen.make_epoch(0, "p")}
        ids |= {wu.wu_id for wu in gen.make_epoch(1, "p")}
        assert len(ids) == 20

    def test_work_jitter_varies_cost(self, train_set):
        gen, _ = make_generator(train_set, work_jitter=0.2)
        costs = [wu.work_units for wu in gen.make_epoch(0, "p")]
        assert len(set(costs)) > 1

    def test_zero_jitter_uniform_cost(self, train_set):
        gen, _ = make_generator(train_set, work_jitter=0.0)
        costs = {wu.work_units for wu in gen.make_epoch(0, "p")}
        assert costs == {144.0}

    def test_negative_epoch_rejected(self, train_set):
        gen, _ = make_generator(train_set)
        with pytest.raises(ConfigurationError):
            gen.make_epoch(-1, "p")

    def test_replicas_mint_suffixed_ids(self, train_set):
        gen, _ = make_generator(train_set, num_shards=4)
        wus = gen.make_epoch(0, "p", replicas=3)
        assert len(wus) == 12
        ids = [wu.wu_id for wu in wus]
        assert "job:e000:s000#r0" in ids and "job:e000:s000#r2" in ids
        # Replicas of one shard share the compute cost (same jitter draw).
        costs = {wu.work_units for wu in wus if wu.shard_index == 0}
        assert len(costs) == 1

    def test_single_replica_keeps_plain_ids(self, train_set):
        gen, _ = make_generator(train_set)
        assert gen.make_epoch(0, "p", replicas=1)[0].wu_id == "job:e000:s000"

    def test_invalid_replicas(self, train_set):
        gen, _ = make_generator(train_set)
        with pytest.raises(ConfigurationError):
            gen.make_epoch(0, "p", replicas=0)
