"""Scheduler edge cases: cancellation of unsent work, retry-budget
exhaustion after invalid results, and stale heartbeats racing timeouts."""

from __future__ import annotations

import pytest

from repro.boinc import Scheduler, SchedulerConfig, Workunit, WorkunitState
from repro.simulation import Simulator


def make_wus(n: int, timeout_s: float = 100.0, max_attempts: int = 3) -> list[Workunit]:
    return [
        Workunit(
            wu_id=f"wu{i:02d}",
            job_id="job",
            epoch=0,
            shard_index=i,
            input_files=("model", "params", f"shard-{i:02d}"),
            work_units=10.0,
            timeout_s=timeout_s,
            max_attempts=max_attempts,
        )
        for i in range(n)
    ]


class TestCancelUnsent:
    def test_cancel_unsent_unit(self, sim):
        sched = Scheduler(sim, SchedulerConfig())
        wus = make_wus(3)
        sched.add_workunits(wus)
        assert sched.cancel_workunit("wu01") is None  # nobody was computing it
        assert wus[1].state is WorkunitState.CANCELLED
        assert sched.unsent_count() == 2
        assert sched.cancellations == 1

    def test_cancelled_unit_never_granted(self, sim):
        sched = Scheduler(sim, SchedulerConfig())
        sched.add_workunits(make_wus(2))
        sched.cancel_workunit("wu00")
        granted = sched.request_work("c1", set(), 5)
        assert [wu.wu_id for wu in granted] == ["wu01"]

    def test_cancel_terminal_unit_is_noop(self, sim):
        sched = Scheduler(sim, SchedulerConfig())
        sched.add_workunits(make_wus(1))
        sched.cancel_workunit("wu00")
        before = sched.cancellations
        assert sched.cancel_workunit("wu00") is None
        assert sched.cancellations == before  # not double-counted

    def test_cancel_in_progress_returns_client(self, sim):
        sched = Scheduler(sim, SchedulerConfig())
        sched.add_workunits(make_wus(1))
        sched.request_work("c1", set(), 1)
        assert sched.cancel_workunit("wu00") == "c1"
        assert "wu00" not in sched.client("c1").assigned

    def test_cancel_unsent_missing_from_queue_raises(self, sim):
        # An UNSENT workunit absent from the ready queue is corrupted
        # scheduler state; the old code swallowed the ValueError from
        # list.remove and carried on with inconsistent books.
        from repro.errors import SchedulerError

        sched = Scheduler(sim, SchedulerConfig())
        sched.add_workunits(make_wus(1))
        sched._ready.remove("wu00")  # corrupt the books
        with pytest.raises(SchedulerError, match="inconsistent"):
            sched.cancel_workunit("wu00")


class TestInvalidRetryBudget:
    def _fail_once(self, sim, sched, wu, client="c1"):
        granted = sched.request_work(client, set(), 1)
        assert granted and granted[0].wu_id == wu.wu_id
        assert sched.report_result(wu.wu_id, client)
        return sched.requeue_after_invalid(wu.wu_id)

    def test_requeues_while_budget_remains(self, sim):
        sched = Scheduler(sim, SchedulerConfig())
        (wu,) = make_wus(1, max_attempts=3)
        sched.add_workunits([wu])
        assert self._fail_once(sim, sched, wu) is True
        assert wu.state is WorkunitState.UNSENT
        assert sched.unsent_count() == 1
        assert sched.reissues == 1

    def test_exhaustion_lands_in_error(self, sim):
        sched = Scheduler(
            sim, SchedulerConfig(reliability_enabled=False, backoff_base_s=0.0)
        )
        (wu,) = make_wus(1, max_attempts=2)
        sched.add_workunits([wu])
        assert self._fail_once(sim, sched, wu) is True
        assert self._fail_once(sim, sched, wu) is False  # budget exhausted
        assert wu.state is WorkunitState.ERROR
        assert sched.unsent_count() == 0
        assert sched.reissues == 1  # only the first rejection requeued

    def test_errored_unit_terminal_and_not_regranted(self, sim):
        sched = Scheduler(
            sim, SchedulerConfig(reliability_enabled=False, backoff_base_s=0.0)
        )
        (wu,) = make_wus(1, max_attempts=1)
        sched.add_workunits([wu])
        assert self._fail_once(sim, sched, wu) is False
        assert wu.is_terminal
        assert sched.request_work("c2", set(), 1) == []


class TestStaleHeartbeatVsTimeout:
    def _config(self) -> SchedulerConfig:
        return SchedulerConfig(
            timeout_s=100.0, heartbeats_enabled=True, heartbeat_interval_s=40.0
        )

    def test_heartbeat_slides_deadline(self, sim):
        sched = Scheduler(sim, self._config())
        (wu,) = make_wus(1)
        sched.add_workunits([wu])
        sched.request_work("c1", set(), 1)
        sim.run(until=60.0)
        assert sched.report_heartbeat("wu00", "c1") is True
        assert wu.current_attempt.deadline == pytest.approx(160.0)
        sim.run(until=150.0)  # past the original deadline
        assert wu.state is WorkunitState.IN_PROGRESS
        assert sched.timeouts == 0

    def test_heartbeat_after_timeout_is_stale(self, sim):
        # The timeout fires first; the racing heartbeat must be rejected
        # and must NOT resurrect the reclaimed attempt's deadline.
        sched = Scheduler(sim, self._config())
        (wu,) = make_wus(1)
        sched.add_workunits([wu])
        sched.request_work("c1", set(), 1)
        sim.run(until=150.0)  # deadline at 100 fires
        assert sched.timeouts == 1
        assert wu.state is WorkunitState.UNSENT  # requeued for reissue
        assert sched.report_heartbeat("wu00", "c1") is False
        assert sched.heartbeats == 0
        assert wu.state is WorkunitState.UNSENT  # unchanged by the stale report

    def test_heartbeat_from_superseded_client_is_stale(self, sim):
        # After reissue to another host, the original host's heartbeat must
        # not slide the new attempt's deadline.
        sched = Scheduler(sim, self._config())
        (wu,) = make_wus(1)
        sched.add_workunits([wu])
        sched.request_work("c1", set(), 1)
        sim.run(until=150.0)  # c1's attempt times out
        granted = sched.request_work("c2", set(), 1)
        assert granted and granted[0].current_attempt.client_id == "c2"
        deadline = wu.current_attempt.deadline
        assert sched.report_heartbeat("wu00", "c1") is False
        assert wu.current_attempt.deadline == deadline

    def test_heartbeat_after_result_is_stale(self, sim):
        sched = Scheduler(sim, self._config())
        (wu,) = make_wus(1)
        sched.add_workunits([wu])
        sched.request_work("c1", set(), 1)
        assert sched.report_result("wu00", "c1") is True
        assert sched.report_heartbeat("wu00", "c1") is False

    def test_stale_heartbeat_counted_and_traced(self, sim, trace):
        # Stale heartbeats used to vanish silently; they are now a
        # first-class observable (counter + sched.stale_heartbeat record).
        sched = Scheduler(sim, self._config(), trace=trace)
        (wu,) = make_wus(1)
        sched.add_workunits([wu])
        sched.request_work("c1", set(), 1)
        sim.run(until=150.0)  # deadline at 100 reclaims the attempt
        assert sched.report_heartbeat("wu00", "c1") is False
        assert sched.stale_heartbeats == 1
        stale = [r for r in trace if r.kind == "sched.stale_heartbeat"]
        assert len(stale) == 1
        assert stale[0]["wu"] == "wu00" and stale[0]["client"] == "c1"
