"""Sweep utility tests."""

from __future__ import annotations

import pytest

from repro.core import ConstantAlpha, EpochRecord, RunResult
from repro.core.sweep import Sweep
from repro.errors import ConfigurationError

from .test_runner import tiny_config


def fake_runner(config):
    """Deterministic stand-in: 'accuracy' encodes the config knobs."""
    result = RunResult(label=config.label)
    acc = 0.1 * config.num_param_servers + 0.01 * config.max_concurrent_subtasks
    result.append(
        EpochRecord(
            epoch=1,
            end_time_s=1000.0 / config.num_clients,
            val_accuracy_mean=acc,
            val_accuracy_min=acc,
            val_accuracy_max=acc,
            test_accuracy=acc,
            alpha=0.9,
            assimilations=1,
            timeouts_so_far=0,
            lost_updates_so_far=0,
        )
    )
    return result


class TestDeclaration:
    def test_size_is_product(self):
        sweep = Sweep(tiny_config(), runner=fake_runner)
        sweep.axis("num_param_servers", [1, 3]).axis("num_clients", [2, 4, 6])
        assert sweep.size == 6

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            Sweep(tiny_config()).axis("num_clients", [])

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            Sweep(tiny_config()).axis("warp_factor", [9])

    def test_duplicate_axis_rejected(self):
        sweep = Sweep(tiny_config()).axis("num_clients", [1])
        with pytest.raises(ConfigurationError):
            sweep.axis("num_clients", [2])

    def test_configs_apply_overrides(self):
        sweep = Sweep(tiny_config(), runner=fake_runner)
        sweep.axis("num_param_servers", [1, 2])
        configs = sweep.configs()
        assert [c.num_param_servers for _, c in configs] == [1, 2]
        # Base fields untouched.
        assert all(c.num_shards == tiny_config().num_shards for _, c in configs)

    def test_no_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            Sweep(tiny_config()).configs()


class TestExecution:
    def make(self) -> Sweep:
        sweep = Sweep(tiny_config(), runner=fake_runner)
        sweep.axis("num_param_servers", [1, 3])
        sweep.axis("max_concurrent_subtasks", [2, 4])
        return sweep

    def test_runs_all_points(self):
        sweep = self.make()
        points = sweep.run()
        assert len(points) == 4
        labels = {p.label() for p in points}
        assert "num_param_servers=3, max_concurrent_subtasks=4" in labels

    def test_progress_callback(self):
        sweep = self.make()
        seen = []
        sweep.run(progress=lambda p: seen.append(p.label()))
        assert len(seen) == 4

    def test_best_maximize(self):
        sweep = self.make()
        sweep.run()
        best = sweep.best("final_val_accuracy")
        assert best.override_dict() == {
            "num_param_servers": 3,
            "max_concurrent_subtasks": 4,
        }

    def test_best_minimize(self):
        sweep = Sweep(tiny_config(), runner=fake_runner)
        sweep.axis("num_clients", [2, 5])
        sweep.run()
        fastest = sweep.best("total_time_hours", maximize=False)
        assert fastest.override_dict()["num_clients"] == 5

    def test_table_rows_and_headers(self):
        sweep = self.make()
        sweep.run()
        assert sweep.headers() == [
            "num_param_servers",
            "max_concurrent_subtasks",
            "final acc",
            "hours",
        ]
        rows = sweep.table_rows()
        assert len(rows) == 4 and len(rows[0]) == 4

    def test_query_before_run_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().best()

    def test_alpha_axis_uses_describe(self):
        sweep = Sweep(tiny_config(), runner=fake_runner)
        sweep.axis("alpha_schedule", [ConstantAlpha(0.7), ConstantAlpha(0.9)])
        sweep.run()
        assert sweep.points[0].label() == "alpha_schedule=alpha=0.7"


class TestRealIntegration:
    def test_sweep_with_real_runner(self):
        """A 2-point sweep through the actual distributed runner."""
        sweep = Sweep(tiny_config(max_epochs=1))
        sweep.axis("num_clients", [1, 3])
        points = sweep.run()
        assert len(points) == 2
        fast = sweep.best("total_time_hours", maximize=False)
        assert fast.override_dict()["num_clients"] == 3
