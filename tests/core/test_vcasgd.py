"""VC-ASGD update rule and α schedules (paper Eq. 1 / Eq. 2, §III-C)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vcasgd import (
    CallableAlpha,
    ConstantAlpha,
    LinearAlpha,
    VarAlpha,
    epoch_recursion,
    vcasgd_merge,
)
from repro.errors import ConfigurationError


class TestMerge:
    def test_eq1_formula(self, rng):
        server = rng.normal(size=10)
        client = rng.normal(size=10)
        out = vcasgd_merge(server, client, 0.95)
        np.testing.assert_allclose(out, 0.95 * server + 0.05 * client)

    def test_in_place_aliasing(self, rng):
        server = rng.normal(size=10)
        expected = 0.7 * server + 0.3 * np.ones(10)
        result = vcasgd_merge(server, np.ones(10), 0.7, out=server)
        assert result is server
        np.testing.assert_allclose(server, expected)

    def test_alpha_one_keeps_server(self, rng):
        server = rng.normal(size=5)
        out = vcasgd_merge(server, np.zeros(5), 1.0)
        np.testing.assert_allclose(out, server)

    def test_invalid_alpha(self, rng):
        v = rng.normal(size=3)
        with pytest.raises(ConfigurationError):
            vcasgd_merge(v, v, 0.0)
        with pytest.raises(ConfigurationError):
            vcasgd_merge(v, v, 1.5)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            vcasgd_merge(rng.normal(size=3), rng.normal(size=4), 0.9)

    def test_merge_is_convex_combination(self, rng):
        """Result stays within the elementwise interval [min, max]."""
        server = rng.normal(size=20)
        client = rng.normal(size=20)
        out = vcasgd_merge(server, client, 0.6)
        lo = np.minimum(server, client)
        hi = np.maximum(server, client)
        assert np.all(out >= lo - 1e-12) and np.all(out <= hi + 1e-12)


class TestEq2Recursion:
    def test_sequential_eq1_equals_closed_form(self, rng):
        """Applying Eq. 1 n_t times must equal the paper's Eq. 2."""
        alpha = 0.9
        server = rng.normal(size=8)
        updates = [rng.normal(size=8) for _ in range(5)]
        sequential = server.copy()
        for u in updates:
            sequential = vcasgd_merge(sequential, u, alpha)
        closed = epoch_recursion(server, updates, alpha)
        np.testing.assert_allclose(sequential, closed, rtol=1e-12)

    def test_old_weight_is_alpha_pow_nt(self, rng):
        """With zero client updates, W_{s,e} = α^{n_t} · W_{s,e-1}."""
        alpha, n_t = 0.95, 50
        server = rng.normal(size=4)
        zeros = [np.zeros(4)] * n_t
        out = epoch_recursion(server, zeros, alpha)
        np.testing.assert_allclose(out, alpha**n_t * server)

    def test_later_arrivals_weigh_more(self):
        """The most recent client copy is discounted least (Eq. 2)."""
        server = np.zeros(1)
        early_heavy = epoch_recursion(server, [np.ones(1), np.zeros(1)], 0.9)
        late_heavy = epoch_recursion(server, [np.zeros(1), np.ones(1)], 0.9)
        assert late_heavy[0] > early_heavy[0]

    def test_empty_update_list(self, rng):
        server = rng.normal(size=3)
        np.testing.assert_allclose(epoch_recursion(server, [], 0.9), server)


class TestSchedules:
    def test_constant(self):
        s = ConstantAlpha(0.95)
        assert s.alpha_at(1) == s.alpha_at(40) == 0.95
        assert "0.95" in s.describe()

    def test_constant_bounds(self):
        with pytest.raises(ConfigurationError):
            ConstantAlpha(0.0)
        with pytest.raises(ConfigurationError):
            ConstantAlpha(1.2)
        ConstantAlpha(1.0)  # inclusive upper bound

    def test_var_alpha_paper_values(self):
        """α_e = e/(e+1): 0.5 at e=1 rising to ~0.98 at e=40 (§IV-C)."""
        s = VarAlpha()
        assert s.alpha_at(1) == pytest.approx(0.5)
        assert s.alpha_at(40) == pytest.approx(40 / 41)
        assert 0.975 < s.alpha_at(40) < 0.98

    def test_var_alpha_monotone(self):
        s = VarAlpha()
        values = [s.alpha_at(e) for e in range(1, 50)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_epoch_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            VarAlpha().alpha_at(0)
        with pytest.raises(ConfigurationError):
            ConstantAlpha(0.9).alpha_at(-1)

    def test_linear_ramp(self):
        s = LinearAlpha(0.5, 0.9, num_epochs=5)
        assert s.alpha_at(1) == pytest.approx(0.5)
        assert s.alpha_at(5) == pytest.approx(0.9)
        assert s.alpha_at(3) == pytest.approx(0.7)
        assert s.alpha_at(100) == pytest.approx(0.9)  # clamps

    def test_linear_single_epoch(self):
        assert LinearAlpha(0.5, 0.9, num_epochs=1).alpha_at(1) == 0.9

    def test_linear_validation(self):
        with pytest.raises(ConfigurationError):
            LinearAlpha(0.0, 0.9, 5)
        with pytest.raises(ConfigurationError):
            LinearAlpha(0.5, 0.9, 0)

    def test_callable_schedule(self):
        s = CallableAlpha(lambda e: 1.0 - 1.0 / (e + 1), label="inv")
        assert s.alpha_at(1) == pytest.approx(0.5)
        assert s.describe() == "inv"

    def test_callable_validates_range(self):
        s = CallableAlpha(lambda e: 2.0)
        with pytest.raises(ConfigurationError):
            s.alpha_at(1)


@settings(max_examples=30, deadline=None)
@given(
    alpha=st.floats(0.01, 1.0),
    n=st.integers(1, 20),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_sequential_matches_closed_form(alpha, n, seed):
    rng = np.random.default_rng(seed)
    server = rng.normal(size=6)
    updates = [rng.normal(size=6) for _ in range(n)]
    sequential = server.copy()
    for u in updates:
        sequential = vcasgd_merge(sequential, u, alpha)
    np.testing.assert_allclose(
        sequential, epoch_recursion(server, updates, alpha), rtol=1e-9, atol=1e-9
    )


@settings(max_examples=30, deadline=None)
@given(alpha=st.floats(0.01, 0.99), seed=st.integers(0, 2**31 - 1))
def test_property_repeated_merge_converges_to_client(alpha, seed):
    """Merging the same client copy forever converges the server to it —
    the contraction that makes VC-ASGD convergent (§III-C)."""
    rng = np.random.default_rng(seed)
    server = rng.normal(size=4)
    client = rng.normal(size=4)
    for _ in range(3000):
        server = vcasgd_merge(server, client, alpha)
        if np.allclose(server, client, rtol=0.0, atol=1e-9):
            break
    np.testing.assert_allclose(server, client, atol=1e-6, rtol=0.0)
