"""Robust aggregation rules: coordinate-wise median and CenteredClip.

Unit-level contracts (windowing, Byzantine resistance, the PR-4 hot-path
``apply``/``apply_into`` equivalence, checkpoint round-trips) plus the
factory registration that exposes them to the CLI/sweep layers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstantAlpha, make_rule
from repro.core.rules import CenteredClipRule, ClientUpdate, CoordMedianRule
from repro.errors import ConfigurationError


def upd(vec, client="c0"):
    return ClientUpdate(client_id=client, params=np.asarray(vec, dtype=float))


def feed(rule, vectors, server=None):
    """Apply a sequence of client vectors; return the final server copy."""
    server = np.zeros(len(vectors[0])) if server is None else server
    for vec in vectors:
        server = rule.apply(server, upd(vec), epoch=1)
    return server


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            CoordMedianRule(ConstantAlpha(0.5), window=0)

    def test_bad_tau(self):
        with pytest.raises(ConfigurationError):
            CenteredClipRule(ConstantAlpha(0.5), tau=0.0)

    def test_bad_iters(self):
        with pytest.raises(ConfigurationError):
            CenteredClipRule(ConstantAlpha(0.5), iters=0)


class TestFactory:
    @pytest.mark.parametrize("name", ["median", "coordmedian"])
    def test_median_names(self, name):
        assert isinstance(make_rule(name), CoordMedianRule)

    @pytest.mark.parametrize("name", ["centeredclip", "cclip"])
    def test_cclip_names(self, name):
        assert isinstance(make_rule(name), CenteredClipRule)

    def test_kwargs_flow(self):
        rule = make_rule("centeredclip", tau=2.5, iters=5, window=7)
        assert rule.tau == 2.5 and rule.iters == 5 and rule.window == 7

    def test_both_fault_tolerant(self):
        assert make_rule("median").fault_tolerant
        assert make_rule("centeredclip").fault_tolerant
        assert not make_rule("median").uses_gradient


class TestCoordMedian:
    def test_single_update_equals_vcasgd(self):
        """With one vector in the window the median is that vector."""
        rule = CoordMedianRule(ConstantAlpha(0.8), window=5)
        server = np.full(4, 2.0)
        out = rule.apply(server, upd([1.0, 1.0, 1.0, 1.0]), epoch=1)
        np.testing.assert_allclose(out, 0.8 * server + 0.2 * np.ones(4))

    def test_outlier_outvoted(self):
        """A Byzantine vector inside an honest window never shows through."""
        # server = 0 and alpha = 0.5, so out = 0.5 * median(window).
        rule = CoordMedianRule(ConstantAlpha(0.5), window=3)
        rule.apply(np.zeros(2), upd([1.0, 1.0]), epoch=1)
        rule.apply(np.zeros(2), upd([1.0, 1.0]), epoch=1)
        out = rule.apply(np.zeros(2), upd([1e9, -1e9]), epoch=1)
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_window_slides(self):
        rule = CoordMedianRule(ConstantAlpha(0.5), window=2)
        rule.apply(np.zeros(1), upd([0.0]), epoch=1)
        rule.apply(np.zeros(1), upd([2.0]), epoch=1)
        out = rule.apply(np.zeros(1), upd([4.0]), epoch=1)
        # Window now holds [2, 4]; the 0 fell out.  out = 0.5 * median = 1.5.
        np.testing.assert_allclose(out, [1.5])

    def test_apply_into_matches_apply(self):
        a = CoordMedianRule(ConstantAlpha(0.7), window=3)
        b = CoordMedianRule(ConstantAlpha(0.7), window=3)
        rng = np.random.default_rng(0)
        server = rng.normal(size=8)
        for _ in range(5):
            vec = rng.normal(size=8)
            out = np.empty(8)
            got_a = a.apply(server.copy(), upd(vec), epoch=2)
            got_b = b.apply_into(server.copy(), upd(vec), epoch=2, out=out)
            assert got_b is out
            np.testing.assert_array_equal(got_a, got_b)
            server = got_a

    def test_out_does_not_alias_inputs(self):
        rule = CoordMedianRule(ConstantAlpha(0.5), window=2)
        server, vec, out = np.ones(4), np.full(4, 3.0), np.empty(4)
        rule.apply_into(server, upd(vec), epoch=1, out=out)
        np.testing.assert_array_equal(server, np.ones(4))
        np.testing.assert_array_equal(vec, np.full(4, 3.0))

    def test_checkpoint_roundtrip(self):
        rule = CoordMedianRule(ConstantAlpha(0.6), window=3)
        feed(rule, [[1.0, 2.0], [3.0, 4.0]])
        restored = CoordMedianRule(ConstantAlpha(0.6), window=3)
        restored.load_state_dict(rule.state_dict())
        vec = [5.0, 6.0]
        np.testing.assert_array_equal(
            rule.apply(np.zeros(2), upd(vec), epoch=1),
            restored.apply(np.zeros(2), upd(vec), epoch=1),
        )

    def test_empty_state_roundtrip(self):
        rule = CoordMedianRule(ConstantAlpha(0.6))
        assert rule.state_dict() == {}
        restored = CoordMedianRule(ConstantAlpha(0.6))
        restored.load_state_dict({})
        assert restored._buf is None


class TestCenteredClip:
    def test_honest_updates_pass_nearly_unclipped(self):
        """Small deltas off the server copy survive with large tau."""
        # server = 0 and alpha = 0.5, so out = 0.5 * v with v -> vec.
        rule = CenteredClipRule(ConstantAlpha(0.5), tau=100.0, iters=5, window=5)
        vec = np.full(4, 0.1)
        out = rule.apply(np.zeros(4), upd(vec), epoch=1)
        np.testing.assert_allclose(out, 0.5 * vec, atol=1e-3)

    def test_byzantine_influence_bounded_by_tau(self):
        """An arbitrarily large falsified vector moves v at most iters*tau."""
        tau, iters, alpha = 0.5, 3, 0.5
        rule = CenteredClipRule(ConstantAlpha(alpha), tau=tau, iters=iters, window=5)
        server = np.zeros(4)
        out = rule.apply(server, upd(np.full(4, 1e12)), epoch=1)
        # ||v|| <= iters * tau, and out = (1 - alpha) * v off a zero server.
        assert float(np.linalg.norm(out)) <= (1 - alpha) * tau * iters + 1e-9

    def test_apply_into_matches_apply(self):
        a = CenteredClipRule(ConstantAlpha(0.7), tau=1.0, window=3)
        b = CenteredClipRule(ConstantAlpha(0.7), tau=1.0, window=3)
        rng = np.random.default_rng(1)
        server = rng.normal(size=8)
        for _ in range(5):
            vec = rng.normal(size=8)
            out = np.empty(8)
            got_a = a.apply(server.copy(), upd(vec), epoch=3)
            got_b = b.apply_into(server.copy(), upd(vec), epoch=3, out=out)
            assert got_b is out
            np.testing.assert_array_equal(got_a, got_b)
            server = got_a

    def test_checkpoint_roundtrip(self):
        rule = CenteredClipRule(ConstantAlpha(0.6), tau=2.0, window=4)
        feed(rule, [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        restored = CenteredClipRule(ConstantAlpha(0.6), tau=2.0, window=4)
        restored.load_state_dict(rule.state_dict())
        vec = [2.0, 2.0]
        np.testing.assert_array_equal(
            rule.apply(np.ones(2), upd(vec), epoch=1),
            restored.apply(np.ones(2), upd(vec), epoch=1),
        )

    def test_merge_weight_reports_alpha(self):
        assert CenteredClipRule(ConstantAlpha(0.9)).merge_weight(1) == 0.9
        assert CoordMedianRule(ConstantAlpha(0.9)).merge_weight(1) == 0.9
