"""System-level invariants under randomized configurations.

These are the conservation laws of the volunteer-computing pipeline —
whatever the fault pattern, concurrency, or store choice, the following
must hold for every completed run:

* every epoch assimilates at most ``num_shards`` updates, and exactly that
  many when no subtask exhausted its attempt budget;
* simulated time is strictly increasing across epochs;
* accuracy values are valid probabilities with min ≤ mean ≤ max;
* reissues ≥ timeouts observed (every timeout with remaining budget
  requeues), lost updates only occur on the eventual store;
* identical configs yield bit-identical results (determinism).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstantAlpha,
    FaultConfig,
    LocalTrainingConfig,
    TrainingJobConfig,
    run_experiment,
)
from repro.data import SyntheticImageConfig
from repro.nn.models import ModelSpec


def build_config(
    seed: int,
    clients: int,
    concurrency: int,
    servers: int,
    store: str,
    preempt: float,
) -> TrainingJobConfig:
    return TrainingJobConfig(
        num_param_servers=servers,
        num_clients=clients,
        max_concurrent_subtasks=concurrency,
        model=ModelSpec("mlp", {"in_features": 48, "hidden": [6], "num_classes": 4}),
        data=SyntheticImageConfig(image_size=4, num_classes=4, noise_std=1.5),
        num_train=80,
        num_val=24,
        num_test=24,
        num_shards=5,
        max_epochs=2,
        local_training=LocalTrainingConfig(local_epochs=1, learning_rate=0.01),
        alpha_schedule=ConstantAlpha(0.8),
        store_kind=store,
        faults=FaultConfig(preemption_hourly_p=preempt, relaunch_delay_s=60.0),
        seed=seed,
    )


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    clients=st.integers(1, 4),
    concurrency=st.integers(1, 4),
    servers=st.integers(1, 3),
    store=st.sampled_from(["eventual", "strong"]),
    preempt=st.sampled_from([0.0, 0.5]),
)
def test_property_run_invariants(seed, clients, concurrency, servers, store, preempt):
    config = build_config(seed, clients, concurrency, servers, store, preempt)
    result = run_experiment(config)

    # Epoch accounting.
    assert len(result.epochs) == 2
    for record in result.epochs:
        assert 0 < record.assimilations <= config.num_shards
        assert 0.0 <= record.val_accuracy_min <= record.val_accuracy_mean
        assert record.val_accuracy_mean <= record.val_accuracy_max <= 1.0
        assert 0.0 <= record.test_accuracy <= 1.0

    # Clock monotonicity.
    times = [r.end_time_s for r in result.epochs]
    assert all(b > a for a, b in zip(times, times[1:]))
    assert result.total_time_s == times[-1]

    # Fault accounting.
    counters = result.counters
    assert counters["reissues"] >= 0
    assert counters["assimilations"] == sum(r.assimilations for r in result.epochs)
    if store == "strong":
        assert counters["lost_updates"] == 0
    if preempt == 0.0:
        assert counters["preemptions"] == 0

    # With no permanent failures possible (generous attempt budget), every
    # shard of every epoch is assimilated.
    if preempt == 0.0:
        assert counters["assimilations"] == config.num_shards * config.max_epochs


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_determinism(seed):
    config = build_config(seed, clients=2, concurrency=2, servers=1,
                          store="eventual", preempt=0.3)
    a = run_experiment(config)
    b = run_experiment(config)
    np.testing.assert_array_equal(a.val_accuracy(), b.val_accuracy())
    assert a.total_time_s == b.total_time_s
    assert a.counters == b.counters
