"""Parameter-server pool tests: queueing, merging, epoch accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc import Workunit
from repro.core.param_server import PARAM_KEY, ParameterServerPool
from repro.core.vcasgd import ConstantAlpha
from repro.errors import ConfigurationError, TrainingError
from repro.kvstore import EventualStore, StoreLatency, StrongStore
from repro.simulation import ComputeResource, InstanceSpec, Simulator


def make_wu(i: int = 0, epoch: int = 0) -> Workunit:
    return Workunit(
        wu_id=f"wu{i:02d}",
        job_id="job",
        epoch=epoch,
        shard_index=i,
        input_files=("m", "p", f"s{i}"),
        work_units=1.0,
        timeout_s=100.0,
    )


def build_pool(
    sim: Simulator,
    num_servers: int = 1,
    store_cls=EventualStore,
    validation_work: float = 1.0,
    accuracies: list[float] | None = None,
) -> ParameterServerPool:
    store = store_cls(sim, StoreLatency(base_s=1.0, per_byte_s=0.0))
    store.put_now(PARAM_KEY, np.zeros(4))
    spec = InstanceSpec("srv", vcpus=4, clock_ghz=2.4, ram_gb=8, network_gbps=1)
    acc_iter = iter(accuracies or [])

    def evaluate(vec: np.ndarray) -> tuple[float, float]:
        try:
            return 0.0, next(acc_iter)
        except StopIteration:
            return 0.0, float(vec.mean())

    return ParameterServerPool(
        sim=sim,
        num_servers=num_servers,
        store=store,
        alpha_schedule=ConstantAlpha(0.5),
        server_cpu=ComputeResource(sim, spec),
        evaluate_fn=evaluate,
        validation_work_units=validation_work,
    )


class TestAssimilation:
    def test_single_update_merges(self, sim):
        pool = build_pool(sim)
        done = []
        pool.assimilate(make_wu(), np.ones(4), lambda: done.append(sim.now))
        sim.run()
        # α=0.5: 0.5*0 + 0.5*1 = 0.5; service = 1 s store + 1 s validation.
        np.testing.assert_allclose(pool.current_params(), 0.5 * np.ones(4))
        assert done == pytest.approx([2.0])
        assert pool.stats.processed == 1

    def test_rejects_non_array_payload(self, sim):
        pool = build_pool(sim)
        with pytest.raises(TrainingError):
            pool.assimilate(make_wu(), "garbage", lambda: None)

    def test_invalid_config(self, sim):
        with pytest.raises(ConfigurationError):
            build_pool(sim, num_servers=0)

    def test_sequential_merges_compose(self, sim):
        pool = build_pool(sim)
        pool.assimilate(make_wu(0), np.ones(4), lambda: None)
        sim.run()
        pool.assimilate(make_wu(1), np.ones(4), lambda: None)
        sim.run()
        np.testing.assert_allclose(pool.current_params(), 0.75 * np.ones(4))


class TestQueueing:
    def test_single_worker_serializes(self, sim):
        """P=1: three results drain one at a time (the Fig. 3 bottleneck)."""
        pool = build_pool(sim, num_servers=1)
        done: list[float] = []
        for i in range(3):
            pool.assimilate(make_wu(i), np.ones(4), lambda: done.append(sim.now))
        assert pool.queue_depth() == 2
        sim.run()
        assert done == pytest.approx([2.0, 4.0, 6.0])
        assert pool.stats.max_queue_depth == 2
        assert pool.stats.mean_wait() > 0

    def test_more_workers_drain_in_parallel(self, sim):
        pool = build_pool(sim, num_servers=3)
        done: list[float] = []
        for i in range(3):
            pool.assimilate(make_wu(i), np.ones(4), lambda: done.append(sim.now))
        sim.run()
        assert done == pytest.approx([2.0, 2.0, 2.0])
        assert pool.stats.total_queue_wait == 0.0

    def test_busy_workers_tracked(self, sim):
        pool = build_pool(sim, num_servers=2)
        pool.assimilate(make_wu(0), np.ones(4), lambda: None)
        pool.assimilate(make_wu(1), np.ones(4), lambda: None)
        assert pool.busy_workers == 2
        sim.run()
        assert pool.busy_workers == 0

    def test_strong_store_with_multiple_workers_serializes_store(self, sim):
        """With P=2 over a strong store, the per-key lock serializes the
        store phase (but validation can still overlap)."""
        pool = build_pool(sim, num_servers=2, store_cls=StrongStore)
        done: list[float] = []
        for i in range(2):
            pool.assimilate(make_wu(i), np.ones(4), lambda: done.append(sim.now))
        sim.run()
        # Store commits at t=1 and t=2; validations end at t=2 and t=3.
        assert done == pytest.approx([2.0, 3.0])
        # No update lost under strong consistency.
        np.testing.assert_allclose(pool.current_params(), 0.75 * np.ones(4))

    def test_eventual_store_concurrent_merges_lose_updates(self, sim):
        pool = build_pool(sim, num_servers=2, store_cls=EventualStore)
        for i in range(2):
            pool.assimilate(make_wu(i), np.ones(4), lambda: None)
        sim.run()
        # Both merged from the same 0-snapshot: one update clobbered.
        np.testing.assert_allclose(pool.current_params(), 0.5 * np.ones(4))
        assert pool.store.lost_updates == 1


class TestEpochAccounting:
    def test_epoch_accuracy_summary(self, sim):
        pool = build_pool(sim, accuracies=[0.3, 0.5, 0.4])
        for i in range(3):
            pool.assimilate(make_wu(i, epoch=0), np.ones(4), lambda: None)
        sim.run()
        mean, lo, hi = pool.epoch_accuracy_summary(0)
        assert mean == pytest.approx(0.4)
        assert (lo, hi) == (0.3, 0.5)

    def test_epochs_tracked_separately(self, sim):
        pool = build_pool(sim, accuracies=[0.1, 0.9])
        pool.assimilate(make_wu(0, epoch=0), np.ones(4), lambda: None)
        sim.run()
        pool.assimilate(make_wu(1, epoch=1), np.ones(4), lambda: None)
        sim.run()
        assert pool.epoch_accuracy_summary(0)[0] == pytest.approx(0.1)
        assert pool.epoch_accuracy_summary(1)[0] == pytest.approx(0.9)

    def test_missing_epoch_raises(self, sim):
        with pytest.raises(TrainingError):
            build_pool(sim).epoch_accuracy_summary(7)

    def test_alpha_uses_one_based_epoch(self, sim):
        """Workunit epoch 0 must map to schedule epoch 1 (paper counts
        from 1) — VarAlpha would reject epoch 0."""
        from repro.core.vcasgd import VarAlpha

        store = EventualStore(sim, StoreLatency(base_s=0.1, per_byte_s=0.0))
        store.put_now(PARAM_KEY, np.zeros(2))
        spec = InstanceSpec("srv", vcpus=2, clock_ghz=2.4, ram_gb=4, network_gbps=1)
        pool = ParameterServerPool(
            sim=sim,
            num_servers=1,
            store=store,
            alpha_schedule=VarAlpha(),
            server_cpu=ComputeResource(sim, spec),
            evaluate_fn=lambda vec: (0.0, 0.5),
        )
        pool.assimilate(make_wu(0, epoch=0), np.ones(2), lambda: None)
        sim.run()
        # α(1) = 0.5 -> merged value 0.5.
        np.testing.assert_allclose(pool.current_params(), [0.5, 0.5])
