"""End-to-end congestion: diurnal WAN conditions through the full pipeline."""

from __future__ import annotations

import pytest

from repro.core import DistributedRunner, run_experiment
from repro.errors import TrainingError
from repro.simulation import CongestionSchedule, diurnal_schedule

from .test_runner import tiny_config


class TestCongestedPipeline:
    def test_congestion_slows_training(self):
        """Permanent heavy congestion (tiny bandwidth factor) must stretch
        wall clock relative to clear conditions."""
        clear = run_experiment(tiny_config(max_epochs=2))
        jammed = run_experiment(
            tiny_config(
                max_epochs=2,
                congestion=CongestionSchedule(steps=((0.0, 0.001),), period_s=10.0),
            )
        )
        assert jammed.total_time_s > clear.total_time_s
        # Training outcome is unaffected — only transfer time changes.
        assert jammed.counters["assimilations"] == clear.counters["assimilations"]

    def test_offpeak_window_equals_clear_conditions(self):
        """A run that finishes before the evening peak sees no slowdown."""
        clear = run_experiment(tiny_config(max_epochs=2))
        scheduled = run_experiment(
            tiny_config(max_epochs=2, congestion=diurnal_schedule(peak_factor=0.01))
        )
        # tiny_config runs finish in well under 18 simulated hours.
        assert scheduled.total_time_s == pytest.approx(clear.total_time_s)

    def test_invalid_congestion_type_rejected(self):
        with pytest.raises(TrainingError):
            DistributedRunner(tiny_config(congestion="evening"))

    def test_deterministic_under_congestion(self):
        import numpy as np

        cfg = tiny_config(
            max_epochs=2,
            congestion=CongestionSchedule(steps=((0.0, 0.5),), period_s=100.0),
        )
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        np.testing.assert_array_equal(a.val_accuracy(), b.val_accuracy())
        assert a.total_time_s == b.total_time_s
