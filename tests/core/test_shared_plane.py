"""Shared-memory parameter plane: lifecycle, read-only views, crash safety.

The plane (DESIGN.md §8.5) is the zero-pickle transport for published
parameter vectors: the owner creates a fixed slot grid in
``multiprocessing.shared_memory``, workers attach read-only NumPy views.
These tests pin the lifecycle contract — create → attach → close →
unlink, idempotent teardown, loud attach-after-unlink — and the two
properties everything else leans on: worker views can never write the
plane, and a worker dying mid-step (even ``kill -9``) neither unlinks
nor leaks the segment.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.core.parallel import PlaneHandle, SharedParameterPlane
from repro.errors import ConfigurationError, SimulationError


def _shm_path(name: str) -> str:
    return os.path.join("/dev/shm", name.lstrip("/"))


class TestLifecycle:
    def test_create_write_attach_read_roundtrip(self):
        with SharedParameterPlane(slot_size=6, slots=3) as plane:
            vec = np.arange(6, dtype=np.float64) * 1.5
            plane.write(2, vec)
            handle = plane.handle()
            assert handle == PlaneHandle(plane.name, 3, 6)
            with handle.attach() as attached:
                assert attached.view(2).tobytes() == vec.tobytes()
                assert attached.view(0).tobytes() == bytes(6 * 8)

    def test_write_is_visible_to_an_already_attached_worker(self):
        with SharedParameterPlane(slot_size=4, slots=2) as plane:
            with plane.handle().attach() as attached:
                before = attached.view(1).copy()
                plane.write(1, np.full(4, 7.0))
                assert not np.array_equal(attached.view(1), before)
                assert attached.view(1).tobytes() == np.full(4, 7.0).tobytes()

    def test_geometry_and_bounds_are_validated(self):
        with pytest.raises(ConfigurationError):
            SharedParameterPlane(slot_size=0, slots=4)
        with pytest.raises(ConfigurationError):
            SharedParameterPlane(slot_size=4, slots=0)
        with SharedParameterPlane(slot_size=4, slots=2) as plane:
            with pytest.raises(ConfigurationError):
                plane.write(2, np.zeros(4))
            with pytest.raises(ConfigurationError):
                plane.write(0, np.zeros(5))

    def test_unlink_is_idempotent_and_removes_the_segment(self):
        plane = SharedParameterPlane(slot_size=4, slots=2)
        name = plane.name
        assert os.path.exists(_shm_path(name))
        plane.unlink()
        plane.unlink()  # second call is a no-op, not an error
        assert not os.path.exists(_shm_path(name))
        with pytest.raises(SimulationError):
            plane.write(0, np.zeros(4))

    def test_attach_after_unlink_raises_file_not_found(self):
        plane = SharedParameterPlane(slot_size=4, slots=2)
        handle = plane.handle()
        plane.unlink()
        with pytest.raises(FileNotFoundError):
            handle.attach()

    def test_worker_detach_leaves_segment_alive(self):
        with SharedParameterPlane(slot_size=4, slots=2) as plane:
            plane.write(0, np.ones(4))
            attached = plane.handle().attach()
            attached.close()
            # A fresh attachment still sees the data: close() dropped only
            # the worker's mapping, never the segment.
            with plane.handle().attach() as again:
                assert again.view(0).tobytes() == np.ones(4).tobytes()


class TestReadOnly:
    def test_worker_view_refuses_writes(self):
        with SharedParameterPlane(slot_size=4, slots=1) as plane:
            with plane.handle().attach() as attached:
                view = attached.view(0)
                assert not view.flags.writeable
                with pytest.raises(ValueError):
                    view[0] = 1.0

    def test_owner_verification_view_refuses_writes(self):
        with SharedParameterPlane(slot_size=4, slots=1) as plane:
            view = plane.view(0)
            with pytest.raises(ValueError):
                view[:] = 3.0


def _attach_and_hang(handle: PlaneHandle, ready) -> None:
    attached = handle.attach()
    attached.view(0)  # mapped and in use, as in a real mid-step worker
    ready.set()
    time.sleep(60)  # far longer than the test; killed well before this


class TestCrashSafety:
    def test_sigkilled_worker_neither_unlinks_nor_leaks(self):
        """kill -9 mid-step: the segment survives the worker and still
        disappears exactly once, at the owner's unlink."""
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        with SharedParameterPlane(slot_size=8, slots=2) as plane:
            plane.write(0, np.arange(8, dtype=np.float64))
            ready = ctx.Event()
            worker = ctx.Process(
                target=_attach_and_hang, args=(plane.handle(), ready)
            )
            worker.start()
            try:
                assert ready.wait(timeout=30), "worker never attached"
                os.kill(worker.pid, signal.SIGKILL)
            finally:
                worker.join(timeout=30)
            assert worker.exitcode == -signal.SIGKILL
            # Not unlinked by the dead worker: owner and fresh attachments
            # still read the slot.
            assert os.path.exists(_shm_path(plane.name))
            with plane.handle().attach() as attached:
                expected = np.arange(8, dtype=np.float64).tobytes()
                assert attached.view(0).tobytes() == expected
            name = plane.name
        # ... and not leaked either: the owner's unlink removed it.
        assert not os.path.exists(_shm_path(name))
