"""End-to-end adversarial runs: the fabric wired through the real pipeline.

Each test runs a tiny job with a live :class:`AdversaryPlan` and checks
the attack actually fires, the defenses respond, the run's invariants
hold (auditor on), and the whole thing is deterministic under a fixed
seed.
"""

from __future__ import annotations

import pytest

from repro.core import DistributedRunner, FaultConfig
from repro.core.runner import run_experiment
from repro.errors import ConfigurationError
from repro.obs import ObservabilityConfig
from repro.simulation.adversary import (
    AdversaryBehavior,
    AdversaryPlan,
    SybilFleet,
)

from .test_runner import tiny_config

AUDITED = ObservabilityConfig(audit=True)


def adv_config(plan: AdversaryPlan, **overrides):
    overrides.setdefault("faults", FaultConfig(adversary=plan))
    return tiny_config(**overrides)


def run_audited(config):
    runner = DistributedRunner(config, observability=AUDITED)
    result = runner.run()
    assert runner.obs.report is not None and runner.obs.report.ok
    return runner, result


class TestFabricWiring:
    PLAN = AdversaryPlan(
        behaviors=(
            AdversaryBehavior(
                clients=("client-000",), attack="falsify_random", magnitude=2.0
            ),
        )
    )

    def test_tampering_fires_and_counters_flow(self):
        runner, result = run_audited(adv_config(self.PLAN, num_clients=3))
        assert result.counters["adv_tampered_uploads"] > 0
        assert runner.trace.count("adv.tamper") == result.counters[
            "adv_tampered_uploads"
        ]

    def test_deterministic_under_seed(self):
        a = run_experiment(adv_config(self.PLAN, num_clients=3))
        b = run_experiment(adv_config(self.PLAN, num_clients=3))
        assert a.counters == b.counters
        assert [e.val_accuracy_mean for e in a.epochs] == [
            e.val_accuracy_mean for e in b.epochs
        ]

    def test_adversary_counters_absent_without_plan(self):
        result = run_experiment(tiny_config())
        assert "adv_tampered_uploads" not in result.counters
        assert "hosts_quarantined" not in result.counters
        assert "quorums_failed" not in result.counters

    def test_plan_type_validated(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(adversary="falsify everything")


class TestClaimInflation:
    """Satellite: the median-of-claims grant defeats claim inflation."""

    def test_inflated_claim_earns_the_honest_median(self):
        plan = AdversaryPlan(
            behaviors=(
                AdversaryBehavior(
                    clients=("client-000",),
                    attack="claim_inflate",
                    claim_factor=100.0,
                ),
            )
        )
        runner, result = run_audited(
            adv_config(plan, num_clients=4, replicas=2, quorum=2, max_epochs=1)
        )
        assert result.counters["adv_inflated_claims"] > 0
        ledger = runner.server.credit
        cheat = ledger.host_total("client-000")
        honest_hosts = [
            h
            for h in ledger.hosts
            if h != "client-000" and ledger.hosts[h].results_granted > 0
        ]
        assert honest_hosts  # honest hosts did earn
        # Baseline: an honest pair's grant is the (honest) median claim.
        honest_rate = min(
            ledger.host_total(h) / ledger.hosts[h].results_granted
            for h in honest_hosts
        )
        # Median-of-claims: in a quorum-2 pair the decided grant is the
        # midpoint of {honest, 100x honest} at worst (~50.5x), never the
        # claimed 100x.  The claim alone cannot set the grant.
        grants = ledger.hosts["client-000"].results_granted
        if grants:
            per_result_cheat = cheat / grants
            assert per_result_cheat <= 50.5 * honest_rate + 1e-9
            assert per_result_cheat < 100.0 * honest_rate


class TestQuarantineEndToEnd:
    def test_persistent_falsifier_is_quarantined(self):
        """Norm-bound validation rejects forged uploads; repeated rejections
        trip the quarantine threshold and the host stops receiving work."""
        plan = AdversaryPlan(
            behaviors=(
                AdversaryBehavior(
                    clients=("client-000",), attack="falsify_random", magnitude=50.0
                ),
            )
        )
        runner, result = run_audited(
            adv_config(
                plan,
                num_clients=4,
                max_param_norm=100.0,
                quarantine_after=2,
                max_epochs=1,
            )
        )
        assert result.counters["hosts_quarantined"] >= 1
        assert runner.server.scheduler.client("client-000").quarantined


class TestSybils:
    def test_sybil_fleet_joins_and_attacks(self):
        plan = AdversaryPlan(
            sybils=(SybilFleet(identity="ring", count=2, attack="falsify_scale",
                               magnitude=3.0),)
        )
        runner, result = run_audited(adv_config(plan, num_clients=2, max_epochs=1))
        assert runner.trace.count("adv.sybil_joined") == 2
        assert "sybil-ring-000" in runner.server.clients
        assert "sybil-ring-001" in runner.server.clients
        assert result.counters["adv_tampered_uploads"] > 0

    def test_sybils_do_not_shift_honest_client_ids(self):
        """Sybil names live outside the client-NNN namespace."""
        plan = AdversaryPlan(
            sybils=(SybilFleet(identity="ring", count=1, attack="collude"),)
        )
        runner, _ = run_audited(adv_config(plan, num_clients=2, max_epochs=1))
        assert "client-000" in runner.server.clients
        assert "client-001" in runner.server.clients
        assert "client-002" not in runner.server.clients


class TestCollusionGuardEndToEnd:
    def test_cartel_defeats_naive_quorum_but_guard_recovers_some(self):
        plan = AdversaryPlan(
            behaviors=(
                AdversaryBehavior(
                    clients=("client-000", "client-001"),
                    attack="collude",
                    magnitude=2.0,
                ),
            )
        )
        config = adv_config(
            plan,
            num_clients=4,
            replicas=2,
            quorum=2,
            collusion_guard=True,
            quarantine_after=3,
            max_epochs=2,
        )
        runner, result = run_audited(config)
        # The guard must terminate every replica group (reached or failed).
        assert (
            result.counters["quorums_reached"] + result.counters["quorums_failed"]
            > 0
        )
        assert runner.quorum.pending_units() == 0
