"""Parameter-server crash/failover semantics: exactly-once assimilation.

The merge commit in the shared store is the atomicity point:

* crash **before** commit → the store transaction aborts (TXN_ABORT) and
  the item requeues, so whichever server runs next applies it exactly once;
* crash **after** commit with survivors → a surviving server adopts the
  rest of the pipeline (§III-D: state lives in the store, servers are
  replaceable);
* crash **after** commit with no survivors → the item strands until a
  restart resumes its validation.

Runner-level: a mid-training sole-server crash restores from the latest
epoch checkpoint and finishes within noise of the fault-free run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc import Workunit
from repro.core import FaultConfig
from repro.core.param_server import PARAM_KEY, ParameterServerPool
from repro.core.runner import DistributedRunner
from repro.core.vcasgd import ConstantAlpha
from repro.kvstore import EventualStore, StoreLatency, StrongStore
from repro.simulation import ComputeResource, InstanceSpec, Simulator
from repro.simulation.chaos import ChaosPlan, ServerCrash

from .test_runner import tiny_config


def make_wu(i: int = 0, epoch: int = 0) -> Workunit:
    return Workunit(
        wu_id=f"wu{i:02d}",
        job_id="job",
        epoch=epoch,
        shard_index=i,
        input_files=("m", "p", f"s{i}"),
        work_units=1.0,
        timeout_s=100.0,
    )


def build_pool(sim, num_servers=1, store_cls=EventualStore, trace=None):
    store = store_cls(sim, StoreLatency(base_s=1.0, per_byte_s=0.0), trace=trace)
    store.put_now(PARAM_KEY, np.zeros(4))
    spec = InstanceSpec("srv", vcpus=4, clock_ghz=2.4, ram_gb=8, network_gbps=1)
    return ParameterServerPool(
        sim=sim,
        num_servers=num_servers,
        store=store,
        alpha_schedule=ConstantAlpha(0.5),
        server_cpu=ComputeResource(sim, spec),
        evaluate_fn=lambda vec: (0.0, float(vec.mean())),
        validation_work_units=1.0,
        trace=trace,
    )


# Timeline for one assimilation with these latencies: store commit at
# t=1 (the atomicity point), validation t=1..2, on_done at t=2.


class TestCrashBeforeCommit:
    def test_aborts_and_requeues(self, sim, trace):
        pool = build_pool(sim, trace=trace)
        done: list[float] = []
        pool.assimilate(make_wu(), np.ones(4), lambda: done.append(sim.now))
        sim.schedule(0.5, pool.crash_server)  # before the t=1 commit
        sim.schedule(10.0, pool.restart_server)
        sim.run()
        # Exactly one application of the update, by the restarted server.
        np.testing.assert_allclose(pool.current_params(), 0.5 * np.ones(4))
        assert len(done) == 1
        assert pool.stats.processed == 1
        assert trace.count("kv.txn_abort") == 1
        crash = trace.last("ps.crash")
        assert crash["lost"] == "uncommitted"

    def test_survivor_reruns_immediately(self, sim, trace):
        pool = build_pool(sim, num_servers=2, trace=trace)
        done: list[float] = []
        pool.assimilate(make_wu(), np.ones(4), lambda: done.append(sim.now))
        sim.schedule(0.5, pool.crash_server)
        sim.run()
        # The second worker picked the requeued item up without a restart.
        np.testing.assert_allclose(pool.current_params(), 0.5 * np.ones(4))
        assert len(done) == 1
        assert pool.num_servers == 1


class TestCrashAfterCommitWithSurvivors:
    def test_survivor_adopts_pipeline(self, sim, trace):
        pool = build_pool(sim, num_servers=2, trace=trace)
        done: list[float] = []
        pool.assimilate(make_wu(), np.ones(4), lambda: done.append(sim.now))
        sim.schedule(1.5, pool.crash_server)  # committed at t=1, validating
        sim.run()
        np.testing.assert_allclose(pool.current_params(), 0.5 * np.ones(4))
        assert len(done) == 1  # assimilated exactly once
        assert pool.stats.processed == 1
        assert pool.adoptions == 1
        assert trace.last("ps.crash")["lost"] == "adopted"


class TestSoleServerCrash:
    def test_stranded_item_resumes_on_restart(self, sim, trace):
        pool = build_pool(sim, num_servers=1, trace=trace)
        done: list[float] = []
        pool.assimilate(make_wu(), np.ones(4), lambda: done.append(sim.now))
        sim.schedule(1.5, pool.crash_server)  # committed, mid-validation
        sim.schedule(5.0, pool.restart_server)
        sim.run()
        # Merge was durable; restart re-validated and finished exactly once.
        np.testing.assert_allclose(pool.current_params(), 0.5 * np.ones(4))
        assert done == [pytest.approx(6.0)]  # restart at 5 + 1 s validation
        assert pool.stats.processed == 1
        assert trace.last("ps.crash")["lost"] == "stranded"
        recover = trace.last("ps.recover")
        assert recover["resumed"] == 1 and recover["total_outage"] is True

    def test_total_outage_restart_hook_fires(self, sim):
        pool = build_pool(sim, num_servers=1)
        calls: list[float] = []
        pool.on_total_outage_restart = lambda: calls.append(sim.now)
        sim.schedule(1.0, pool.crash_server)
        sim.schedule(2.0, pool.restart_server)
        sim.run()
        assert calls == [2.0]

    def test_hook_not_fired_for_partial_outage(self, sim):
        pool = build_pool(sim, num_servers=2)
        calls: list[float] = []
        pool.on_total_outage_restart = lambda: calls.append(sim.now)
        sim.schedule(1.0, pool.crash_server)
        sim.schedule(2.0, pool.restart_server)
        sim.run()
        assert calls == []

    def test_queue_waits_out_the_outage(self, sim):
        pool = build_pool(sim, num_servers=1)
        done: list[float] = []
        sim.schedule(0.0, pool.crash_server)  # idle worker dies immediately
        pool.assimilate(make_wu(), np.ones(4), lambda: done.append(sim.now))
        sim.schedule(20.0, pool.restart_server)
        sim.run()
        assert done and done[0] >= 20.0
        assert pool.stats.processed == 1


class TestIdleCrash:
    def test_capacity_loss_only(self, sim, trace):
        pool = build_pool(sim, num_servers=2, trace=trace)
        pool.crash_server()
        assert pool.num_servers == 1
        assert pool.crashes == 1
        assert trace.last("ps.crash")["lost"] == "idle"


class TestStrongStoreFailover:
    def test_abort_requeue_on_strong_store(self, sim, trace):
        # The strong store must release its per-key lock on abort or the
        # requeued item deadlocks forever.
        pool = build_pool(sim, store_cls=StrongStore, trace=trace)
        done: list[float] = []
        pool.assimilate(make_wu(), np.ones(4), lambda: done.append(sim.now))
        sim.schedule(0.5, pool.crash_server)
        sim.schedule(10.0, pool.restart_server)
        sim.run()
        np.testing.assert_allclose(pool.current_params(), 0.5 * np.ones(4))
        assert len(done) == 1


class TestRunnerCrashRecovery:
    def _chaos_config(self, crash, **overrides):
        return tiny_config(
            faults=FaultConfig(chaos=ChaosPlan(ps_crashes=crash)),
            **overrides,
        )

    def test_sole_ps_crash_restores_from_checkpoint(self):
        from repro.core import run_experiment

        crash = (ServerCrash(at_s=500.0, restart_delay_s=60.0),)
        faulty = run_experiment(self._chaos_config(crash, num_param_servers=1))
        clean = run_experiment(tiny_config(num_param_servers=1))
        assert len(faulty.epochs) == len(clean.epochs)
        assert faulty.counters["ps_crashes"] == 1
        assert faulty.counters["ps_recoveries"] == 1
        # The training signal survives the crash: final accuracy within
        # noise of the fault-free run on the same seed.
        assert faulty.epochs[-1].val_accuracy_mean == pytest.approx(
            clean.epochs[-1].val_accuracy_mean, abs=0.15
        )

    def test_restore_emits_trace(self):
        crash = (ServerCrash(at_s=500.0, restart_delay_s=60.0),)
        runner = DistributedRunner(self._chaos_config(crash, num_param_servers=1))
        runner.run()
        assert runner.trace.count("ps.crash") == 1
        assert runner.trace.count("ps.recover") == 1
        # The sole server restarted from the latest epoch checkpoint.
        assert runner.trace.count("ps.restore") == 1

    def test_no_restore_when_disabled(self):
        plan = ChaosPlan(
            ps_crashes=(ServerCrash(at_s=500.0, restart_delay_s=60.0),),
            restore_from_checkpoint=False,
        )
        runner = DistributedRunner(tiny_config(faults=FaultConfig(chaos=plan)))
        runner.run()
        assert runner.trace.count("ps.restore") == 0

    def test_crash_run_is_reproducible(self):
        from repro.core import run_experiment

        crash = (ServerCrash(at_s=400.0, restart_delay_s=90.0),)
        a = run_experiment(self._chaos_config(crash))
        b = run_experiment(self._chaos_config(crash))
        assert a.counters == b.counters
        assert [e.val_accuracy_mean for e in a.epochs] == [
            e.val_accuracy_mean for e in b.epochs
        ]
