"""Image-shaped (non-flat) distributed training: CNN through the pipeline.

The paper trains a CNN (ResNetV2); most of our experiments use a flat MLP
for speed.  These tests prove the full pipeline also handles NCHW image
workloads with convolutional models end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstantAlpha, LocalTrainingConfig, TrainingJobConfig, run_experiment
from repro.data import SyntheticImageConfig
from repro.nn import Tensor
from repro.nn.models import ModelSpec, build_model, paper_scale_resnet_spec


def convnet_config(**overrides) -> TrainingJobConfig:
    defaults = dict(
        num_param_servers=1,
        num_clients=2,
        max_concurrent_subtasks=2,
        model=ModelSpec(
            "convnet",
            {"in_channels": 3, "image_size": 8, "channels": [6, 12], "num_classes": 4},
        ),
        data=SyntheticImageConfig(image_size=8, num_classes=4, noise_std=1.5),
        flat_features=False,  # NCHW images all the way through
        num_train=96,
        num_val=32,
        num_test=32,
        num_shards=4,
        max_epochs=2,
        local_training=LocalTrainingConfig(local_epochs=2, learning_rate=0.01),
        alpha_schedule=ConstantAlpha(0.8),
        seed=44,
    )
    defaults.update(overrides)
    return TrainingJobConfig(**defaults)


class TestConvNetPipeline:
    def test_runs_end_to_end(self):
        result = run_experiment(convnet_config())
        assert len(result.epochs) == 2
        assert result.counters["assimilations"] == 8

    def test_learns_above_chance(self):
        result = run_experiment(
            convnet_config(
                max_epochs=6,
                local_training=LocalTrainingConfig(local_epochs=5, learning_rate=0.02),
            )
        )
        assert result.best_val_accuracy() > 0.32  # chance = 0.25

    def test_resnet_model_through_pipeline(self):
        cfg = convnet_config(
            model=ModelSpec(
                "resnetv2",
                {"stage_channels": [4, 8], "blocks_per_stage": 1, "num_classes": 4},
            ),
            max_epochs=1,
        )
        result = run_experiment(cfg)
        assert result.epochs[0].assimilations == 4

    def test_deterministic(self):
        a = run_experiment(convnet_config())
        b = run_experiment(convnet_config())
        np.testing.assert_array_equal(a.val_accuracy(), b.val_accuracy())


class TestPaperScaleModel:
    def test_parameter_count_in_paper_class(self):
        """The paper's ResNetV2 has 4,972,746 parameters; our paper-scale
        spec lands within 2%."""
        model = build_model(paper_scale_resnet_spec(), np.random.default_rng(0))
        count = model.num_parameters()
        assert abs(count - 4_972_746) / 4_972_746 < 0.02

    def test_forward_pass_works(self, rng):
        model = build_model(paper_scale_resnet_spec(), np.random.default_rng(0))
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 10)

    def test_parameter_file_size_near_paper(self):
        """The paper's compressed parameter file is 21.2 MB for ~5M params;
        our float64 raw vector is ~40 MB (they stored float32) — the ratio
        is exactly the dtype width, confirming the byte model."""
        from repro.nn.serialization import state_to_vector

        model = build_model(paper_scale_resnet_spec(), np.random.default_rng(0))
        vec = state_to_vector(model.state_dict())
        float32_bytes = vec.size * 4
        assert abs(float32_bytes - 21.2 * 1024 * 1024) / (21.2 * 1024 * 1024) < 0.12
