"""Volunteer churn and redundant-replica cancellation tests."""

from __future__ import annotations

import pytest

from repro.boinc import Scheduler, SchedulerConfig, Workunit, WorkunitState
from repro.core import FaultConfig, run_experiment
from repro.errors import ConfigurationError, WorkunitError

from .test_runner import tiny_config


class TestVolunteerChurn:
    def test_arrivals_join_and_speed_up(self):
        solo = run_experiment(
            tiny_config(num_clients=1, max_epochs=3, num_shards=12, num_train=240)
        )
        churn = run_experiment(
            tiny_config(
                num_clients=1,
                max_epochs=3,
                num_shards=12,
                num_train=240,
                faults=FaultConfig(
                    volunteer_arrivals_per_hour=30.0, max_volunteers=4
                ),
            )
        )
        assert churn.counters["volunteers_joined"] == 4
        assert churn.total_time_hours < solo.total_time_hours

    def test_max_volunteers_caps_arrivals(self):
        result = run_experiment(
            tiny_config(
                num_clients=1,
                max_epochs=2,
                faults=FaultConfig(
                    volunteer_arrivals_per_hour=1000.0, max_volunteers=2
                ),
            )
        )
        assert result.counters["volunteers_joined"] == 2

    def test_zero_rate_means_no_arrivals(self):
        result = run_experiment(tiny_config(max_epochs=1))
        assert result.counters["volunteers_joined"] == 0

    def test_invalid_churn_config(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(volunteer_arrivals_per_hour=-1.0)

    def test_churn_traced(self):
        from repro.core import DistributedRunner

        runner = DistributedRunner(
            tiny_config(
                num_clients=1,
                max_epochs=2,
                faults=FaultConfig(
                    volunteer_arrivals_per_hour=100.0, max_volunteers=2
                ),
            )
        )
        runner.run()
        assert runner.trace.count("fleet.volunteer_joined") == 2


def make_wu(wu_id: str = "u#r0") -> Workunit:
    return Workunit(
        wu_id=wu_id,
        job_id="j",
        epoch=0,
        shard_index=0,
        input_files=("m", "p", "s"),
        work_units=1.0,
        timeout_s=100.0,
    )


class TestCancellation:
    def test_cancel_unsent(self, sim):
        sched = Scheduler(sim, SchedulerConfig())
        sched.add_workunits([make_wu()])
        assert sched.cancel_workunit("u#r0") is None
        assert sched.get_workunit("u#r0").state is WorkunitState.CANCELLED
        assert sched.unsent_count() == 0
        assert sched.cancellations == 1

    def test_cancel_in_progress_returns_client(self, sim):
        sched = Scheduler(sim, SchedulerConfig())
        sched.add_workunits([make_wu()])
        sched.request_work("c1", set(), 1)
        assert sched.cancel_workunit("u#r0") == "c1"
        wu = sched.get_workunit("u#r0")
        assert wu.state is WorkunitState.CANCELLED
        assert wu.current_attempt.outcome == "cancelled"
        sim.run()
        assert sched.timeouts == 0  # timeout event was cancelled too

    def test_cancel_terminal_is_noop(self, sim):
        sched = Scheduler(sim, SchedulerConfig())
        sched.add_workunits([make_wu()])
        sched.request_work("c1", set(), 1)
        sched.report_result("u#r0", "c1")
        wu = sched.get_workunit("u#r0")
        wu.mark_valid(sim.now, result=None)
        assert sched.cancel_workunit("u#r0") is None
        assert wu.state is WorkunitState.DONE

    def test_cancelled_is_terminal(self, sim):
        wu = make_wu()
        wu.mark_cancelled(0.0)
        assert wu.is_terminal

    def test_illegal_cancel_transition(self):
        wu = make_wu()
        wu.mark_sent("c1", 0.0)
        wu.mark_result_received(1.0)
        with pytest.raises(WorkunitError):
            wu.mark_cancelled(2.0)

    def test_quorum_one_cancels_siblings_end_to_end(self):
        result = run_experiment(
            tiny_config(num_clients=3, replicas=2, quorum=1, max_epochs=2)
        )
        # First replica to finish wins; its sibling is cancelled (or was
        # never needed), so cancellations show up and time is saved.
        assert result.counters["cancellations"] > 0
        assert result.counters["quorums_reached"] == 12
        slower = run_experiment(
            tiny_config(num_clients=3, replicas=2, quorum=2, max_epochs=2)
        )
        assert result.total_time_hours < slower.total_time_hours
