"""Bit-exactness guard: the Byzantine fabric is invisible when disabled.

The golden digests below were captured on the commit *preceding* the
adversary fabric (same configs, same seed).  A run with
``adversary=None`` — and with every defense at its default — must still
produce byte-identical parameters, counters, epoch records and (for the
unreplicated config) the exact trace-kind census.  Any drift means the
fabric leaked into the honest path: an RNG draw, a counter, an extra
trace record, or a scheduling perturbation.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter

from repro.core import DistributedRunner, FaultConfig
from repro.simulation.adversary import AdversaryPlan

from .test_runner import tiny_config

# Captured pre-fabric (see module docstring).  If one of these moves, the
# change is NOT backward compatible for default runs — do not just update
# the constant; find the leak.
#
# GOLDEN_PLAIN_CORRUPT was re-captured once, when the multi-core execution
# plane (DESIGN.md §8.5) re-keyed unreplicated batch-order draws from a
# sequential per-client stream to per-attempt generators so that draw
# *timing* can never shift another attempt's permutations.  The replicated
# golden did not move: replicas already drew per logical workunit.
GOLDEN_PLAIN_CORRUPT = (
    "6fd2cd9994ca81ebaf2dbf567c26d3e739f2f3b257bf47087b09384c63509f2b"
)
GOLDEN_REPLICATED = (
    "c3b55332130b2798eda77c314e150bd87611bd4305f8e2d936a0f78641a22240"
)


def run_digest(config, include_trace: bool = True) -> str:
    runner = DistributedRunner(config)
    result = runner.run()
    h = hashlib.sha256()
    h.update(runner.pool.current_params().tobytes())
    h.update(json.dumps(result.counters, sort_keys=True).encode())
    h.update(
        json.dumps(
            [
                [e.end_time_s, e.val_accuracy_mean, e.test_accuracy]
                for e in result.epochs
            ]
        ).encode()
    )
    if include_trace:
        kinds = Counter(rec.kind for rec in runner.trace)
        h.update(json.dumps(sorted(kinds.items())).encode())
    return h.hexdigest()


def test_unreplicated_run_matches_pre_fabric_golden():
    """Corrupt-client faults but no adversary: params + counters + epochs
    + full trace-kind census, byte-for-byte."""
    config = tiny_config(
        num_clients=3,
        faults=FaultConfig(corrupt_clients=1, corruption_scale=0.5),
    )
    assert run_digest(config, include_trace=True) == GOLDEN_PLAIN_CORRUPT


def test_replicated_run_matches_pre_fabric_golden():
    """Replicated with quorum credit now deferred: the decision-time median
    of identical honest claims equals the historical at-validation grant,
    so physics and counters stay byte-identical."""
    config = tiny_config(num_clients=4, replicas=2, quorum=2)
    assert run_digest(config, include_trace=False) == GOLDEN_REPLICATED


def test_empty_plan_equals_no_plan():
    """FaultConfig(adversary=AdversaryPlan()) (inactive) == adversary=None."""
    with_none = run_digest(
        tiny_config(faults=FaultConfig(adversary=None)), include_trace=True
    )
    with_empty = run_digest(
        tiny_config(faults=FaultConfig(adversary=AdversaryPlan())),
        include_trace=True,
    )
    assert with_none == with_empty
