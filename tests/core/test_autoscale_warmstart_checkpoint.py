"""Tests for autoscaling, warm start, and checkpoint/resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc import Workunit
from repro.core import (
    AutoscalePolicy,
    AutoscalingPool,
    ConstantAlpha,
    DistributedRunner,
    run_experiment,
)
from repro.core.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.core.param_server import PARAM_KEY
from repro.core.results import EpochRecord, RunResult
from repro.errors import ConfigurationError, SerializationError, TrainingError
from repro.kvstore import EventualStore, StoreLatency
from repro.simulation import ComputeResource, InstanceSpec

from .test_runner import tiny_config


def make_wu(i: int) -> Workunit:
    return Workunit(
        wu_id=f"wu{i:02d}",
        job_id="job",
        epoch=0,
        shard_index=i,
        input_files=("m", "p", f"s{i}"),
        work_units=1.0,
        timeout_s=100.0,
    )


def build_autoscaling_pool(sim, policy: AutoscalePolicy) -> AutoscalingPool:
    store = EventualStore(sim, StoreLatency(base_s=1.0, per_byte_s=0.0))
    store.put_now(PARAM_KEY, np.zeros(4))
    spec = InstanceSpec("srv", vcpus=8, clock_ghz=2.4, ram_gb=8, network_gbps=1)
    return AutoscalingPool(
        sim=sim,
        store=store,
        alpha_schedule=ConstantAlpha(0.5),
        server_cpu=ComputeResource(sim, spec),
        evaluate_fn=lambda vec: (0.0, 0.5),
        validation_work_units=1.0,
        policy=policy,
    )


class TestAutoscalePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_servers": 0},
            {"min_servers": 5, "max_servers": 2},
            {"up_threshold": 0.1, "down_threshold": 0.5},
            {"cooldown_s": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(**kwargs)


class TestAutoscalingPool:
    def test_scales_up_under_burst(self, sim):
        policy = AutoscalePolicy(min_servers=1, max_servers=4, cooldown_s=0.0)
        pool = build_autoscaling_pool(sim, policy)
        for i in range(12):
            pool.assimilate(make_wu(i), np.ones(4), lambda: None)
        sim.run()
        assert pool.scale_ups >= 1
        assert pool.num_servers > policy.min_servers
        assert pool.stats.processed == 12

    def test_respects_max_servers(self, sim):
        policy = AutoscalePolicy(min_servers=1, max_servers=2, cooldown_s=0.0)
        pool = build_autoscaling_pool(sim, policy)
        for i in range(20):
            pool.assimilate(make_wu(i), np.ones(4), lambda: None)
        sim.run()
        assert pool.num_servers <= 2

    def test_scales_down_when_idle(self, sim):
        policy = AutoscalePolicy(
            min_servers=1, max_servers=4, cooldown_s=0.0, down_idle_s=5.0
        )
        pool = build_autoscaling_pool(sim, policy)
        for i in range(12):
            pool.assimilate(make_wu(i), np.ones(4), lambda: None)
        sim.run()
        grown = pool.num_servers
        # Idle trickle: single occasional updates, well spaced out.
        for i in range(5):
            sim.schedule(
                100.0 + 50.0 * i,
                lambda i=i: pool.assimilate(make_wu(100 + i), np.ones(4), lambda: None),
            )
        sim.run()
        assert pool.scale_downs >= 1
        assert pool.num_servers < grown

    def test_cooldown_limits_rate(self, sim):
        policy = AutoscalePolicy(min_servers=1, max_servers=8, cooldown_s=1e9)
        pool = build_autoscaling_pool(sim, policy)
        for i in range(20):
            pool.assimilate(make_wu(i), np.ones(4), lambda: None)
        sim.run()
        assert pool.scale_ups <= 1

    def test_runner_integration(self):
        cfg = tiny_config(
            num_clients=3,
            max_concurrent_subtasks=4,
            max_epochs=2,
            ps_autoscale=True,
            autoscale_policy=AutoscalePolicy(min_servers=1, max_servers=6, cooldown_s=5.0),
        )
        result = run_experiment(cfg)
        assert "ps_scale_ups" in result.counters
        assert result.counters["ps_final_workers"] >= 1

    def test_runner_rejects_bad_policy_type(self):
        cfg = tiny_config(ps_autoscale=True, autoscale_policy="nope")
        with pytest.raises(TrainingError):
            DistributedRunner(cfg)


class TestWarmStart:
    def test_warm_start_improves_first_epoch(self):
        warm = run_experiment(tiny_config(max_epochs=1, warm_start_passes=5))
        cold = run_experiment(tiny_config(max_epochs=1))
        assert warm.epochs[0].val_accuracy_mean > cold.epochs[0].val_accuracy_mean

    def test_warm_start_charges_time(self):
        warm = run_experiment(tiny_config(max_epochs=1, warm_start_passes=5))
        cold = run_experiment(tiny_config(max_epochs=1))
        assert warm.epochs[0].end_time_s > cold.epochs[0].end_time_s

    def test_negative_passes_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_config(warm_start_passes=-1)


class TestCheckpoint:
    def test_bytes_roundtrip(self, rng):
        result = RunResult(label="demo")
        result.append(
            EpochRecord(
                epoch=1,
                end_time_s=100.0,
                val_accuracy_mean=0.5,
                val_accuracy_min=0.4,
                val_accuracy_max=0.6,
                test_accuracy=0.45,
                alpha=0.9,
                assimilations=10,
                timeouts_so_far=1,
                lost_updates_so_far=2,
            )
        )
        ck = Checkpoint.from_result(result, rng.normal(size=20))
        restored = Checkpoint.from_bytes(ck.to_bytes())
        np.testing.assert_array_equal(restored.params, ck.params)
        assert restored.epochs_completed == 1
        assert restored.elapsed_s == 100.0
        assert restored.history[0].val_accuracy_mean == 0.5
        assert restored.history[0].assimilations == 10

    def test_file_roundtrip(self, rng, tmp_path):
        ck = Checkpoint(params=rng.normal(size=5), epochs_completed=0, elapsed_s=0.0)
        path = tmp_path / "job.ckpt.npz"
        save_checkpoint(path, ck)
        restored = load_checkpoint(path)
        np.testing.assert_array_equal(restored.params, ck.params)

    def test_garbage_rejected(self):
        with pytest.raises(SerializationError):
            Checkpoint.from_bytes(b"not a checkpoint")

    def test_validation(self, rng):
        with pytest.raises(TrainingError):
            Checkpoint(params=rng.normal(size=(2, 2)), epochs_completed=0, elapsed_s=0)
        with pytest.raises(TrainingError):
            Checkpoint(params=rng.normal(size=4), epochs_completed=-1, elapsed_s=0)

    def test_resume_continues_epoch_numbering_and_time(self):
        runner = DistributedRunner(tiny_config(max_epochs=2))
        runner.run()
        ck = runner.checkpoint()
        resumed = run_experiment(tiny_config(max_epochs=4), resume_from=ck)
        assert [e.epoch for e in resumed.epochs] == [1, 2, 3, 4]
        times = [e.end_time_s for e in resumed.epochs]
        assert times == sorted(times)
        assert times[2] > ck.elapsed_s  # resumed work continues the clock

    def test_resume_keeps_learning(self):
        runner = DistributedRunner(tiny_config(max_epochs=2))
        part = runner.run()
        resumed = run_experiment(tiny_config(max_epochs=5), resume_from=runner.checkpoint())
        assert resumed.final_val_accuracy > part.final_val_accuracy

    def test_resume_size_mismatch_rejected(self, rng):
        ck = Checkpoint(params=rng.normal(size=7), epochs_completed=1, elapsed_s=10.0)
        with pytest.raises(TrainingError):
            DistributedRunner(tiny_config(max_epochs=3), resume_from=ck)

    def test_resume_beyond_budget_rejected(self):
        runner = DistributedRunner(tiny_config(max_epochs=2))
        runner.run()
        with pytest.raises(TrainingError):
            DistributedRunner(tiny_config(max_epochs=2), resume_from=runner.checkpoint())
