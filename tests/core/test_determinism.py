"""Determinism regression: observability must never move the physics.

For every rule in the family, the same seed must produce a byte-identical
``RunResult`` and an identical telemetry digest whether the run carries
the full observability stack (metrics + auditor + profiler) or none of it.
The observers are pure readers; any drift here means one of them touched
simulation state or randomness.
"""

from __future__ import annotations

import pytest

from repro.core import RULE_NAMES, ConstantAlpha, make_rule
from repro.core.runner import DistributedRunner
from repro.obs import OBSERVABILITY_OFF, ObservabilityConfig, run_digest

from .test_runner import tiny_config


def rule_config(rule_name: str):
    schedule = ConstantAlpha(0.8)
    rule = None if rule_name == "vcasgd" else make_rule(rule_name, schedule)
    return tiny_config(alpha_schedule=schedule, update_rule=rule)


def run_with(rule_name: str, observability: ObservabilityConfig):
    runner = DistributedRunner(rule_config(rule_name), observability=observability)
    runner.run()
    return runner


def fingerprint(runner) -> dict:
    """Everything a RunResult says, bit-for-bit."""
    result = runner.result
    return {
        "counters": dict(result.counters),
        "epochs": [record.to_dict() for record in result.epochs],
        "total_time_s": result.total_time_s,
        "stopped_reason": result.stopped_reason,
        "trace_summary": runner.trace.summary(),
    }


FULL_OBS = ObservabilityConfig(metrics=True, audit=True, profile=True)


@pytest.mark.parametrize("rule_name", RULE_NAMES)
def test_rule_bit_identical_with_and_without_observability(rule_name):
    bare = run_with(rule_name, OBSERVABILITY_OFF)
    observed = run_with(rule_name, FULL_OBS)
    assert fingerprint(bare) == fingerprint(observed)
    assert bare.telemetry()["digest"] == observed.telemetry()["digest"]
    # The observed run actually observed something — and stayed clean.
    assert observed.obs.report is not None and observed.obs.report.ok
    assert observed.obs.profiler.report()["total_events"] > 0


def test_same_seed_same_digest_across_repeats():
    a = run_with("vcasgd", ObservabilityConfig())
    b = run_with("vcasgd", ObservabilityConfig())
    assert a.telemetry()["digest"] == b.telemetry()["digest"]
    assert fingerprint(a) == fingerprint(b)


def test_different_seed_different_digest():
    runner_a = DistributedRunner(tiny_config(seed=77))
    runner_a.run()
    runner_b = DistributedRunner(tiny_config(seed=78))
    runner_b.run()
    assert runner_a.telemetry()["digest"] != runner_b.telemetry()["digest"]


def test_digest_is_over_the_deterministic_core_only():
    runner = run_with("vcasgd", FULL_OBS)
    payload = runner.telemetry()
    stripped = {
        k: v
        for k, v in payload.items()
        if k not in ("metrics", "audit", "profile", "spans")
    }
    assert run_digest(stripped) == payload["digest"]


def test_spans_on_vs_off_bit_identical():
    """The span layer is offline reconstruction: toggling it must leave
    the physics, the digest, and the raw record stream untouched."""
    with_spans = run_with("vcasgd", ObservabilityConfig(spans=True))
    without = run_with("vcasgd", ObservabilityConfig(spans=False))
    assert fingerprint(with_spans) == fingerprint(without)
    tel_on, tel_off = with_spans.telemetry(), without.telemetry()
    assert tel_on["digest"] == tel_off["digest"]
    # The section itself gates on the config ...
    assert tel_on["spans"] is not None
    assert tel_off["spans"] is None
    # ... and the records both runs produced are bit-identical.
    records_on = [(r.time, r.kind, r.fields) for r in with_spans.trace]
    records_off = [(r.time, r.kind, r.fields) for r in without.trace]
    assert records_on == records_off


def test_indexed_queue_bit_identical_to_legacy():
    """The fleet-scale indexed ready queue must reproduce the legacy
    full-scan scheduler's runs bit-for-bit (grant order is proven
    equivalent property-by-property in tests/boinc; this pins the whole
    pipeline — physics, counters, trace, digest)."""
    indexed = DistributedRunner(tiny_config(sched_queue_impl="indexed"))
    indexed.run()
    legacy = DistributedRunner(tiny_config(sched_queue_impl="legacy"))
    legacy.run()
    assert fingerprint(indexed) == fingerprint(legacy)
    assert indexed.telemetry()["digest"] == legacy.telemetry()["digest"]


def test_span_reconstruction_is_deterministic():
    from repro.obs import span_summary

    runner = run_with("vcasgd", ObservabilityConfig())
    assert span_summary(runner.trace) == span_summary(runner.trace)
