"""End-to-end distributed runner integration tests.

These use deliberately tiny jobs (few shards, few epochs, small data) so
the whole suite stays fast while still exercising the full pipeline:
work generation → scheduling → downloads → real training → uploads →
validation → VC-ASGD assimilation → epoch accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConstantAlpha,
    DistributedRunner,
    FaultConfig,
    LocalTrainingConfig,
    TrainingJobConfig,
    run_experiment,
)
from repro.data import SyntheticImageConfig
from repro.nn.models import ModelSpec


def tiny_config(**overrides) -> TrainingJobConfig:
    defaults = dict(
        num_param_servers=1,
        num_clients=2,
        max_concurrent_subtasks=2,
        model=ModelSpec("mlp", {"in_features": 48, "hidden": [8], "num_classes": 4}),
        data=SyntheticImageConfig(image_size=4, num_classes=4, noise_std=1.5),
        num_train=120,
        num_val=40,
        num_test=40,
        num_shards=6,
        max_epochs=2,
        local_training=LocalTrainingConfig(local_epochs=6, learning_rate=0.01),
        alpha_schedule=ConstantAlpha(0.8),
        seed=77,
    )
    defaults.update(overrides)
    return TrainingJobConfig(**defaults)


class TestBasicRun:
    def test_completes_all_epochs(self):
        result = run_experiment(tiny_config())
        assert len(result.epochs) == 2
        assert result.stopped_reason == "max_epochs"
        assert result.epochs[0].epoch == 1
        assert result.epochs[1].end_time_s > result.epochs[0].end_time_s

    def test_every_subtask_assimilated(self):
        result = run_experiment(tiny_config())
        assert result.counters["assimilations"] == 12  # 6 shards x 2 epochs
        assert result.epochs[0].assimilations == 6

    def test_accuracy_fields_consistent(self):
        result = run_experiment(tiny_config())
        for rec in result.epochs:
            assert 0.0 <= rec.val_accuracy_min <= rec.val_accuracy_mean
            assert rec.val_accuracy_mean <= rec.val_accuracy_max <= 1.0
            assert 0.0 <= rec.test_accuracy <= 1.0

    def test_learning_happens(self):
        result = run_experiment(tiny_config(max_epochs=6))
        assert result.final_val_accuracy > 0.5  # chance = 0.25

    def test_deterministic_given_seed(self):
        a = run_experiment(tiny_config())
        b = run_experiment(tiny_config())
        assert a.total_time_s == b.total_time_s
        np.testing.assert_array_equal(a.val_accuracy(), b.val_accuracy())
        assert a.counters == b.counters

    def test_different_seed_differs(self):
        a = run_experiment(tiny_config())
        b = run_experiment(tiny_config(seed=78))
        assert not np.array_equal(a.val_accuracy(), b.val_accuracy())

    def test_target_accuracy_stops_early(self):
        result = run_experiment(tiny_config(max_epochs=30, target_accuracy=0.4))
        assert result.stopped_reason == "target_accuracy"
        assert result.final_val_accuracy >= 0.4
        assert len(result.epochs) < 30

    def test_counters_populated(self):
        result = run_experiment(tiny_config())
        counters = result.counters
        assert counters["bytes_down"] > 0
        assert counters["bytes_up"] > 0
        assert counters["store_updates"] == 12
        assert counters["cache_hits"] > 0  # epoch 2 reuses sticky shards


class TestStoreChoice:
    def test_strong_store_runs_and_loses_nothing(self):
        result = run_experiment(tiny_config(store_kind="strong"))
        assert result.counters["lost_updates"] == 0
        assert result.counters["assimilations"] == 12

    def test_eventual_store_with_many_servers_may_lose(self):
        # P3 on an eventual store with bursts of results: overlapping RMWs.
        result = run_experiment(
            tiny_config(num_param_servers=3, num_clients=3, max_concurrent_subtasks=4)
        )
        assert result.counters["assimilations"] == 12
        # Lost updates are possible but never negative; just consistency.
        assert result.counters["lost_updates"] >= 0

    def test_strong_store_slower_than_eventual(self):
        fast = run_experiment(tiny_config(store_kind="eventual"))
        slow = run_experiment(tiny_config(store_kind="strong"))
        assert slow.total_time_s > fast.total_time_s


class TestFaultTolerance:
    def test_preemptions_recovered(self):
        cfg = tiny_config(
            max_epochs=3,
            faults=FaultConfig(preemption_hourly_p=0.9, relaunch_delay_s=30.0),
        )
        result = run_experiment(cfg)
        # High preemption pressure: at least one instance died, yet every
        # epoch completed with every shard assimilated.
        assert len(result.epochs) == 3
        assert result.counters["assimilations"] == 18
        assert result.counters["preemptions"] >= 1
        assert result.counters["reissues"] >= 1

    def test_preemption_costs_time(self):
        base = tiny_config(max_epochs=2)
        faulty = tiny_config(
            max_epochs=2,
            faults=FaultConfig(preemption_hourly_p=0.9, relaunch_delay_s=30.0),
        )
        t_base = run_experiment(base).total_time_s
        t_faulty = run_experiment(faulty).total_time_s
        assert t_faulty > t_base

    def test_no_relaunch_still_completes_with_survivors(self):
        cfg = tiny_config(
            num_clients=3,
            max_epochs=2,
            faults=FaultConfig(preemption_hourly_p=0.5, relaunch_delay_s=None),
        )
        result = run_experiment(cfg)
        assert result.counters["assimilations"] == 12


class TestScalingKnobs:
    def test_more_clients_faster(self):
        slow = run_experiment(tiny_config(num_clients=1))
        fast = run_experiment(tiny_config(num_clients=4))
        assert fast.total_time_s < slow.total_time_s

    def test_more_concurrency_faster_when_ps_keeps_up(self):
        t1 = run_experiment(tiny_config(max_concurrent_subtasks=1)).total_time_s
        t3 = run_experiment(tiny_config(max_concurrent_subtasks=3)).total_time_s
        assert t3 < t1

    def test_ps_queue_bottleneck_measurable(self):
        """With one PS and a large validation cost, queue wait appears."""
        runner = DistributedRunner(
            tiny_config(
                num_clients=3,
                max_concurrent_subtasks=4,
                validation_work_units=40.0,
            )
        )
        runner.run()
        assert runner.pool.stats.mean_wait() > 0

    def test_compression_reduces_bytes(self):
        with_c = run_experiment(tiny_config(compression_enabled=True))
        without = run_experiment(tiny_config(compression_enabled=False))
        assert with_c.counters["bytes_down"] < without.counters["bytes_down"]


class TestStalenessInstrumentation:
    def test_staleness_counters_present(self):
        result = run_experiment(tiny_config(max_epochs=2))
        assert "mean_staleness_x100" in result.counters
        assert result.counters["max_staleness"] >= 1

    def test_staleness_grows_with_concurrency(self):
        """More simultaneous subtasks -> each trains from an older server
        snapshot relative to its merge (the high-Tn penalty mechanism)."""
        def mean_staleness(t: int) -> float:
            r = run_experiment(
                tiny_config(
                    num_clients=3,
                    max_concurrent_subtasks=t,
                    num_shards=24,
                    num_train=240,
                    max_epochs=2,
                )
            )
            return r.counters["mean_staleness_x100"] / 100

        assert mean_staleness(1) < mean_staleness(2) < mean_staleness(8)


class TestAlphaEffectEndToEnd:
    def test_tiny_alpha_slows_learning(self):
        """α=0.999 barely learns (the paper's EASGD-analogue result)."""
        normal = run_experiment(tiny_config(max_epochs=3))
        frozen = run_experiment(
            tiny_config(max_epochs=3, alpha_schedule=ConstantAlpha(0.999))
        )
        assert frozen.final_val_accuracy < normal.final_val_accuracy
