"""Codec plane end-to-end: golden bit-exactness, honest lossy training,
checkpointable residuals, and the delta download chain.

The most important contract is the first one: with ``codec=None`` the
whole plane is dormant and runs are byte-identical to the pre-codec tree
(parameters, counters, epoch records, trace-kind census).  The goldens
below were captured on the commit preceding the codec plane; if one
moves, the plane leaked into the default path — find the leak, do not
re-pin.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter

import numpy as np
import pytest

from repro.core import DistributedRunner, make_rule
from repro.core.checkpoint import Checkpoint
from repro.errors import ConfigurationError

from .test_runner import tiny_config

GOLDEN_NONE_VCASGD = (
    "5b8acddfaa6e9e020419fc346fe18c16d4fc5899bcc8c116964d7ac9e4af40b5"
)
GOLDEN_NONE_DOWNPOUR = (
    "3a96ad63bad955afecd268e2a05a0f1b279c9759151c0a062a7ce07e33050c89"
)

CODEC_COUNTERS = (
    "codec_publishes",
    "codec_publish_raw_bytes",
    "codec_publish_wire_bytes",
    "codec_uploads",
    "codec_upload_raw_bytes",
    "codec_upload_wire_bytes",
    "codec_decodes",
)


def run_digest(config, include_trace: bool = True) -> str:
    runner = DistributedRunner(config)
    result = runner.run()
    h = hashlib.sha256()
    h.update(runner.pool.current_params().tobytes())
    h.update(json.dumps(result.counters, sort_keys=True).encode())
    h.update(
        json.dumps(
            [
                [e.end_time_s, e.val_accuracy_mean, e.test_accuracy]
                for e in result.epochs
            ]
        ).encode()
    )
    if include_trace:
        kinds = Counter(rec.kind for rec in runner.trace)
        h.update(json.dumps(sorted(kinds.items())).encode())
    return h.hexdigest()


class TestCodecNoneBitExact:
    def test_vcasgd_matches_pre_codec_golden(self):
        assert run_digest(tiny_config()) == GOLDEN_NONE_VCASGD

    def test_downpour_matches_pre_codec_golden(self):
        config = tiny_config(
            num_clients=3, update_rule=make_rule("downpour", server_lr=0.05)
        )
        assert run_digest(config) == GOLDEN_NONE_DOWNPOUR


class TestCodecRuns:
    @pytest.mark.parametrize("codec", ["zlib", "fp16", "int8", "topk", "delta"])
    def test_run_completes_and_is_deterministic(self, codec):
        config = tiny_config(codec=codec)
        assert run_digest(config) == run_digest(config)

    @pytest.mark.parametrize("codec", ["fp16", "topk"])
    def test_gradient_rules_carry_codecs(self, codec):
        config = tiny_config(
            codec=codec,
            update_rule=make_rule("downpour", server_lr=0.05),
        )
        assert run_digest(config) == run_digest(config)

    def test_counters_present_and_consistent(self):
        runner = DistributedRunner(tiny_config(codec="int8"))
        result = runner.run()
        for name in CODEC_COUNTERS:
            assert name in result.counters, name
        c = result.counters
        assert c["codec_publishes"] > 0 and c["codec_uploads"] > 0
        # Quantized transfers must beat the raw float64 stream.
        assert c["codec_publish_wire_bytes"] < c["codec_publish_raw_bytes"]
        assert c["codec_upload_wire_bytes"] < c["codec_upload_raw_bytes"]
        # Lossy plane: every publish and every upload is decoded.
        assert c["codec_decodes"] == c["codec_publishes"] + c["codec_uploads"] - 1

    def test_codec_free_runs_have_no_codec_counters(self):
        result = DistributedRunner(tiny_config()).run()
        assert not any(k.startswith("codec_") for k in result.counters)

    def test_trace_kinds_gated_on_codec(self):
        with_codec = DistributedRunner(tiny_config(codec="fp16"))
        with_codec.run()
        kinds = {rec.kind for rec in with_codec.trace}
        assert "net.encode" in kinds and "net.decode" in kinds
        without = DistributedRunner(tiny_config())
        without.run()
        kinds = {rec.kind for rec in without.trace}
        assert "net.encode" not in kinds and "net.decode" not in kinds

    def test_delta_chain_prices_below_full(self):
        runner = DistributedRunner(tiny_config(codec="delta"))
        plain = DistributedRunner(tiny_config())
        r_delta, r_plain = runner.run(), plain.run()
        assert r_delta.counters["codec_delta_chain_downloads"] > 0
        # Same schedule, cheaper parameter downloads.
        assert r_delta.counters["bytes_down"] < r_plain.counters["bytes_down"]

    def test_replicated_codec_run_reaches_quorum(self):
        # Lossy codec + replication: error feedback is disabled (sibling
        # replicas must decode identically) and quorums still agree.
        config = tiny_config(num_clients=3, codec="fp16", replicas=2, quorum=2)
        runner = DistributedRunner(config)
        result = runner.run()
        assert result.counters["quorums_reached"] > 0
        assert runner._codec_plane.error_feedback is False


class TestCodecValidation:
    def test_unknown_codec_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_config(codec="gzip")

    def test_codec_requires_compression(self):
        with pytest.raises(ConfigurationError):
            tiny_config(codec="zlib", compression_enabled=False)

    def test_codec_incompatible_with_deferred_plane(self):
        with pytest.raises(ConfigurationError):
            tiny_config(codec="fp16", cohort_size=2)

    def test_topk_knobs_validated(self):
        with pytest.raises(ConfigurationError):
            tiny_config(codec="topk", codec_topk=0.0)
        with pytest.raises(ConfigurationError):
            tiny_config(codec="topk", codec_quant="fp8")


class TestResidualCheckpointing:
    def test_residuals_survive_checkpoint_roundtrip(self):
        runner = DistributedRunner(tiny_config(codec="topk", max_epochs=1))
        runner.run()
        ck = runner.checkpoint()
        assert ck.codec_state, "lossy run should accumulate residuals"
        restored = Checkpoint.from_bytes(ck.to_bytes())
        assert set(restored.codec_state) == set(ck.codec_state)
        for key, value in ck.codec_state.items():
            np.testing.assert_array_equal(restored.codec_state[key], value)

    def test_resume_restores_residuals_and_stays_deterministic(self):
        runner = DistributedRunner(tiny_config(codec="topk", max_epochs=1))
        runner.run()
        ck = Checkpoint.from_bytes(runner.checkpoint().to_bytes())

        def resumed_digest() -> str:
            resumed = DistributedRunner(
                tiny_config(codec="topk", max_epochs=2), resume_from=ck
            )
            for key, value in ck.codec_state.items():
                client_id = key[len("residual__"):]
                np.testing.assert_array_equal(
                    resumed._codec_plane._residuals[client_id], value
                )
            result = resumed.run()
            h = hashlib.sha256()
            h.update(resumed.pool.current_params().tobytes())
            h.update(json.dumps(result.counters, sort_keys=True).encode())
            return h.hexdigest()

        assert resumed_digest() == resumed_digest()

    def test_codec_free_checkpoints_have_empty_codec_state(self):
        runner = DistributedRunner(tiny_config(max_epochs=1))
        runner.run()
        assert runner.checkpoint().codec_state == {}
