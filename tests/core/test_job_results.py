"""TrainingJobConfig validation and RunResult query tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConstantAlpha,
    EpochRecord,
    FaultConfig,
    LocalTrainingConfig,
    RunResult,
    TrainingJobConfig,
    VarAlpha,
)
from repro.errors import ConfigurationError, TrainingError


class TestJobConfig:
    def test_defaults_valid_and_label(self):
        cfg = TrainingJobConfig()
        assert cfg.label == "P1C3T2"

    def test_label_tracks_pct(self):
        assert TrainingJobConfig().with_pct(5, 5, 8).label == "P5C5T8"

    def test_with_pct_preserves_other_fields(self):
        cfg = TrainingJobConfig(num_shards=13).with_pct(2, 2, 2)
        assert cfg.num_shards == 13
        assert cfg.num_param_servers == 2

    def test_with_alpha(self):
        cfg = TrainingJobConfig().with_alpha(VarAlpha())
        assert isinstance(cfg.alpha_schedule, VarAlpha)

    def test_spec_round_robin(self):
        cfg = TrainingJobConfig()
        specs = [cfg.spec_for_client(i) for i in range(6)]
        assert specs[0] == specs[4]  # 4 client types wrap around
        assert specs[0] != specs[1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_param_servers": 0},
            {"num_clients": 0},
            {"max_concurrent_subtasks": 0},
            {"num_shards": 0},
            {"max_epochs": 0},
            {"store_kind": "dynamo"},
            {"target_accuracy": 1.5},
            {"client_specs": ()},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainingJobConfig(**kwargs)

    def test_local_training_validation(self):
        with pytest.raises(ConfigurationError):
            LocalTrainingConfig(optimizer="rmsprop")
        with pytest.raises(ConfigurationError):
            LocalTrainingConfig(learning_rate=0.0)

    def test_fault_config_validation(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(preemption_hourly_p=1.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(relaunch_delay_s=-1.0)
        FaultConfig(preemption_hourly_p=0.05, relaunch_delay_s=None)


def record(epoch: int, t: float, acc: float, spread: float = 0.02) -> EpochRecord:
    return EpochRecord(
        epoch=epoch,
        end_time_s=t,
        val_accuracy_mean=acc,
        val_accuracy_min=acc - spread / 2,
        val_accuracy_max=acc + spread / 2,
        test_accuracy=acc - 0.01,
        alpha=0.95,
        assimilations=50,
        timeouts_so_far=0,
        lost_updates_so_far=0,
    )


class TestRunResult:
    @pytest.fixture
    def result(self) -> RunResult:
        r = RunResult(label="demo")
        for e, (t, acc) in enumerate(
            [(600, 0.3), (1200, 0.5), (1800, 0.65), (2400, 0.72)], start=1
        ):
            r.append(record(e, t, acc))
        return r

    def test_series_views(self, result):
        np.testing.assert_allclose(result.times_hours() * 3600, [600, 1200, 1800, 2400])
        np.testing.assert_allclose(result.val_accuracy(), [0.3, 0.5, 0.65, 0.72])
        assert result.test_accuracy()[-1] == pytest.approx(0.71)

    def test_final_and_best(self, result):
        assert result.final_val_accuracy == 0.72
        assert result.best_val_accuracy() == 0.72
        assert result.final_test_accuracy == pytest.approx(0.71)
        assert result.total_time_hours == pytest.approx(2400 / 3600)

    def test_time_to_accuracy(self, result):
        assert result.time_to_accuracy(0.5) == 1200
        assert result.time_to_accuracy(0.9) is None

    def test_spread_queries(self, result):
        assert result.mean_spread() == pytest.approx(0.02)
        assert result.mean_spread(last_k=2) == pytest.approx(0.02)

    def test_window(self, result):
        epochs = result.window(0.2, 0.4)  # 720..1440 s
        assert [e.epoch for e in epochs] == [2]

    def test_empty_result_raises(self):
        with pytest.raises(TrainingError):
            _ = RunResult(label="empty").final_val_accuracy
        with pytest.raises(TrainingError):
            _ = RunResult(label="empty").final_test_accuracy

    def test_spread_property(self):
        rec = record(1, 100, 0.5, spread=0.04)
        assert rec.val_accuracy_spread == pytest.approx(0.04)
