"""Crash-consistent checkpointing: atomic writes, digest verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import (
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.results import EpochRecord
from repro.errors import CheckpointError, SerializationError


def make_checkpoint() -> Checkpoint:
    return Checkpoint(
        params=np.arange(8, dtype=np.float64),
        epochs_completed=3,
        elapsed_s=123.5,
        label="P1C2T2",
        history=(
            EpochRecord(
                epoch=1,
                end_time_s=40.0,
                val_accuracy_mean=0.5,
                val_accuracy_min=0.4,
                val_accuracy_max=0.6,
                test_accuracy=0.45,
                alpha=0.5,
                assimilations=6,
                timeouts_so_far=0,
                lost_updates_so_far=1,
            ),
        ),
        rule_state={"backup": np.ones(8)},
        publish_count=9,
    )


class TestEnvelope:
    def test_roundtrip(self):
        ckpt = make_checkpoint()
        clone = Checkpoint.from_bytes(ckpt.to_bytes())
        np.testing.assert_array_equal(clone.params, ckpt.params)
        assert clone.epochs_completed == 3
        assert clone.publish_count == 9
        np.testing.assert_array_equal(clone.rule_state["backup"], np.ones(8))
        assert clone.history[0].val_accuracy_mean == 0.5

    def test_bit_flip_rejected(self):
        blob = bytearray(make_checkpoint().to_bytes())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(CheckpointError, match="digest mismatch"):
            Checkpoint.from_bytes(bytes(blob))

    def test_torn_write_rejected(self):
        blob = make_checkpoint().to_bytes()
        with pytest.raises(CheckpointError, match="digest mismatch"):
            Checkpoint.from_bytes(blob[: len(blob) // 2])

    def test_truncated_header_rejected(self):
        blob = make_checkpoint().to_bytes()
        with pytest.raises(CheckpointError, match="truncated"):
            Checkpoint.from_bytes(blob[:12])

    def test_unknown_format_version_rejected(self):
        blob = bytearray(make_checkpoint().to_bytes())
        blob[8] = 99  # the version byte after the 8-byte magic
        with pytest.raises(CheckpointError, match="version 99"):
            Checkpoint.from_bytes(bytes(blob))

    def test_checkpoint_error_is_serialization_error(self):
        # Callers catching the pre-existing SerializationError keep working.
        assert issubclass(CheckpointError, SerializationError)

    def test_garbage_still_rejected(self):
        with pytest.raises(SerializationError):
            Checkpoint.from_bytes(b"not a checkpoint")

    def test_legacy_envelope_less_blob_loads(self):
        # Blobs written before the integrity envelope are raw npz payloads.
        ckpt = make_checkpoint()
        legacy = ckpt._payload_bytes()
        clone = Checkpoint.from_bytes(legacy)
        np.testing.assert_array_equal(clone.params, ckpt.params)


class TestAtomicSave:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "job.ckpt"
        save_checkpoint(path, make_checkpoint())
        clone = load_checkpoint(path)
        assert clone.epochs_completed == 3

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "job.ckpt"
        save_checkpoint(path, make_checkpoint())
        assert [p.name for p in tmp_path.iterdir()] == ["job.ckpt"]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "job.ckpt"
        save_checkpoint(path, make_checkpoint())
        second = Checkpoint(
            params=np.zeros(2), epochs_completed=5, elapsed_s=1.0
        )
        save_checkpoint(path, second)
        assert load_checkpoint(path).epochs_completed == 5

    def test_corrupted_file_never_half_loads(self, tmp_path):
        path = tmp_path / "job.ckpt"
        save_checkpoint(path, make_checkpoint())
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
