"""Parallel sweep executor: process fan-out equals the serial path exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CallableAlpha, Sweep, TrainingJobConfig, run_configs
from repro.core.parallel import (
    ParallelFallbackWarning,
    default_jobs,
    last_fallback,
    picklable,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def base_config() -> TrainingJobConfig:
    return TrainingJobConfig(max_epochs=1, num_shards=8).with_pct(1, 2, 2)


def _assert_same_points(a, b) -> None:
    assert len(a) == len(b)
    for pa, pb in zip(a, b):
        assert pa.overrides == pb.overrides
        assert pa.result.epochs == pb.result.epochs
        assert pa.result.counters == pb.result.counters


class TestRunConfigs:
    def test_parallel_equals_serial(self, base_config):
        configs = [
            base_config.with_pct(p, 2, 2) for p in (1, 2)
        ]
        serial = run_configs(configs, jobs=1)
        parallel = run_configs(configs, jobs=2)
        for (r1, _), (r2, _) in zip(serial, parallel):
            assert r1.epochs == r2.epochs
            assert r1.counters == r2.counters

    def test_results_come_back_in_input_order(self, base_config):
        configs = [base_config.with_pct(p, 2, 2) for p in (2, 1)]
        outcomes = run_configs(configs, jobs=2)
        # Each result's label leads with its config's P/C/T tag.
        for (result, _), config in zip(outcomes, configs):
            assert result.label.startswith(config.label)

    def test_collect_telemetry(self, base_config):
        outcomes = run_configs([base_config], jobs=2, collect_telemetry=True)
        (_, telemetry), = outcomes
        assert telemetry is not None and "digest" in telemetry

    def test_without_telemetry_flag_none(self, base_config):
        (_, telemetry), = run_configs([base_config], jobs=1)
        assert telemetry is None

    def test_unpicklable_config_falls_back_to_serial(self, base_config):
        sneaky = base_config.with_alpha(CallableAlpha(lambda e: 0.9))
        assert not picklable([sneaky])
        with pytest.warns(ParallelFallbackWarning):
            (result, _), = run_configs([sneaky], jobs=4)
        assert len(result.epochs) == 1

    def test_fallback_is_loud_and_recorded(self, base_config):
        """Forced serial degradation publishes a record on every channel:
        warning, ``last_fallback`` and the ``on_fallback`` callback."""
        sneaky = base_config.with_alpha(CallableAlpha(lambda e: 0.9))
        seen: list = []
        with pytest.warns(ParallelFallbackWarning, match="parallel.fallback"):
            run_configs([sneaky, sneaky], jobs=3, on_fallback=seen.append)
        fallback = last_fallback()
        assert fallback is not None
        assert fallback.kind == "parallel.fallback"
        assert fallback.requested_jobs == 3
        assert fallback.configs == 2
        assert fallback.reason == "unpicklable_config"
        assert seen == [fallback]

    def test_clean_run_resets_last_fallback(self, base_config):
        sneaky = base_config.with_alpha(CallableAlpha(lambda e: 0.9))
        with pytest.warns(ParallelFallbackWarning):
            run_configs([sneaky], jobs=2)
        assert last_fallback() is not None
        run_configs([base_config], jobs=1)
        assert last_fallback() is None

    def test_jobs_below_one_rejected(self, base_config):
        with pytest.raises(ConfigurationError):
            run_configs([base_config], jobs=0)

    def test_empty_config_list(self):
        assert run_configs([], jobs=4) == []

    def test_progress_called_in_order(self, base_config):
        configs = [base_config.with_pct(p, 2, 2) for p in (1, 2)]
        seen: list[int] = []
        run_configs(configs, jobs=2, progress=lambda i, r: seen.append(i))
        assert seen == [0, 1]


class TestSweepJobs:
    def _sweep(self, base: TrainingJobConfig) -> Sweep:
        sweep = Sweep(base)
        sweep.axis("num_param_servers", [1, 2])
        sweep.axis("max_concurrent_subtasks", [2])
        return sweep

    def test_sweep_parallel_equals_serial(self, base_config):
        serial = self._sweep(base_config)
        serial.run()
        parallel = self._sweep(base_config)
        parallel.run(jobs=2)
        _assert_same_points(serial.points, parallel.points)

    def test_custom_runner_stays_serial(self, base_config):
        calls: list[str] = []

        def recording_runner(config):
            from repro.core import run_experiment

            calls.append(config.label)
            return run_experiment(config)

        sweep = Sweep(base_config, runner=recording_runner)
        sweep.axis("num_param_servers", [1, 2])
        sweep.run(jobs=4)  # closure can't cross processes; must run here
        assert len(calls) == 2
        assert len(sweep.points) == 2

    def test_progress_fires_per_point(self, base_config):
        sweep = self._sweep(base_config)
        labels: list[str] = []
        sweep.run(progress=lambda p: labels.append(p.label()), jobs=2)
        assert labels == [p.label() for p in sweep.points]


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_determinism_across_executors(base_config):
    """The same grid swept twice in different modes is byte-equal."""
    from repro.nn.serialization import state_checksum

    def digest(points) -> str:
        accs = np.concatenate(
            [np.asarray(p.result.val_accuracy(), dtype=np.float64) for p in points]
        )
        return state_checksum({"accs": accs})

    a = Sweep(base_config).axis("num_clients", [2, 3])
    a.run(jobs=2)
    b = Sweep(base_config).axis("num_clients", [2, 3])
    b.run()
    assert digest(a.points) == digest(b.points)
