"""Golden four-combo regression: the execution plane is invisible in the bits.

One P1C3T2 run, four execution configurations — serial baseline, cohort
fusion on, shared-plane process pool on, both on.  All four must hash to
the same golden digest over final parameters, counters, epoch records and
the full trace-kind census.  Any drift means the multi-core plane leaked
into the simulation: an extra RNG draw, a reordered batch permutation, a
stray trace record, or float ops reassociated by the stacked kernels.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter

import pytest

from repro.core import DistributedRunner

from .test_runner import tiny_config

# Captured on the serial path when the plane landed (DESIGN.md §8.5).
# This is the *default-path* digest: if it moves, default runs changed.
GOLDEN_P1C3T2 = (
    "7d17db9b18a335a4326d274d051597c804f488c740f1ccb114cf97060a691be4"
)

COMBOS = {
    "serial": dict(),
    "cohort": dict(cohort_size=4),
    "pool": dict(step_jobs=2),
    "cohort+pool": dict(cohort_size=4, step_jobs=2),
}


def run_digest(config) -> str:
    runner = DistributedRunner(config)
    result = runner.run()
    h = hashlib.sha256()
    h.update(runner.pool.current_params().tobytes())
    h.update(json.dumps(result.counters, sort_keys=True).encode())
    h.update(
        json.dumps(
            [
                [e.end_time_s, e.val_accuracy_mean, e.test_accuracy]
                for e in result.epochs
            ]
        ).encode()
    )
    kinds = Counter(rec.kind for rec in runner.trace)
    h.update(json.dumps(sorted(kinds.items())).encode())
    return h.hexdigest()


@pytest.mark.parametrize("combo", sorted(COMBOS))
def test_every_execution_combo_matches_the_golden(combo):
    config = tiny_config(num_clients=3, **COMBOS[combo])
    assert run_digest(config) == GOLDEN_P1C3T2, (
        f"execution combo {combo!r} drifted from the serial golden"
    )
