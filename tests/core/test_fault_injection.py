"""Malicious/faulty client injection and the replication defence."""

from __future__ import annotations

import pytest

from repro.core import FaultConfig, run_experiment
from repro.errors import ConfigurationError

from .test_runner import tiny_config


class TestCorruptionConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(corrupt_clients=-1)
        with pytest.raises(ConfigurationError):
            FaultConfig(corruption_scale=-0.5)


class TestCorruptionEffects:
    def test_attack_degrades_unprotected_training(self):
        clean = run_experiment(tiny_config(num_clients=3, max_epochs=3))
        attacked = run_experiment(
            tiny_config(
                num_clients=3,
                max_epochs=3,
                faults=FaultConfig(corrupt_clients=1, corruption_scale=3.0),
            )
        )
        assert attacked.final_val_accuracy < clean.final_val_accuracy

    def test_majority_quorum_defends(self):
        """3 replicas / quorum 2: the single corrupt replica is outvoted
        on every logical unit and accuracy matches the clean run."""
        clean = run_experiment(tiny_config(num_clients=3, max_epochs=3))
        defended = run_experiment(
            tiny_config(
                num_clients=3,
                max_epochs=3,
                replicas=3,
                quorum=2,
                faults=FaultConfig(corrupt_clients=1, corruption_scale=3.0),
            )
        )
        assert defended.counters["quorums_reached"] == 18  # 6 shards x 3 epochs
        assert (
            abs(defended.final_val_accuracy - clean.final_val_accuracy) < 0.05
        )

    def test_pair_replication_detects_but_loses_updates(self):
        """2 replicas / quorum 2 cannot outvote: units touched by the
        corrupt client fail quorum and their updates are dropped."""
        result = run_experiment(
            tiny_config(
                num_clients=3,
                max_epochs=2,
                replicas=2,
                quorum=2,
                faults=FaultConfig(corrupt_clients=1, corruption_scale=3.0),
            )
        )
        assert result.counters["quorums_reached"] < 12
        assert result.counters["replica_disagreements"] > 0

    def test_corruption_traced(self):
        from repro.core import DistributedRunner

        runner = DistributedRunner(
            tiny_config(
                num_clients=2,
                max_epochs=1,
                faults=FaultConfig(corrupt_clients=1, corruption_scale=2.0),
            )
        )
        runner.run()
        assert runner.trace.count("fault.corrupt_upload") > 0

    def test_zero_corrupt_clients_is_clean(self):
        a = run_experiment(tiny_config(max_epochs=1))
        b = run_experiment(
            tiny_config(max_epochs=1, faults=FaultConfig(corrupt_clients=0))
        )
        assert a.final_val_accuracy == b.final_val_accuracy
