"""Update-rule fabric integration tests: the ASGD family on the real substrate.

The refactor promotes :class:`UpdateRule` to the core server-side
abstraction: these tests pin down (a) exact backward parity of the default
VC-ASGD path, (b) gradient-carrying rules (Downpour, DC-ASGD, Rescaled
ASGD) running end-to-end through the BOINC pipeline, (c) barrier semantics
for fault-intolerant rules, (d) version tagging / staleness bookkeeping,
and (e) rule state surviving checkpoint/resume.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Checkpoint,
    ConstantAlpha,
    DCASGDRule,
    DistributedRunner,
    DownpourRule,
    EASGDRule,
    FaultConfig,
    LocalTrainingConfig,
    RescaledASGDRule,
    SyncAllReduceRule,
    TrainingJobConfig,
    VarAlpha,
    VCASGDRule,
    make_rule,
)
from repro.core.runner import MAX_BARRIER_RETRIES, VersionedParams
from repro.data import SyntheticImageConfig
from repro.errors import ConfigurationError, TrainingError
from repro.nn.models import ModelSpec


def tiny_config(**overrides) -> TrainingJobConfig:
    defaults = dict(
        num_param_servers=1,
        num_clients=2,
        max_concurrent_subtasks=2,
        model=ModelSpec("mlp", {"in_features": 48, "hidden": [8], "num_classes": 4}),
        data=SyntheticImageConfig(image_size=4, num_classes=4, noise_std=1.5),
        num_train=120,
        num_val=40,
        num_test=40,
        num_shards=6,
        max_epochs=2,
        local_training=LocalTrainingConfig(local_epochs=6, learning_rate=0.01),
        alpha_schedule=ConstantAlpha(0.8),
        seed=77,
    )
    defaults.update(overrides)
    return TrainingJobConfig(**defaults)


class TestDefaultPathParity:
    """update_rule=None must be indistinguishable from the pre-fabric runner."""

    def test_explicit_vcasgd_matches_default(self):
        default = DistributedRunner(tiny_config()).run()
        explicit = DistributedRunner(
            tiny_config(update_rule=VCASGDRule(ConstantAlpha(0.8)))
        ).run()
        assert [e.val_accuracy_mean for e in default.epochs] == [
            e.val_accuracy_mean for e in explicit.epochs
        ]
        assert [e.test_accuracy for e in default.epochs] == [
            e.test_accuracy for e in explicit.epochs
        ]
        assert default.total_time_s == explicit.total_time_s
        assert default.counters == explicit.counters

    def test_labels(self):
        assert DistributedRunner(tiny_config()).result.label == "P1C2T2:alpha=0.8"
        runner = DistributedRunner(
            tiny_config(update_rule=VCASGDRule(ConstantAlpha(0.8)))
        )
        assert runner.result.label == "P1C2T2:VC-ASGD(alpha=0.8)"

    def test_rule_is_deep_copied_per_run(self):
        rule = DCASGDRule(server_lr=0.02)
        config = tiny_config(update_rule=rule, max_epochs=1)
        runner = DistributedRunner(config)
        runner.run()
        assert runner.rule is not rule
        assert runner.rule._backups and not rule._backups


def _spy_on_uploads(runner: DistributedRunner) -> list:
    """Capture every ClientUpdate the fleet produces (clients bind the
    executor at construction, so patch them, not the runner)."""
    captured: list = []
    original = runner._execute_subtask

    def spy(wu, payloads):
        update, nbytes = original(wu, payloads)
        captured.append(update)
        return update, nbytes

    for client in runner.server.clients.values():
        client.executor = spy
    return captured


class TestGradientRulesOnSubstrate:
    """Gradient-consuming rules run end-to-end through the BOINC pipeline."""

    @pytest.mark.parametrize(
        "rule",
        [
            DownpourRule(server_lr=0.002),
            DCASGDRule(server_lr=0.002, lam=0.04),
            RescaledASGDRule(server_lr=0.002),
        ],
        ids=["downpour", "dcasgd", "rescaled"],
    )
    def test_runs_to_completion(self, rule):
        result = DistributedRunner(tiny_config(update_rule=rule)).run()
        assert len(result.epochs) == 2
        assert result.counters["assimilations"] == 12  # 6 shards x 2 epochs
        assert rule.describe().split("(")[0] in result.label

    def test_gradient_rules_move_differently_from_vcasgd(self):
        vc = DistributedRunner(tiny_config(max_epochs=1))
        vc_result = vc.run()
        dp = DistributedRunner(
            tiny_config(max_epochs=1, update_rule=DownpourRule(server_lr=0.002))
        )
        dp_result = dp.run()
        assert not np.allclose(vc.pool.current_params(), dp.pool.current_params())
        # Same substrate events: identical assimilation counts.
        assert (
            vc_result.counters["assimilations"]
            == dp_result.counters["assimilations"]
        )

    def test_dcasgd_accumulates_backups(self):
        runner = DistributedRunner(
            tiny_config(update_rule=DCASGDRule(server_lr=0.002))
        )
        runner.run()
        assert len(runner.rule._backups) > 0
        # Backups are keyed by publish version and bounded.
        assert max(runner.rule._backups) <= runner._param_publish_count
        assert len(runner.rule._backups) <= runner.rule.max_backups

    def test_rescaled_tracks_latest_version(self):
        runner = DistributedRunner(
            tiny_config(update_rule=RescaledASGDRule(server_lr=0.002))
        )
        runner.run()
        assert runner.rule._latest_version == runner._param_publish_count

    def test_vcasgd_clients_skip_gradient_accumulation(self):
        """Parity guard: the default rule must not pay for gradients."""
        runner = DistributedRunner(tiny_config(max_epochs=1))
        captured = _spy_on_uploads(runner)
        runner.run()
        assert captured and all(u.gradient is None for u in captured)

    def test_gradient_rule_clients_upload_gradients(self):
        runner = DistributedRunner(
            tiny_config(max_epochs=1, update_rule=DownpourRule(server_lr=0.002))
        )
        captured = _spy_on_uploads(runner)
        runner.run()
        assert captured
        for update in captured:
            assert update.gradient is not None
            assert update.gradient.shape == update.params.shape
            assert float(np.abs(update.gradient).sum()) > 0.0


class TestBarrierSemantics:
    """Fault-intolerant rules (EASGD, BSP) on the faulty substrate."""

    def test_easgd_fault_free_completes_without_stalls(self):
        result = DistributedRunner(
            tiny_config(update_rule=EASGDRule(moving_rate=0.2))
        ).run()
        assert len(result.epochs) == 2
        assert result.counters["barrier_stalls"] == 0

    def test_fault_tolerant_rules_do_not_report_barrier_counter(self):
        result = DistributedRunner(tiny_config()).run()
        assert "barrier_stalls" not in result.counters

    def test_easgd_stalls_under_preemption(self):
        """The paper's fault-intolerance claim on the real pipeline: when a
        shard's subtask fails permanently, EASGD must reissue it and pay
        wall clock, where VC-ASGD would just proceed."""
        faults = FaultConfig(preemption_hourly_p=0.99, relaunch_delay_s=30.0)
        easgd = DistributedRunner(
            tiny_config(
                update_rule=EASGDRule(moving_rate=0.2),
                faults=faults,
                max_attempts=1,
            )
        ).run()
        assert easgd.counters["barrier_stalls"] >= 1
        assert len(easgd.epochs) == 2  # reissues eventually closed the barrier
        fault_free = DistributedRunner(
            tiny_config(update_rule=EASGDRule(moving_rate=0.2))
        ).run()
        assert easgd.total_time_s > fault_free.total_time_s

    def test_vcasgd_tolerates_same_fault_profile(self):
        faults = FaultConfig(preemption_hourly_p=0.99, relaunch_delay_s=30.0)
        result = DistributedRunner(
            tiny_config(faults=faults, max_attempts=1)
        ).run()
        assert len(result.epochs) == 2
        assert "barrier_stalls" not in result.counters

    def test_barrier_raises_after_retry_budget(self):
        runner = DistributedRunner(
            tiny_config(update_rule=SyncAllReduceRule())
        )
        runner._barrier_round = MAX_BARRIER_RETRIES
        runner._missing_shard_indices = lambda: [0, 3]
        with pytest.raises(TrainingError, match="barrier stalled"):
            runner._barrier_blocked()

    def test_allreduce_runs_fault_free(self):
        result = DistributedRunner(
            tiny_config(update_rule=SyncAllReduceRule())
        ).run()
        assert len(result.epochs) == 2
        assert result.counters["barrier_stalls"] == 0


class TestVersionTagging:
    """Satellite fix: publish versions ride on the payload, no id() table."""

    def test_published_payload_is_versioned(self):
        runner = DistributedRunner(tiny_config())
        published = runner.server.catalog.get("job:params")
        assert isinstance(published.payload, VersionedParams)
        assert published.payload.version == runner._param_publish_count == 1

    def test_no_id_keyed_side_table(self):
        runner = DistributedRunner(tiny_config())
        assert not hasattr(runner, "_payload_versions")

    def test_base_versions_pruned_at_epoch_end(self):
        runner = DistributedRunner(tiny_config())
        runner.run()
        assert runner._wu_base_version == {}

    def test_staleness_samples_survive_refactor(self):
        result = DistributedRunner(tiny_config()).run()
        assert result.counters["mean_staleness_x100"] > 0
        assert result.counters["max_staleness"] >= 1

    def test_replicated_run_tags_frozen_params(self):
        """Frozen per-epoch replica files now carry the real publish
        version instead of an untagged 0."""
        runner = DistributedRunner(tiny_config(replicas=2, quorum=2))
        result = runner.run()
        frozen = runner.server.catalog.get("job:params:e000")
        assert isinstance(frozen.payload, VersionedParams)
        assert frozen.payload.version >= 1
        assert result.counters["quorums_reached"] > 0
        assert len(result.epochs) == 2

    def test_gradient_rule_through_quorum(self):
        """ClientUpdate payloads travel intact through replication."""
        result = DistributedRunner(
            tiny_config(
                replicas=2, quorum=2, update_rule=DCASGDRule(server_lr=0.002)
            )
        ).run()
        assert result.counters["quorums_reached"] == 12
        assert len(result.epochs) == 2


class TestRuleStateCheckpointing:
    def test_checkpoint_blob_roundtrips_rule_state(self):
        rule = DCASGDRule(server_lr=0.01)
        rule.snapshot_sent(1, np.arange(4.0))
        rule.snapshot_sent(2, np.arange(4.0) * 2)
        ckpt = Checkpoint(
            params=np.zeros(4),
            epochs_completed=1,
            elapsed_s=10.0,
            rule_state=rule.state_dict(),
            publish_count=7,
        )
        restored = Checkpoint.from_bytes(ckpt.to_bytes())
        assert restored.publish_count == 7
        fresh = DCASGDRule(server_lr=0.01)
        fresh.load_state_dict(restored.rule_state)
        assert set(fresh._backups) == {1, 2}
        np.testing.assert_array_equal(fresh._backups[2], np.arange(4.0) * 2)

    def test_dcasgd_backups_survive_server_failure(self):
        """Resume must restore delay-compensation state, not reset it."""
        config = tiny_config(
            update_rule=DCASGDRule(server_lr=0.002), max_epochs=1
        )
        first = DistributedRunner(config)
        first.run()
        ckpt = Checkpoint.from_bytes(first.checkpoint().to_bytes())
        assert ckpt.publish_count == first._param_publish_count
        resumed = DistributedRunner(
            tiny_config(
                update_rule=DCASGDRule(server_lr=0.002), max_epochs=2
            ),
            resume_from=ckpt,
        )
        # Backups restored before the constructor's initial publish added
        # one more (at version publish_count + 1).
        for version, backup in first.rule._backups.items():
            np.testing.assert_array_equal(resumed.rule._backups[version], backup)
        assert resumed._param_publish_count == ckpt.publish_count + 1
        result = resumed.run()
        assert [e.epoch for e in result.epochs] == [1, 2]

    def test_stateless_rule_rejects_foreign_state(self):
        with pytest.raises(ConfigurationError, match="stateless"):
            VCASGDRule(ConstantAlpha(0.5)).load_state_dict(
                {"backup:1": np.zeros(3)}
            )

    def test_publish_count_continuity_preserves_staleness_math(self):
        first = DistributedRunner(tiny_config(max_epochs=1))
        first.run()
        resumed = DistributedRunner(
            tiny_config(max_epochs=2), resume_from=first.checkpoint()
        )
        result = resumed.run()
        assert resumed._param_publish_count > first._param_publish_count
        assert result.counters["max_staleness"] < resumed._param_publish_count


class TestMakeRuleFactory:
    def test_every_name_builds(self):
        for name in ("vcasgd", "downpour", "easgd", "dcasgd", "rescaled", "allreduce"):
            assert make_rule(name).describe()

    def test_vcasgd_defaults_to_var_schedule(self):
        rule = make_rule("vcasgd")
        assert isinstance(rule, VCASGDRule)
        assert isinstance(rule.schedule, VarAlpha)

    def test_easgd_translates_constant_alpha(self):
        rule = make_rule("easgd", alpha_schedule=ConstantAlpha(0.999))
        assert isinstance(rule, EASGDRule)
        assert rule.moving_rate == pytest.approx(0.001)

    def test_normalizes_spelling(self):
        assert isinstance(make_rule("DC-ASGD"), DCASGDRule)
        assert isinstance(make_rule("all_reduce"), SyncAllReduceRule)
        assert isinstance(make_rule("SyncAllReduce"), SyncAllReduceRule)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown update rule"):
            make_rule("federated-dreams")
