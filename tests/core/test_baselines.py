"""Baseline comparator tests: single-instance, update rules, round harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstantAlpha, LocalTrainingConfig, TrainingJobConfig
from repro.core.baselines import (
    ClientUpdate,
    DCASGDRule,
    DownpourRule,
    EASGDRule,
    SyncAllReduceRule,
    RoundConfig,
    RoundHarness,
    SingleInstanceTrainer,
    VCASGDRule,
    run_single_instance,
)
from repro.data import SyntheticImageConfig
from repro.errors import ConfigurationError
from repro.nn.models import ModelSpec


def tiny_job(**overrides) -> TrainingJobConfig:
    defaults = dict(
        model=ModelSpec("mlp", {"in_features": 48, "hidden": [8], "num_classes": 4}),
        data=SyntheticImageConfig(image_size=4, num_classes=4, noise_std=1.5),
        num_train=120,
        num_val=40,
        num_test=40,
        max_epochs=3,
        local_training=LocalTrainingConfig(local_epochs=2, learning_rate=0.01),
        seed=5,
    )
    defaults.update(overrides)
    return TrainingJobConfig(**defaults)


class TestSingleInstance:
    def test_runs_and_learns(self):
        result = run_single_instance(tiny_job(max_epochs=8))
        assert len(result.epochs) == 8
        assert result.final_val_accuracy > 0.4  # chance = 0.25
        assert result.stopped_reason == "max_epochs"

    def test_simulated_clock_advances_uniformly(self):
        result = run_single_instance(tiny_job())
        times = [e.end_time_s for e in result.epochs]
        deltas = np.diff(times)
        np.testing.assert_allclose(deltas, deltas[0])

    def test_epoch_time_matches_work_model(self):
        cfg = tiny_job()
        trainer = SingleInstanceTrainer(cfg)
        expected = (
            cfg.num_shards * cfg.work_units_per_subtask
            + cfg.validation_work_units
        ) / cfg.server_spec.total_rate
        assert trainer.epoch_seconds == pytest.approx(expected)

    def test_target_accuracy_stops(self):
        result = run_single_instance(tiny_job(max_epochs=50, target_accuracy=0.4))
        assert result.stopped_reason == "target_accuracy"
        assert len(result.epochs) < 50

    def test_passes_per_epoch_default_is_local_epochs(self):
        cfg = tiny_job()
        assert SingleInstanceTrainer(cfg).passes_per_epoch == 2

    def test_explicit_passes_validated(self):
        with pytest.raises(ConfigurationError):
            SingleInstanceTrainer(tiny_job(), passes_per_epoch=0)

    def test_more_passes_learn_faster_per_epoch(self):
        lazy = run_single_instance(tiny_job(max_epochs=2), passes_per_epoch=1)
        eager = run_single_instance(tiny_job(max_epochs=2), passes_per_epoch=6)
        assert eager.final_val_accuracy >= lazy.final_val_accuracy

    def test_no_spread_in_records(self):
        result = run_single_instance(tiny_job())
        rec = result.epochs[0]
        assert rec.val_accuracy_min == rec.val_accuracy_mean == rec.val_accuracy_max

    def test_sgd_optimizer_option(self):
        cfg = tiny_job(
            local_training=LocalTrainingConfig(optimizer="sgd", learning_rate=0.05)
        )
        result = run_single_instance(cfg)
        assert len(result.epochs) == 3


class TestUpdateRules:
    def update(self, rng, n=6, version=0) -> ClientUpdate:
        return ClientUpdate(
            client_id=0,
            params=rng.normal(size=n),
            gradient=rng.normal(size=n),
            base_version=version,
        )

    def test_vcasgd_rule_matches_merge(self, rng):
        rule = VCASGDRule(ConstantAlpha(0.9))
        server = rng.normal(size=6)
        upd = self.update(rng)
        out = rule.apply(server, upd, epoch=1)
        np.testing.assert_allclose(out, 0.9 * server + 0.1 * upd.params)
        assert rule.fault_tolerant

    def test_downpour_applies_gradient(self, rng):
        rule = DownpourRule(server_lr=0.1)
        server = rng.normal(size=6)
        upd = self.update(rng)
        np.testing.assert_allclose(
            rule.apply(server, upd, 1), server - 0.1 * upd.gradient
        )

    def test_downpour_validates_lr(self):
        with pytest.raises(ConfigurationError):
            DownpourRule(server_lr=0.0)

    def test_easgd_equals_vcasgd_with_complement_alpha(self, rng):
        """EASGD server move with β is algebraically VC-ASGD with α=1−β."""
        beta = 0.001
        server = rng.normal(size=6)
        upd = self.update(rng)
        easgd = EASGDRule(moving_rate=beta).apply(server.copy(), upd, 1)
        vc = VCASGDRule(ConstantAlpha(1.0 - beta)).apply(server.copy(), upd, 1)
        np.testing.assert_allclose(easgd, vc, rtol=1e-12)

    def test_easgd_not_fault_tolerant(self):
        assert not EASGDRule().fault_tolerant

    def test_easgd_validates_rate(self):
        with pytest.raises(ConfigurationError):
            EASGDRule(moving_rate=0.0)

    def test_dcasgd_without_backup_is_downpour(self, rng):
        server = rng.normal(size=6)
        upd = self.update(rng, version=42)  # no snapshot recorded
        dc = DCASGDRule(server_lr=0.1, lam=0.5).apply(server.copy(), upd, 1)
        plain = DownpourRule(server_lr=0.1).apply(server.copy(), upd, 1)
        np.testing.assert_allclose(dc, plain)

    def test_dcasgd_compensates_delay(self, rng):
        rule = DCASGDRule(server_lr=0.1, lam=0.5)
        backup = rng.normal(size=6)
        rule.snapshot_sent(0, backup)
        moved_server = backup + 1.0  # server moved since the snapshot
        upd = self.update(rng, version=0)
        out = rule.apply(moved_server, upd, 1)
        g = upd.gradient
        expected = moved_server - 0.1 * (g + 0.5 * g * g * (moved_server - backup))
        np.testing.assert_allclose(out, expected)

    def test_dcasgd_validates(self):
        with pytest.raises(ConfigurationError):
            DCASGDRule(server_lr=-1)

    def test_describe_strings(self):
        assert "VC-ASGD" in VCASGDRule(ConstantAlpha(0.9)).describe()
        assert "Downpour" in DownpourRule().describe()
        assert "EASGD" in EASGDRule().describe()
        assert "DC-ASGD" in DCASGDRule().describe()
        assert "SyncAllReduce" in SyncAllReduceRule().describe()

    def test_allreduce_computes_exact_mean(self, rng):
        rule = SyncAllReduceRule()
        vecs = [rng.normal(size=5) for _ in range(4)]
        server = rng.normal(size=5)  # overwritten by the first arrival
        for i, v in enumerate(vecs):
            server = rule.apply(
                server, ClientUpdate(i, v, np.zeros(5), 0), epoch=1
            )
        np.testing.assert_allclose(server, np.mean(vecs, axis=0), rtol=1e-12)

    def test_allreduce_resets_per_round(self, rng):
        rule = SyncAllReduceRule()
        a = rng.normal(size=3)
        b = rng.normal(size=3)
        server = rule.apply(np.zeros(3), ClientUpdate(0, a, a * 0, 0), epoch=1)
        server = rule.apply(server, ClientUpdate(0, b, b * 0, 1), epoch=2)
        np.testing.assert_allclose(server, b)  # round 2 restarts the mean

    def test_allreduce_not_fault_tolerant(self):
        assert not SyncAllReduceRule().fault_tolerant

    def test_allreduce_on_round_harness(self):
        harness = RoundHarness(tiny_round_config(num_rounds=6))
        result = harness.run(SyncAllReduceRule())
        assert result.final_accuracy > 0.4  # BSP learns fine with no faults

    def test_allreduce_stalls_under_dropout_like_easgd(self):
        cfg = tiny_round_config(dropout_p=0.4, num_rounds=5)
        result = RoundHarness(cfg).run(SyncAllReduceRule())
        assert result.total_stalls > 0


def tiny_round_config(**overrides) -> RoundConfig:
    defaults = dict(
        num_clients=3,
        num_rounds=4,
        local_steps=4,
        batch_size=10,
        model=ModelSpec("mlp", {"in_features": 48, "hidden": [8], "num_classes": 4}),
        data=SyntheticImageConfig(image_size=4, num_classes=4, noise_std=1.2),
        num_train=120,
        num_val=60,
        seed=3,
    )
    defaults.update(overrides)
    return RoundConfig(**defaults)


class TestRoundHarness:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RoundConfig(num_clients=0)
        with pytest.raises(ConfigurationError):
            RoundConfig(dropout_p=1.0)

    def test_vcasgd_learns(self):
        harness = RoundHarness(tiny_round_config(num_rounds=8))
        result = harness.run(VCASGDRule(ConstantAlpha(0.6)))
        assert result.final_accuracy > 0.4
        assert len(result.records) == 8

    def test_all_rules_run_on_same_substrate(self):
        harness = RoundHarness(tiny_round_config())
        for rule in [
            VCASGDRule(ConstantAlpha(0.7)),
            DownpourRule(server_lr=0.02),
            EASGDRule(moving_rate=0.2),
            DCASGDRule(server_lr=0.02),
        ]:
            result = harness.run(rule)
            assert len(result.records) == 4
            assert all(0.0 <= r.val_accuracy <= 1.0 for r in result.records)

    def test_no_dropout_no_stalls(self):
        harness = RoundHarness(tiny_round_config(dropout_p=0.0))
        result = harness.run(EASGDRule(moving_rate=0.2))
        assert result.total_stalls == 0

    def test_easgd_stalls_under_dropout(self):
        """The §III-C fault-intolerance argument: barrier rules pay wall
        clock for dropouts, fault-tolerant rules do not."""
        cfg = tiny_round_config(dropout_p=0.4, num_rounds=6)
        harness = RoundHarness(cfg)
        easgd = harness.run(EASGDRule(moving_rate=0.2))
        vc = harness.run(VCASGDRule(ConstantAlpha(0.7)))
        assert easgd.total_stalls > 0
        assert easgd.total_time_s > vc.total_time_s

    def test_dropout_reduces_reported_updates(self):
        cfg = tiny_round_config(dropout_p=0.5, num_rounds=6)
        result = RoundHarness(cfg).run(VCASGDRule(ConstantAlpha(0.7)))
        reported = [r.reported for r in result.records]
        assert min(reported) < cfg.num_clients

    def test_accuracy_series_shapes(self):
        result = RoundHarness(tiny_round_config()).run(DownpourRule(server_lr=0.02))
        t, a = result.accuracy_series()
        assert t.shape == a.shape == (4,)
        assert np.all(np.diff(t) > 0)
