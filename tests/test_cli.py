"""CLI tests: parsing and end-to-end command execution."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.servers == 3 and args.clients == 3 and args.concurrency == 2
        assert args.alpha == "var"

    def test_run_short_flags(self):
        args = build_parser().parse_args(["run", "-p", "5", "-c", "5", "-t", "8"])
        assert (args.servers, args.clients, args.concurrency) == (5, 5, 8)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_store_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--store", "dynamo"])

    def test_rule_default_and_choices(self):
        args = build_parser().parse_args(["run"])
        assert args.rule == "vcasgd"
        args = build_parser().parse_args(["run", "--rule", "dcasgd"])
        assert args.rule == "dcasgd"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--rule", "hogwild"])

    def test_sweep_rule_flag(self):
        args = build_parser().parse_args(["sweep", "--rule", "vcasgd,easgd"])
        assert args.rule == "vcasgd,easgd"

    def test_server_lr_flag(self):
        args = build_parser().parse_args(["run", "--rule", "dcasgd", "--server-lr", "0.005"])
        assert args.server_lr == 0.005
        assert build_parser().parse_args(["run"]).server_lr is None

    def test_server_lr_reaches_gradient_rules_only(self):
        from repro.cli import _parse_rule
        from repro.core import VarAlpha

        rule = _parse_rule("dcasgd", VarAlpha(), 0.005)
        assert rule.server_lr == 0.005
        assert _parse_rule("vcasgd", VarAlpha(), 0.005) is None
        assert _parse_rule("easgd", VarAlpha(), 0.005) is not None  # lr ignored


class TestCommands:
    def test_cost_command(self, capsys):
        assert main(["cost", "--hours", "8"]) == 0
        out = capsys.readouterr().out
        assert "standard" in out and "preemptible" in out
        assert "13.36" in out and "4.01" in out

    def test_preempt_model_command(self, capsys):
        assert main(["preempt-model"]) == 0
        out = capsys.readouterr().out
        assert "n=200" in out
        assert "50" in out and "200" in out  # the paper's delay minutes

    def test_run_command_tiny(self, capsys):
        code = main(
            [
                "run",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "1",
                "--shards", "6",
                "--alpha", "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "val acc" in out and "stopped: max_epochs" in out

    def test_run_with_checkpoint_roundtrip(self, tmp_path, capsys):
        ckpt = tmp_path / "job.npz"
        assert main(
            [
                "run",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "1",
                "--shards", "6",
                "--alpha", "0.9",
                "--checkpoint-out", str(ckpt),
            ]
        ) == 0
        assert ckpt.exists()
        assert main(
            [
                "run",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "2",
                "--shards", "6",
                "--alpha", "0.9",
                "--resume", str(ckpt),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2" in out

    def test_run_command_with_rule(self, capsys):
        code = main(
            [
                "run",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "1",
                "--shards", "6",
                "--rule", "rescaled",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "val acc" in out and "stopped: max_epochs" in out

    def test_sweep_command_with_rule_axis(self, capsys):
        code = main(
            [
                "sweep",
                "-p", "1",
                "-c", "2",
                "-t", "2",
                "--epochs", "1",
                "--shards", "4",
                "--rule", "vcasgd,downpour",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "update_rule" in out
        assert "VC-ASGD" in out and "Downpour" in out

    def test_single_command(self, capsys):
        assert main(["single", "--epochs", "1"]) == 0
        assert "val acc" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "-p", "1",
                "-c", "2",
                "-t", "1,2",
                "--epochs", "1",
                "--shards", "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep results" in out
        assert "fastest:" in out and "highest accuracy:" in out

    def test_alpha_study_command(self, capsys):
        code = main(
            [
                "alpha-study",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "2",
                "--alphas", "0.8,var",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha=0.8" in out and "e/(e+1)" in out
