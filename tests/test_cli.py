"""CLI tests: parsing and end-to-end command execution."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.servers == 3 and args.clients == 3 and args.concurrency == 2
        assert args.alpha == "var"

    def test_run_short_flags(self):
        args = build_parser().parse_args(["run", "-p", "5", "-c", "5", "-t", "8"])
        assert (args.servers, args.clients, args.concurrency) == (5, 5, 8)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_store_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--store", "dynamo"])

    def test_rule_default_and_choices(self):
        args = build_parser().parse_args(["run"])
        assert args.rule == "vcasgd"
        args = build_parser().parse_args(["run", "--rule", "dcasgd"])
        assert args.rule == "dcasgd"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--rule", "hogwild"])

    def test_sweep_rule_flag(self):
        args = build_parser().parse_args(["sweep", "--rule", "vcasgd,easgd"])
        assert args.rule == "vcasgd,easgd"

    def test_server_lr_flag(self):
        args = build_parser().parse_args(["run", "--rule", "dcasgd", "--server-lr", "0.005"])
        assert args.server_lr == 0.005
        assert build_parser().parse_args(["run"]).server_lr is None

    def test_server_lr_reaches_gradient_rules_only(self):
        from repro.cli import _parse_rule
        from repro.core import VarAlpha

        rule = _parse_rule("dcasgd", VarAlpha(), 0.005)
        assert rule.server_lr == 0.005
        assert _parse_rule("vcasgd", VarAlpha(), 0.005) is None
        assert _parse_rule("easgd", VarAlpha(), 0.005) is not None  # lr ignored


class TestCommands:
    def test_cost_command(self, capsys):
        assert main(["cost", "--hours", "8"]) == 0
        out = capsys.readouterr().out
        assert "standard" in out and "preemptible" in out
        assert "13.36" in out and "4.01" in out

    def test_preempt_model_command(self, capsys):
        assert main(["preempt-model"]) == 0
        out = capsys.readouterr().out
        assert "n=200" in out
        assert "50" in out and "200" in out  # the paper's delay minutes

    def test_run_command_tiny(self, capsys):
        code = main(
            [
                "run",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "1",
                "--shards", "6",
                "--alpha", "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "val acc" in out and "stopped: max_epochs" in out

    def test_run_with_checkpoint_roundtrip(self, tmp_path, capsys):
        ckpt = tmp_path / "job.npz"
        assert main(
            [
                "run",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "1",
                "--shards", "6",
                "--alpha", "0.9",
                "--checkpoint-out", str(ckpt),
            ]
        ) == 0
        assert ckpt.exists()
        assert main(
            [
                "run",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "2",
                "--shards", "6",
                "--alpha", "0.9",
                "--resume", str(ckpt),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2" in out

    def test_run_command_with_rule(self, capsys):
        code = main(
            [
                "run",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "1",
                "--shards", "6",
                "--rule", "rescaled",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "val acc" in out and "stopped: max_epochs" in out

    def test_sweep_command_with_rule_axis(self, capsys):
        code = main(
            [
                "sweep",
                "-p", "1",
                "-c", "2",
                "-t", "2",
                "--epochs", "1",
                "--shards", "4",
                "--rule", "vcasgd,downpour",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "update_rule" in out
        assert "VC-ASGD" in out and "Downpour" in out

    def test_single_command(self, capsys):
        assert main(["single", "--epochs", "1"]) == 0
        assert "val acc" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "-p", "1",
                "-c", "2",
                "-t", "1,2",
                "--epochs", "1",
                "--shards", "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep results" in out
        assert "fastest:" in out and "highest accuracy:" in out

    def test_alpha_study_command(self, capsys):
        code = main(
            [
                "alpha-study",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "2",
                "--alphas", "0.8,var",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha=0.8" in out and "e/(e+1)" in out


class TestFaultFlags:
    def test_fleet_fault_flags(self):
        args = build_parser().parse_args(
            [
                "run",
                "--preempt-p", "0.1",
                "--corrupt-clients", "2",
                "--corruption-scale", "5.0",
                "--churn-per-hour", "3.0",
                "--max-volunteers", "9",
            ]
        )
        assert args.preempt_p == 0.1
        assert args.corrupt_clients == 2
        assert args.corruption_scale == 5.0
        assert args.churn_per_hour == 3.0
        assert args.max_volunteers == 9

    def test_fleet_flags_reach_fault_config(self):
        from repro.cli import _parse_faults

        args = build_parser().parse_args(
            ["run", "--corrupt-clients", "1", "--churn-per-hour", "2.0",
             "--max-volunteers", "4"]
        )
        faults = _parse_faults(args)
        assert faults.corrupt_clients == 1
        assert faults.volunteer_arrivals_per_hour == 2.0
        assert faults.max_volunteers == 4
        assert faults.chaos is None  # no chaos flags -> no plan

    def test_chaos_flags_build_plan(self):
        from repro.cli import _parse_faults

        args = build_parser().parse_args(
            [
                "run",
                "--xfer-fail-p", "0.05",
                "--xfer-stall-p", "0.01",
                "--xfer-stall-timeout", "45",
                "--partition", "100:50",
                "--partition", "300:20:c1,c2",
                "--ps-crash", "400:60",
                "--ps-crash", "900:never",
                "--kv-outage", "200:30",
                "--kv-degrade", "500:100:4.0",
                "--no-chaos-restore",
            ]
        )
        plan = _parse_faults(args).chaos
        assert plan is not None and plan.active
        assert plan.transfer.failure_p == 0.05
        assert plan.transfer.stall_p == 0.01
        assert plan.transfer.stall_timeout_s == 45.0
        assert plan.partitions[0].clients == ()  # whole fleet
        assert plan.partitions[1].clients == ("c1", "c2")
        assert plan.ps_crashes[0].at_s == 400.0
        assert plan.ps_crashes[0].restart_delay_s == 60.0
        assert plan.ps_crashes[1].restart_delay_s is None  # never restarts
        outage, degraded = plan.kv_windows
        assert outage.latency_factor is None  # hard outage
        assert degraded.latency_factor == 4.0
        assert plan.restore_from_checkpoint is False

    def test_ps_crash_default_restart_delay(self):
        from repro.cli import _parse_ps_crash

        crash = _parse_ps_crash("250")
        assert crash.at_s == 250.0 and crash.restart_delay_s == 120.0

    def test_malformed_windows_rejected(self):
        from repro.cli import _parse_kv_degrade, _parse_partition

        with pytest.raises(SystemExit):
            _parse_partition("100")  # missing duration
        with pytest.raises(SystemExit):
            _parse_kv_degrade("100:50")  # missing factor

    def test_sweep_accepts_chaos_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--xfer-fail-p", "0.1", "--ps-crash", "500",
             "--max-volunteers", "4"]
        )
        assert args.xfer_fail_p == 0.1
        assert args.ps_crash == ["500"]
        assert args.max_volunteers == 4

    def test_run_command_tiny_with_chaos(self, capsys):
        code = main(
            [
                "run",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "1",
                "--shards", "6",
                "--alpha", "0.9",
                "--xfer-fail-p", "0.2",
                "--kv-outage", "10:20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stopped: max_epochs" in out
        assert "transfer_failures" in out  # chaos counters reported


class TestTraceCommand:
    _RUN = [
        "run",
        "-p", "1", "-c", "2", "-t", "2",
        "--epochs", "2",
        "--shards", "4",
        "--alpha", "0.9",
        "--seed", "7",
    ]

    @pytest.fixture()
    def dump(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(self._RUN + ["--trace-out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_run_writes_trace_dump(self, dump):
        first = dump.read_text().splitlines()[0]
        assert '"schema": "repro.trace"' in first

    def test_trace_summary(self, dump, capsys):
        assert main(["trace", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "workunit lineages" in out
        assert "span durations" in out
        assert "staleness" in out
        assert "lineage problem" not in out

    def test_trace_critical_path_sums_to_wall_clock(self, dump, capsys):
        assert main(["trace", str(dump), "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "= wall clock to last epoch" in out

    def test_trace_wu_drilldown(self, dump, capsys):
        assert main(["trace", str(dump), "--wu", "job:e000:s000"]) == 0
        out = capsys.readouterr().out
        assert "workunit job:e000:s000" in out
        assert "client.train" in out

    def test_trace_unknown_wu_exits_loudly(self, dump):
        with pytest.raises(SystemExit, match="unknown workunit"):
            main(["trace", str(dump), "--wu", "nope"])

    def test_trace_perfetto_export(self, dump, tmp_path, capsys):
        out_path = tmp_path / "perfetto.json"
        assert main(["trace", str(dump), "--perfetto", str(out_path)]) == 0
        import json as _json

        from repro.obs import validate_perfetto

        doc = _json.loads(out_path.read_text())
        assert validate_perfetto(doc) == []

    def test_trace_max_records_bounds_dump(self, tmp_path, capsys):
        path = tmp_path / "bounded.jsonl"
        assert main(
            self._RUN + ["--trace-out", str(path), "--trace-max-records", "20"]
        ) == 0
        capsys.readouterr()
        lines = path.read_text().splitlines()
        assert len(lines) == 21  # header + ring of 20
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "history is partial" in out
