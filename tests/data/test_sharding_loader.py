"""Sharding (work-generator split) and batch loader tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BatchLoader, Dataset, shard_name, split_dataset
from repro.errors import ConfigurationError


@pytest.fixture
def ds(rng) -> Dataset:
    x = rng.normal(size=(100, 4))
    y = np.arange(100) % 5
    return Dataset(x, y)


class TestSplitDataset:
    def test_covers_all_samples_once(self, ds, rng):
        shards = split_dataset(ds, 7, rng=rng)
        total = sum(len(s) for s in shards)
        assert total == len(ds)
        seen = np.concatenate([s.x[:, 0] for s in shards])
        assert len(np.unique(seen)) == len(ds)

    def test_sizes_differ_by_at_most_one(self, ds, rng):
        shards = split_dataset(ds, 7, rng=rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_contiguous_strategy(self, ds):
        shards = split_dataset(ds, 4, strategy="contiguous")
        np.testing.assert_array_equal(shards[0].x, ds.x[:25])

    def test_shuffled_requires_rng(self, ds):
        with pytest.raises(ConfigurationError):
            split_dataset(ds, 4, strategy="shuffled")

    def test_stratified_balances_classes(self, ds):
        shards = split_dataset(ds, 5, strategy="stratified")
        for shard in shards:
            counts = shard.class_counts()
            assert max(counts) - min(counts) <= 1

    def test_unknown_strategy(self, ds, rng):
        with pytest.raises(ConfigurationError):
            split_dataset(ds, 4, rng=rng, strategy="roundrobin")

    def test_too_many_shards(self, ds, rng):
        with pytest.raises(ConfigurationError):
            split_dataset(ds, 101, rng=rng)

    def test_nonpositive_shards(self, ds, rng):
        with pytest.raises(ConfigurationError):
            split_dataset(ds, 0, rng=rng)

    def test_shard_names_stable(self, ds, rng):
        shards = split_dataset(ds, 50, rng=rng)
        assert shards[7].name == "shard-07-of-50"
        assert shard_name(7, 50) == "shard-07-of-50"

    def test_deterministic_given_seed(self, ds):
        a = split_dataset(ds, 5, rng=np.random.default_rng(3))
        b = split_dataset(ds, 5, rng=np.random.default_rng(3))
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(sa.x, sb.x)


class TestBatchLoader:
    def test_batch_count(self, ds):
        assert len(BatchLoader(ds, 32)) == 4  # 100/32 -> 3 full + 1 partial
        assert len(BatchLoader(ds, 32, drop_last=True)) == 3

    def test_iterates_all_samples(self, ds):
        seen = sum(len(xb) for xb, _ in BatchLoader(ds, 7))
        assert seen == 100

    def test_drop_last(self, ds):
        batches = list(BatchLoader(ds, 7, drop_last=True))
        assert all(len(xb) == 7 for xb, _ in batches)

    def test_shuffles_with_rng(self, ds):
        loader = BatchLoader(ds, 100, rng=np.random.default_rng(1))
        (x1, _), = list(loader)
        (x2, _), = list(loader)
        assert not np.array_equal(x1, x2)  # reshuffled each pass

    def test_deterministic_without_rng(self, ds):
        loader = BatchLoader(ds, 100)
        (x1, _), = list(loader)
        np.testing.assert_array_equal(x1, ds.x)

    def test_labels_track_features(self, ds):
        loader = BatchLoader(ds, 13, rng=np.random.default_rng(5))
        lookup = {tuple(row): label for row, label in zip(ds.x, ds.y)}
        for xb, yb in loader:
            for row, label in zip(xb, yb):
                assert lookup[tuple(row)] == label

    def test_invalid_batch_size(self, ds):
        with pytest.raises(ConfigurationError):
            BatchLoader(ds, 0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(10, 60),
    k=st.integers(1, 10),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_split_partition(n, k, seed):
    """Splitting is always a partition: no loss, no duplication."""
    rng = np.random.default_rng(seed)
    ds = Dataset(np.arange(n, dtype=float).reshape(n, 1), np.zeros(n, dtype=int))
    shards = split_dataset(ds, min(k, n), rng=rng)
    values = np.sort(np.concatenate([s.x[:, 0] for s in shards]))
    np.testing.assert_array_equal(values, np.arange(n, dtype=float))
