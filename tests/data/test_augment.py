"""Augmentation pipeline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.augment import (
    compose,
    cutout,
    gaussian_noise,
    random_crop,
    random_horizontal_flip,
)
from repro.errors import ConfigurationError, ShapeError


@pytest.fixture
def batch(rng) -> np.ndarray:
    return rng.normal(size=(8, 3, 6, 6))


class TestFlip:
    def test_always_flip(self, batch, rng):
        out = random_horizontal_flip(p=1.0)(batch, rng)
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_never_flip(self, batch, rng):
        out = random_horizontal_flip(p=0.0)(batch, rng)
        np.testing.assert_array_equal(out, batch)

    def test_partial_flip(self, batch):
        rng = np.random.default_rng(0)
        out = random_horizontal_flip(p=0.5)(batch, rng)
        flipped = sum(
            np.array_equal(out[i], batch[i, :, :, ::-1]) for i in range(len(batch))
        )
        assert 0 < flipped < len(batch)

    def test_does_not_mutate_input(self, batch, rng):
        original = batch.copy()
        random_horizontal_flip(p=1.0)(batch, rng)
        np.testing.assert_array_equal(batch, original)

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            random_horizontal_flip(p=1.5)

    def test_rejects_non_nchw(self, rng):
        with pytest.raises(ShapeError):
            random_horizontal_flip()(np.zeros((3, 4)), rng)


class TestCrop:
    def test_shape_preserved(self, batch, rng):
        out = random_crop(padding=2)(batch, rng)
        assert out.shape == batch.shape

    def test_content_is_shifted_window(self, rng):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = random_crop(padding=1)(x, rng)
        # Every output value is either 0 (padding) or from the original.
        assert set(np.unique(out)) <= set(np.unique(x)) | {0.0}

    def test_offsets_vary(self):
        x = np.arange(36.0).reshape(1, 1, 6, 6).repeat(16, axis=0)
        rng = np.random.default_rng(1)
        out = random_crop(padding=1)(x, rng)
        distinct = {out[i].tobytes() for i in range(16)}
        assert len(distinct) > 1

    def test_invalid_padding(self):
        with pytest.raises(ConfigurationError):
            random_crop(padding=0)


class TestNoise:
    def test_changes_values(self, batch, rng):
        out = gaussian_noise(std=0.5)(batch, rng)
        assert not np.array_equal(out, batch)
        assert abs((out - batch).std() - 0.5) < 0.05

    def test_zero_std_identity_copy(self, batch, rng):
        out = gaussian_noise(std=0.0)(batch, rng)
        np.testing.assert_array_equal(out, batch)
        assert out is not batch

    def test_invalid_std(self):
        with pytest.raises(ConfigurationError):
            gaussian_noise(std=-1.0)


class TestCutout:
    def test_zeroes_square(self, rng):
        x = np.ones((4, 2, 6, 6))
        out = cutout(size=2)(x, rng)
        for i in range(4):
            assert (out[i] == 0).sum() == 2 * 2 * 2  # size^2 x channels

    def test_too_large_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            cutout(size=10)(np.ones((1, 1, 4, 4)), rng)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            cutout(size=0)


class TestCompose:
    def test_chains_transforms(self, rng):
        x = np.ones((2, 1, 4, 4))
        pipeline = compose([cutout(size=1), gaussian_noise(std=0.0)])
        out = pipeline(x, rng)
        assert (out == 0).sum() == 2  # one zeroed pixel per image survives

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            compose([])

    def test_deterministic_given_rng(self, batch):
        pipeline = compose([random_horizontal_flip(), random_crop(), cutout()])
        a = pipeline(batch, np.random.default_rng(5))
        b = pipeline(batch, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
