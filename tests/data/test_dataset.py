"""Dataset container and serialization tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset
from repro.errors import SerializationError, ShapeError


@pytest.fixture
def ds(rng) -> Dataset:
    return Dataset(rng.normal(size=(20, 6)), rng.integers(0, 4, size=20), name="t")


class TestConstruction:
    def test_length_mismatch(self, rng):
        with pytest.raises(ShapeError):
            Dataset(rng.normal(size=(5, 2)), np.zeros(4, dtype=int))

    def test_labels_must_be_1d(self, rng):
        with pytest.raises(ShapeError):
            Dataset(rng.normal(size=(5, 2)), np.zeros((5, 1), dtype=int))

    def test_immutable(self, ds):
        with pytest.raises(ValueError):
            ds.x[0, 0] = 99.0
        with pytest.raises(ValueError):
            ds.y[0] = 1

    def test_len_and_repr(self, ds):
        assert len(ds) == 20
        assert "20 samples" in repr(ds)

    def test_num_classes(self, rng):
        ds = Dataset(rng.normal(size=(6, 2)), np.array([0, 1, 2, 2, 1, 0]))
        assert ds.num_classes == 3

    def test_empty_num_classes(self):
        ds = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int))
        assert ds.num_classes == 0


class TestOperations:
    def test_subset_copies(self, ds):
        sub = ds.subset(np.array([1, 3, 5]), name="sub")
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.x[0], ds.x[1])
        assert sub.name == "sub"

    def test_shuffled_preserves_pairs(self, ds, rng):
        shuffled = ds.shuffled(rng)
        assert len(shuffled) == len(ds)
        # Row-label pairing must survive shuffling.
        orig = {tuple(row): label for row, label in zip(ds.x, ds.y)}
        for row, label in zip(shuffled.x, shuffled.y):
            assert orig[tuple(row)] == label

    def test_class_counts(self):
        ds = Dataset(np.zeros((5, 1)), np.array([0, 0, 1, 2, 2]))
        np.testing.assert_array_equal(ds.class_counts(), [2, 1, 2])


class TestSerialization:
    def test_roundtrip(self, ds):
        restored = Dataset.from_bytes(ds.to_bytes())
        np.testing.assert_array_equal(restored.x, ds.x)
        np.testing.assert_array_equal(restored.y, ds.y)
        assert restored.name == ds.name

    def test_uncompressed_roundtrip(self, ds):
        restored = Dataset.from_bytes(ds.to_bytes(compress=False))
        np.testing.assert_array_equal(restored.x, ds.x)

    def test_nbytes_positive_and_compression_helps(self):
        ds = Dataset(np.zeros((100, 50)), np.zeros(100, dtype=int))
        assert 0 < ds.nbytes(compress=True) < ds.nbytes(compress=False)

    def test_garbage_raises(self):
        with pytest.raises(SerializationError):
            Dataset.from_bytes(b"garbage")
