"""Time-series substrate tests (§V workload)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    TimeSeriesConfig,
    generate_series,
    train_val_split_series,
    windowed_dataset,
)
from repro.errors import ConfigurationError


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"length": 4},
            {"seasonal_period": 1},
            {"ar_coefficient": 1.0},
            {"noise_std": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            TimeSeriesConfig(**kwargs)


class TestGeneration:
    def test_shape_and_determinism(self):
        cfg = TimeSeriesConfig(length=200)
        a = generate_series(cfg, np.random.default_rng(1))
        b = generate_series(cfg, np.random.default_rng(1))
        assert a.shape == (200,)
        np.testing.assert_array_equal(a, b)

    def test_trend_dominates_long_run(self):
        cfg = TimeSeriesConfig(length=4000, trend_slope=0.01, noise_std=0.1)
        series = generate_series(cfg, np.random.default_rng(0))
        assert series[-500:].mean() > series[:500].mean()

    def test_seasonality_visible(self):
        cfg = TimeSeriesConfig(
            length=960, trend_slope=0.0, seasonal_amplitude=2.0, noise_std=0.05
        )
        series = generate_series(cfg, np.random.default_rng(0))
        # Autocorrelation at the seasonal lag should be strongly positive.
        lag = cfg.seasonal_period
        a = series[:-lag] - series[:-lag].mean()
        b = series[lag:] - series[lag:].mean()
        corr = float((a * b).mean() / (a.std() * b.std()))
        assert corr > 0.8

    def test_zero_noise_is_deterministic_signal(self):
        cfg = TimeSeriesConfig(length=100, noise_std=0.0)
        series = generate_series(cfg, np.random.default_rng(0))
        t = np.arange(100)
        expected = cfg.trend_slope * t + cfg.seasonal_amplitude * np.sin(
            2 * np.pi * t / cfg.seasonal_period
        )
        np.testing.assert_allclose(series, expected, atol=1e-12)


class TestWindowing:
    def test_window_contents(self):
        series = np.arange(10.0)
        x, y = windowed_dataset(series, window=3, horizon=1)
        assert x.shape == (7, 3)
        np.testing.assert_array_equal(x[0], [0, 1, 2])
        assert y[0] == 3.0
        np.testing.assert_array_equal(x[-1], [6, 7, 8])
        assert y[-1] == 9.0

    def test_horizon_shifts_target(self):
        series = np.arange(10.0)
        x, y = windowed_dataset(series, window=3, horizon=2)
        assert y[0] == 4.0
        assert len(x) == 6

    def test_windows_are_copies(self):
        series = np.arange(10.0)
        x, _ = windowed_dataset(series, window=3)
        x[0, 0] = 99.0
        assert series[0] == 0.0

    def test_too_short_raises(self):
        with pytest.raises(ConfigurationError):
            windowed_dataset(np.arange(3.0), window=5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            windowed_dataset(np.zeros((3, 3)), window=2)
        with pytest.raises(ConfigurationError):
            windowed_dataset(np.arange(10.0), window=0)


class TestSplit:
    def test_chronological(self):
        x = np.arange(20.0).reshape(10, 2)
        y = np.arange(10.0)
        x_tr, y_tr, x_va, y_va = train_val_split_series(x, y, val_fraction=0.3)
        assert len(x_tr) == 7 and len(x_va) == 3
        # Validation strictly after training.
        assert x_tr[-1, 0] < x_va[0, 0]

    def test_invalid_fraction(self):
        x = np.zeros((10, 2))
        y = np.zeros(10)
        with pytest.raises(ConfigurationError):
            train_val_split_series(x, y, val_fraction=0.0)
        with pytest.raises(ConfigurationError):
            train_val_split_series(x, y, val_fraction=1.0)

    def test_degenerate_split_rejected(self):
        x = np.zeros((2, 1))
        y = np.zeros(2)
        with pytest.raises(ConfigurationError):
            train_val_split_series(x, y, val_fraction=0.99)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(10, 200),
    window=st.integers(1, 8),
    horizon=st.integers(1, 4),
)
def test_property_window_count_and_alignment(n, window, horizon):
    if n - window - horizon + 1 <= 0:
        return
    series = np.arange(float(n))
    x, y = windowed_dataset(series, window=window, horizon=horizon)
    assert len(x) == len(y) == n - window - horizon + 1
    # Every target equals the last window element + horizon.
    np.testing.assert_array_equal(y, x[:, -1] + horizon)
