"""Synthetic dataset generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticImageConfig, make_classification_splits, make_synthetic_images
from repro.errors import ConfigurationError
from repro.nn import Adam, Tensor, cross_entropy, make_mlp
from repro.data.loader import BatchLoader


class TestConfig:
    def test_defaults_valid(self):
        cfg = SyntheticImageConfig()
        assert cfg.num_features == 3 * 8 * 8

    def test_invalid_classes(self):
        with pytest.raises(ConfigurationError):
            SyntheticImageConfig(num_classes=1)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            SyntheticImageConfig(image_size=1)

    def test_negative_noise(self):
        with pytest.raises(ConfigurationError):
            SyntheticImageConfig(noise_std=-0.1)


class TestGeneration:
    def test_shapes(self, rng):
        cfg = SyntheticImageConfig(image_size=6, channels=2, num_classes=4)
        x, y = make_synthetic_images(40, cfg, rng)
        assert x.shape == (40, 2, 6, 6)
        assert y.shape == (40,)

    def test_flat_output(self, rng):
        cfg = SyntheticImageConfig(image_size=6, channels=2)
        x, _ = make_synthetic_images(10, cfg, rng, flat=True)
        assert x.shape == (10, 72)

    def test_labels_balanced(self, rng):
        cfg = SyntheticImageConfig(num_classes=5)
        _, y = make_synthetic_images(100, cfg, rng)
        counts = np.bincount(y)
        assert max(counts) - min(counts) <= 1

    def test_deterministic(self):
        cfg = SyntheticImageConfig()
        x1, y1 = make_synthetic_images(20, cfg, np.random.default_rng(9))
        x2, y2 = make_synthetic_images(20, cfg, np.random.default_rng(9))
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_nonpositive_samples(self, rng):
        with pytest.raises(ConfigurationError):
            make_synthetic_images(0, SyntheticImageConfig(), rng)

    def test_class_structure_exists(self, rng):
        """Images of the same class are more similar than across classes
        at low noise — the signal a classifier learns."""
        cfg = SyntheticImageConfig(noise_std=0.1)
        x, y = make_synthetic_images(200, cfg, rng, flat=True)
        centroids = np.stack([x[y == c].mean(axis=0) for c in range(cfg.num_classes)])
        within = np.mean(
            [np.linalg.norm(x[y == c] - centroids[c], axis=1).mean() for c in range(10)]
        )
        across = np.mean(
            [
                np.linalg.norm(centroids[c] - centroids[(c + 1) % 10])
                for c in range(10)
            ]
        )
        assert across > within


class TestSplits:
    def test_split_sizes(self, rng):
        cfg = SyntheticImageConfig()
        train, val, test = make_classification_splits(
            cfg, rng, num_train=100, num_val=30, num_test=20, flat=True
        )
        assert (len(train), len(val), len(test)) == (100, 30, 20)
        assert train.name == "train" and val.name == "val" and test.name == "test"

    def test_task_is_learnable(self, rng):
        """A small MLP must beat chance comfortably — guards against a
        generator regression that silently breaks every experiment."""
        cfg = SyntheticImageConfig(noise_std=1.5)
        train, val, _ = make_classification_splits(
            cfg, rng, num_train=600, num_val=200, num_test=10, flat=True
        )
        model = make_mlp(
            np.random.default_rng(0), in_features=cfg.num_features, hidden=(32,)
        )
        opt = Adam(model.parameters(), lr=0.003)
        loader = BatchLoader(train, 32, rng=np.random.default_rng(1))
        for _ in range(6):
            for xb, yb in loader:
                model.zero_grad()
                cross_entropy(model(Tensor(xb)), yb).backward()
                opt.step()
        logits = model(Tensor(val.x))
        acc = float((logits.data.argmax(axis=1) == val.y).mean())
        assert acc > 0.5  # chance is 0.1

    def test_task_not_trivially_saturated(self, rng):
        """At the default noise the task must retain headroom (accuracy
        dynamics over 40 epochs are the object of study)."""
        cfg = SyntheticImageConfig()
        train, val, _ = make_classification_splits(
            cfg, rng, num_train=400, num_val=200, num_test=10, flat=True
        )
        model = make_mlp(
            np.random.default_rng(0), in_features=cfg.num_features, hidden=(32,)
        )
        opt = Adam(model.parameters(), lr=0.003)
        loader = BatchLoader(train, 32, rng=np.random.default_rng(1))
        for xb, yb in loader:  # exactly one epoch
            model.zero_grad()
            cross_entropy(model(Tensor(xb)), yb).backward()
            opt.step()
        logits = model(Tensor(val.x))
        acc = float((logits.data.argmax(axis=1) == val.y).mean())
        assert acc < 0.75
