"""Consolidated paper-claims tests — each headline claim of the paper,
verified at miniature scale, in one place.

The benchmark harness (`benchmarks/`) reproduces the figures at full
synthetic scale; these tests re-verify the same *claims* at a scale that
keeps the unit-test suite fast.  If a refactor breaks a claim, this file
names it.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cloud import PricingClass, paper_p5c5t2_analysis, paper_p5c5t2_fleet
from repro.core import (
    ConstantAlpha,
    FaultConfig,
    LocalTrainingConfig,
    TrainingJobConfig,
    VarAlpha,
    run_experiment,
)
from repro.data import SyntheticImageConfig
from repro.kvstore import (
    PAPER_PARAM_BYTES,
    mysql_like_latency,
    redis_like_latency,
)
from repro.nn.models import ModelSpec


def mini(**overrides) -> TrainingJobConfig:
    defaults = dict(
        num_param_servers=1,
        num_clients=3,
        max_concurrent_subtasks=2,
        model=ModelSpec("mlp", {"in_features": 48, "hidden": [16], "num_classes": 4}),
        data=SyntheticImageConfig(image_size=4, num_classes=4, noise_std=1.2),
        num_train=240,
        num_val=60,
        num_test=60,
        num_shards=12,
        max_epochs=6,
        local_training=LocalTrainingConfig(local_epochs=4, learning_rate=0.01),
        alpha_schedule=ConstantAlpha(0.9),
        seed=777,
    )
    defaults.update(overrides)
    return TrainingJobConfig(**defaults)


class TestClaim1_DistributedTrainingWorks:
    """'We design a distributed DL system that can run on a VC-like
    paradigm' — the full pipeline trains a real model to well above
    chance while every subtask flows through BOINC machinery."""

    def test_training_beats_chance_through_full_pipeline(self):
        result = run_experiment(mini())
        assert result.final_val_accuracy > 0.5  # chance = 0.25
        assert result.counters["assimilations"] == 12 * 6


class TestClaim2_FaultTolerance:
    """'handle fault tolerance ... by using preemptible instances' —
    heavy preemption costs time but never correctness."""

    def test_preempted_run_completes_everything(self):
        clean = run_experiment(mini(max_epochs=3))
        faulty = run_experiment(
            mini(
                max_epochs=3,
                faults=FaultConfig(preemption_hourly_p=0.8, relaunch_delay_s=60.0),
            )
        )
        assert faulty.counters["preemptions"] >= 1
        assert faulty.counters["assimilations"] == clean.counters["assimilations"]
        assert faulty.total_time_s > clean.total_time_s
        assert abs(faulty.final_val_accuracy - clean.final_val_accuracy) < 0.15


class TestClaim3_VCASGDAlphaBehaviour:
    """§IV-C: smaller α learns faster early; α≈1 barely learns; the
    varying schedule is the best of both."""

    def test_alpha_orderings(self):
        accs = {}
        for schedule in (ConstantAlpha(0.7), ConstantAlpha(0.999), VarAlpha()):
            result = run_experiment(mini(alpha_schedule=schedule, max_epochs=4))
            accs[schedule.describe()] = result.final_val_accuracy
        assert accs["alpha=0.7"] > accs["alpha=0.999"] + 0.1
        assert accs["alpha=e/(e+1)"] > accs["alpha=0.999"] + 0.1


class TestClaim4_ScalingKnobs:
    """§IV-B: Pn/Cn/Tn trade time, not final accuracy, until the PS or
    staleness bites."""

    def test_more_clients_faster_same_accuracy(self):
        small = run_experiment(mini(num_clients=1, max_epochs=3))
        big = run_experiment(mini(num_clients=4, max_epochs=3))
        assert big.total_time_s < small.total_time_s
        assert abs(big.final_val_accuracy - small.final_val_accuracy) < 0.15


class TestClaim5_StoreChoice:
    """§IV-D: eventual consistency is ~1.5× faster per update and the
    training tolerates its lost updates."""

    def test_latency_ratio(self):
        ratio = mysql_like_latency().update(PAPER_PARAM_BYTES) / redis_like_latency().update(
            PAPER_PARAM_BYTES
        )
        assert 1.4 < ratio < 1.6

    def test_training_tolerates_lost_updates(self):
        eventual = run_experiment(
            mini(num_param_servers=3, max_concurrent_subtasks=4, max_epochs=3)
        )
        strong = run_experiment(
            mini(
                num_param_servers=3,
                max_concurrent_subtasks=4,
                max_epochs=3,
                store_kind="strong",
            )
        )
        assert abs(eventual.final_val_accuracy - strong.final_val_accuracy) < 0.1


class TestClaim6_CostSavings:
    """§IV-E: preemptible fleet saves 70%; delay model gives 50/200 min."""

    def test_cost_anchors(self):
        assert paper_p5c5t2_fleet(PricingClass.PREEMPTIBLE).savings_fraction() == (
            pytest.approx(0.70, abs=0.005)
        )
        analysis = paper_p5c5t2_analysis()
        assert analysis.expected_delay_minutes(0.05) == pytest.approx(50.0)
        assert analysis.expected_delay_minutes(0.20) == pytest.approx(200.0)


class TestRobustnessEdges:
    """Failure edges the paper's design must survive."""

    def test_total_fleet_loss_without_relaunch_raises_cleanly(self):
        """If every client dies and none respawn, the run must fail with a
        diagnosable error rather than hang or silently truncate."""
        from repro.errors import TrainingError

        cfg = mini(
            num_clients=1,
            max_epochs=3,
            faults=FaultConfig(preemption_hourly_p=0.99, relaunch_delay_s=None),
        )
        with pytest.raises(TrainingError, match="stalled|failed permanently"):
            run_experiment(cfg)

    def test_single_client_single_server_minimal_system(self):
        result = run_experiment(
            mini(num_clients=1, num_param_servers=1, max_concurrent_subtasks=1,
                 max_epochs=2)
        )
        assert len(result.epochs) == 2

    def test_shards_fewer_than_slots(self):
        """More slots than shards: the wave quantization edge."""
        result = run_experiment(
            mini(num_clients=4, max_concurrent_subtasks=8, num_shards=6,
                 max_epochs=2)
        )
        assert result.counters["assimilations"] == 12
