"""Tier-1 chaos soak: a small seeded run through every fault layer.

The heavyweight P3C3T4 soak lives in ``benchmarks/test_chaos_soak.py``;
this keeps a fast always-on version in the tier-1 suite.
"""

from __future__ import annotations

from repro.core import FaultConfig, run_experiment
from repro.core.runner import DistributedRunner
from repro.errors import TrainingError

from ..core.test_runner import tiny_config
from ._invariants import assert_chaos_invariants, seeded_plan

SOAK_SEED = 2021
HORIZON_S = 800.0


def soak_config(seed: int = SOAK_SEED):
    plan = seeded_plan(seed, HORIZON_S)
    return tiny_config(max_epochs=3, faults=FaultConfig(chaos=plan))


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        assert seeded_plan(1, HORIZON_S) == seeded_plan(1, HORIZON_S)

    def test_different_seed_different_plan(self):
        assert seeded_plan(1, HORIZON_S) != seeded_plan(2, HORIZON_S)


class TestSmallSoak:
    def test_invariants_hold_under_full_chaos(self):
        runner = DistributedRunner(soak_config())
        try:
            result = runner.run()
        except TrainingError:
            return  # a loud failure is an acceptable outcome; silence is not
        assert len(result.epochs) == 3
        assert_chaos_invariants(runner)
        # The marquee fault layers actually fired under this seeded plan.
        counters = result.counters
        assert counters["transfer_failures"] > 0
        assert counters["transfer_retries"] > 0
        assert counters["ps_crashes"] == 1
        assert counters["ps_recoveries"] == 1

    def test_bit_identical_repro(self):
        a = run_experiment(soak_config())
        b = run_experiment(soak_config())
        assert a.counters == b.counters
        assert [e.val_accuracy_mean for e in a.epochs] == [
            e.val_accuracy_mean for e in b.epochs
        ]
        assert [e.end_time_s for e in a.epochs] == [
            e.end_time_s for e in b.epochs
        ]
