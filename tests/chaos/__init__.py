"""Chaos soak harness: seeded fault plans + conservation invariants.

Shared by the tier-1 soak test in this package and the heavier
``benchmarks/test_chaos_soak.py`` run.  The invariant checks themselves
now live in :class:`repro.obs.audit.InvariantAuditor`; this package
keeps only the replay wrapper and the plan builder.
"""

from ._invariants import assert_chaos_invariants, audit_runner, seeded_plan

__all__ = [
    "assert_chaos_invariants",
    "audit_runner",
    "seeded_plan",
]
