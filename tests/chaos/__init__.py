"""Chaos soak harness: seeded fault plans + conservation invariants.

Shared by the tier-1 soak test in this package and the heavier
``benchmarks/test_chaos_soak.py`` run.
"""

from ._invariants import (
    assert_chaos_invariants,
    assert_counters_conserved,
    assert_exactly_once_assimilation,
    assert_no_lost_workunits,
    seeded_plan,
)

__all__ = [
    "assert_chaos_invariants",
    "assert_counters_conserved",
    "assert_exactly_once_assimilation",
    "assert_no_lost_workunits",
    "seeded_plan",
]
