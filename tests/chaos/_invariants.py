"""Conservation invariants for chaos runs, and the seeded plan builder.

The invariants are the soak harness's definition of "nothing broke":

* **No workunit lost** — every minted workunit reached a terminal state
  and every (epoch, shard) pair was completed by someone, despite
  transfer failures, partitions, server crashes and store outages.
* **Exactly-once assimilation** — each DONE workunit was assimilated
  exactly once; crashes may re-run work but never double-apply it.
* **Counters conserved** — the counters reported in ``RunResult`` agree
  with the trace, so no event was dropped or double-counted on either
  path.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.boinc import WorkunitState
from repro.simulation.chaos import (
    ChaosPlan,
    PartitionWindow,
    ServerCrash,
    StoreFaultWindow,
    TransferFaultPlan,
)


def assert_no_lost_workunits(runner) -> None:
    """Every workunit terminal; every (epoch, shard) completed by someone."""
    wus = runner.server.scheduler._workunits  # test-only peek
    stuck = [wu.wu_id for wu in wus.values() if not wu.is_terminal]
    assert not stuck, f"non-terminal workunits after run: {stuck}"

    done_by_epoch: dict[int, set[int]] = {}
    for wu in wus.values():
        if wu.state is WorkunitState.DONE:
            done_by_epoch.setdefault(wu.epoch, set()).add(wu.shard_index)
    shards = set(range(runner.config.num_shards))
    for epoch, got in sorted(done_by_epoch.items()):
        assert got == shards, f"epoch {epoch} lost shards {sorted(shards - got)}"
    assert len(done_by_epoch) == len(runner.result.epochs)


def assert_exactly_once_assimilation(runner) -> None:
    """Each DONE workunit assimilated exactly once — crashes may re-run
    work (abort + requeue) but must never double-apply an update."""
    assimilated = [r["wu"] for r in runner.trace.of_kind("server.assimilated")]
    dupes = sorted(wu for wu, n in Counter(assimilated).items() if n > 1)
    assert not dupes, f"double-assimilated workunits: {dupes}"

    wus = runner.server.scheduler._workunits
    done = {wu.wu_id for wu in wus.values() if wu.state is WorkunitState.DONE}
    assert set(assimilated) == done, (
        f"assimilation set != DONE set: "
        f"missing={sorted(done - set(assimilated))} "
        f"extra={sorted(set(assimilated) - done)}"
    )


def assert_counters_conserved(runner) -> None:
    """RunResult counters agree with the trace record-for-record."""
    c = runner.result.counters
    trace = runner.trace
    assert c["assimilations"] == trace.count("server.assimilated")
    assert c["timeouts"] == trace.count("sched.timeout")
    if "transfer_failures" in c:  # chaos counters present iff plan active
        assert c["transfer_failures"] == trace.count("web.xfer_fail")
        assert c["transfer_retries"] == trace.count("net.retry")
        assert c["net_partition_blocks"] == trace.count("net.partition")
        assert c["ps_crashes"] == trace.count("ps.crash")
        assert c["ps_recoveries"] == trace.count("ps.recover")
        assert c["kv_outage_blocks"] == trace.count("kv.outage")
        assert c["kv_degraded_ops"] == trace.count("kv.degraded")
        # Every retried or abandoned transfer started as a failed one.
        assert c["transfer_failures"] >= c["transfer_retries"]


def assert_chaos_invariants(runner) -> None:
    """All three soak invariants on a completed DistributedRunner."""
    assert_no_lost_workunits(runner)
    assert_exactly_once_assimilation(runner)
    assert_counters_conserved(runner)


def seeded_plan(
    seed: int,
    horizon_s: float,
    *,
    crash_window: tuple[float, float] = (0.3, 0.6),
) -> ChaosPlan:
    """A randomized-but-seeded fault plan touching every chaos layer.

    The plan is pure data derived from ``seed`` alone, so the same seed
    always produces the same plan — the reproducibility assertions in the
    soak tests lean on this.  ``horizon_s`` is a rough estimate of the
    run length used to place windows; windows past the actual end of the
    run simply never fire.
    """
    rng = np.random.default_rng(seed)
    transfer = TransferFaultPlan(
        failure_p=float(rng.uniform(0.02, 0.08)),
        stall_p=float(rng.uniform(0.005, 0.02)),
        stall_timeout_s=60.0,
    )
    partitions = tuple(
        PartitionWindow(
            start_s=float(rng.uniform(0.1, 0.8)) * horizon_s,
            duration_s=float(rng.uniform(0.02, 0.05)) * horizon_s,
        )
        for _ in range(2)
    )
    lo, hi = crash_window
    ps_crashes = (
        ServerCrash(
            at_s=float(rng.uniform(lo, hi)) * horizon_s,
            restart_delay_s=float(rng.uniform(30.0, 90.0)),
        ),
    )
    kv_windows = (
        StoreFaultWindow(
            start_s=float(rng.uniform(0.1, 0.3)) * horizon_s,
            duration_s=float(rng.uniform(10.0, 40.0)),
        ),
        StoreFaultWindow(
            start_s=float(rng.uniform(0.6, 0.9)) * horizon_s,
            duration_s=float(rng.uniform(20.0, 60.0)),
            latency_factor=4.0,
        ),
    )
    return ChaosPlan(
        transfer=transfer,
        partitions=partitions,
        ps_crashes=ps_crashes,
        kv_windows=kv_windows,
    )
