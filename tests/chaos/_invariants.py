"""Conservation invariants for chaos runs, and the seeded plan builder.

The invariants are the soak harness's definition of "nothing broke":

* **No workunit lost** — every minted workunit reached a terminal state
  and every (epoch, shard) pair was completed by someone, despite
  transfer failures, partitions, server crashes and store outages.
* **Exactly-once assimilation** — each DONE workunit was assimilated
  exactly once; crashes may re-run work but never double-apply it.
* **Counters conserved** — the counters reported in ``RunResult`` agree
  with the trace, so no event was dropped or double-counted on either
  path.

The hand-rolled checks that used to live here are now the core of
:class:`repro.obs.audit.InvariantAuditor` (which every run already
carries via ``runner.obs``); this module just replays the trace through
a fresh auditor and asks for the strict, full-coverage verdict that the
soak tests need.
"""

from __future__ import annotations

import numpy as np

from repro.obs import InvariantAuditor
from repro.simulation.chaos import (
    ChaosPlan,
    PartitionWindow,
    ServerCrash,
    StoreFaultWindow,
    TransferFaultPlan,
)


def audit_runner(runner, *, require_full_coverage: bool = True):
    """Replay the runner's trace through a fresh auditor; return the report.

    Raises :class:`repro.errors.InvariantViolation` on any conservation
    failure.  Full (epoch, shard) coverage is demanded by default because
    the chaos soaks run the default VC-ASGD pipeline, where every epoch
    must complete every shard.
    """
    auditor = InvariantAuditor()
    auditor.replay(runner.trace)
    return auditor.verify(runner, require_full_coverage=require_full_coverage)


def assert_chaos_invariants(runner) -> None:
    """All soak invariants on a completed DistributedRunner.

    Runs the replayed audit *and* cross-checks it against the always-on
    auditor the runner carried during the run: both must be clean and
    must have seen the same trace.
    """
    report = audit_runner(runner)
    assert report.ok, report.violations

    live = runner.obs.report
    if live is not None:  # auditor was attached during the run (the default)
        assert live.ok, live.violations
        assert live.records_seen == report.records_seen


def seeded_plan(
    seed: int,
    horizon_s: float,
    *,
    crash_window: tuple[float, float] = (0.3, 0.6),
) -> ChaosPlan:
    """A randomized-but-seeded fault plan touching every chaos layer.

    The plan is pure data derived from ``seed`` alone, so the same seed
    always produces the same plan — the reproducibility assertions in the
    soak tests lean on this.  ``horizon_s`` is a rough estimate of the
    run length used to place windows; windows past the actual end of the
    run simply never fire.
    """
    rng = np.random.default_rng(seed)
    transfer = TransferFaultPlan(
        failure_p=float(rng.uniform(0.02, 0.08)),
        stall_p=float(rng.uniform(0.005, 0.02)),
        stall_timeout_s=60.0,
    )
    partitions = tuple(
        PartitionWindow(
            start_s=float(rng.uniform(0.1, 0.8)) * horizon_s,
            duration_s=float(rng.uniform(0.02, 0.05)) * horizon_s,
        )
        for _ in range(2)
    )
    lo, hi = crash_window
    ps_crashes = (
        ServerCrash(
            at_s=float(rng.uniform(lo, hi)) * horizon_s,
            restart_delay_s=float(rng.uniform(30.0, 90.0)),
        ),
    )
    kv_windows = (
        StoreFaultWindow(
            start_s=float(rng.uniform(0.1, 0.3)) * horizon_s,
            duration_s=float(rng.uniform(10.0, 40.0)),
        ),
        StoreFaultWindow(
            start_s=float(rng.uniform(0.6, 0.9)) * horizon_s,
            duration_s=float(rng.uniform(20.0, 60.0)),
            latency_factor=4.0,
        ),
    )
    return ChaosPlan(
        transfer=transfer,
        partitions=partitions,
        ps_crashes=ps_crashes,
        kv_windows=kv_windows,
    )
