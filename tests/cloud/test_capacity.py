"""Capacity-planner tests, cross-checked against the paper and the DES."""

from __future__ import annotations

import pytest

from repro.cloud import (
    cifar10_workload,
    imagenet_workload,
    plan_capacity,
)
from repro.errors import ConfigurationError
from repro.kvstore import mysql_like_latency


class TestWorkloads:
    def test_cifar10_matches_paper(self):
        wl = cifar10_workload()
        assert wl.num_shards == 50
        assert wl.epochs == 40
        assert wl.total_subtasks == 2000  # the paper's ~2 000 updates

    def test_imagenet_is_800x(self):
        cifar = cifar10_workload()
        imagenet = imagenet_workload()
        assert imagenet.num_shards == 800 * cifar.num_shards
        assert imagenet.total_subtasks == 1_600_000  # the §IV-D number

    def test_validation(self):
        from repro.cloud import WorkloadSpec

        with pytest.raises(ConfigurationError):
            WorkloadSpec("x", num_shards=0, epochs=1, work_units_per_subtask=1,
                         param_bytes=1, shard_bytes=1)


class TestPlanner:
    def test_paper_p5c5t2_duration(self):
        """Pure-execution estimate ≈ the paper's 'slightly more than 8 hr'."""
        est = plan_capacity(
            cifar10_workload(), num_clients=5, concurrency=2, num_param_servers=5
        )
        assert 7.0 < est.job_hours < 9.5
        assert est.bottleneck == "clients"

    def test_subtask_time_near_paper_te(self):
        est = plan_capacity(cifar10_workload())
        assert 2.0 < est.subtask_seconds / 60 < 2.6  # t_e ≈ 2.4 min

    def test_mysql_imagenet_overhead_matches_paper(self):
        """§IV-D: '~1,600,000 [updates], which adds an overhead of 187 hours'."""
        est = plan_capacity(
            imagenet_workload(),
            num_clients=5,
            concurrency=2,
            num_param_servers=5,
            store=mysql_like_latency(),
        )
        assert 180 < est.store_overhead_hours < 195

    def test_high_concurrency_flips_bottleneck(self):
        """The Fig. 3 regime: P1 at C3T8 is drain-limited."""
        est = plan_capacity(
            cifar10_workload(), num_clients=3, concurrency=8, num_param_servers=1
        )
        assert est.ps_utilization > 1.0
        assert est.bottleneck == "parameter-servers"
        assert est.min_param_servers >= 2

    def test_min_ps_recommendation_stabilizes(self):
        """Planning with the recommended Pn must yield rho < 1."""
        under = plan_capacity(
            cifar10_workload(), num_clients=3, concurrency=8, num_param_servers=1
        )
        fixed = plan_capacity(
            cifar10_workload(),
            num_clients=3,
            concurrency=8,
            num_param_servers=under.min_param_servers,
        )
        assert fixed.ps_utilization < 1.0
        assert fixed.job_hours < under.job_hours

    def test_more_clients_shorter_job_when_ps_keeps_up(self):
        small = plan_capacity(cifar10_workload(), num_clients=3, num_param_servers=5)
        big = plan_capacity(cifar10_workload(), num_clients=10, num_param_servers=5)
        assert big.job_hours < small.job_hours

    def test_cost_scales_with_fleet_and_time(self):
        est = plan_capacity(
            cifar10_workload(), num_clients=5, concurrency=2, num_param_servers=5
        )
        # ≈ the paper's $4 preemptible job (same fleet, ~8 h).
        assert 3.0 < est.fleet_cost < 5.5

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            plan_capacity(cifar10_workload(), num_clients=0)

    def test_summary_row_shape(self):
        est = plan_capacity(cifar10_workload())
        row = est.summary_row()
        assert row[0] == "cifar10"
        assert len(row) == 8

    def test_planner_tracks_simulator(self):
        """The analytic epoch estimate should be within ~25% of the event
        simulation for a client-bound configuration."""
        from repro.core import ConstantAlpha, TrainingJobConfig, run_experiment

        cfg = TrainingJobConfig(
            num_param_servers=3,
            num_clients=3,
            max_concurrent_subtasks=2,
            max_epochs=3,
            alpha_schedule=ConstantAlpha(0.95),
        )
        sim_result = run_experiment(cfg)
        sim_epoch = sim_result.total_time_s / 3
        est = plan_capacity(
            cifar10_workload(),
            num_clients=3,
            concurrency=2,
            num_param_servers=3,
        )
        plan_epoch = est.job_hours * 3600 / cifar10_workload().epochs
        assert abs(plan_epoch - sim_epoch) / sim_epoch < 0.25
