"""Cloud pricing, fleets, and interruption analysis (§III-E, §IV-E)."""

from __future__ import annotations

import pytest

from repro.cloud import (
    INTERRUPTION_BANDS,
    DelayAnalysis,
    Fleet,
    FleetMember,
    PriceBook,
    PricingClass,
    band_for,
    default_price_book,
    paper_p5c5t2_analysis,
    paper_p5c5t2_fleet,
)
from repro.errors import ConfigurationError
from repro.simulation import TABLE1_CLIENTS, InstanceSpec


class TestPriceBook:
    def test_paper_fleet_standard_cost(self):
        """§IV-E anchor: the 40 vCPU / 160 GB fleet costs $1.67/h standard."""
        fleet = paper_p5c5t2_fleet(PricingClass.STANDARD)
        assert fleet.hourly_cost() == pytest.approx(1.67, abs=0.005)

    def test_paper_fleet_preemptible_cost(self):
        """... and $0.50/h preemptible (70% saving)."""
        fleet = paper_p5c5t2_fleet(PricingClass.PREEMPTIBLE)
        assert fleet.hourly_cost() == pytest.approx(0.50, abs=0.005)

    def test_paper_8h_job_costs(self):
        """$13.4 standard vs $4 preemptible for the 8 h P5C5T2 run."""
        standard = paper_p5c5t2_fleet(PricingClass.STANDARD).job_cost(8.0)
        preemptible = paper_p5c5t2_fleet(PricingClass.PREEMPTIBLE).job_cost(8.0)
        assert standard == pytest.approx(13.4, abs=0.1)
        assert preemptible == pytest.approx(4.0, abs=0.05)

    def test_savings_fraction_is_70_percent(self):
        assert paper_p5c5t2_fleet().savings_fraction() == pytest.approx(0.70)

    def test_preemptible_cheaper_for_all_table1_specs(self):
        book = default_price_book()
        for spec in TABLE1_CLIENTS:
            assert book.preemptible_hourly(spec) < book.standard_hourly(spec)

    def test_price_book_validation(self):
        with pytest.raises(ConfigurationError):
            PriceBook(per_vcpu_hour=-1, per_gb_hour=0.01)
        with pytest.raises(ConfigurationError):
            PriceBook(per_vcpu_hour=0.1, per_gb_hour=0.01, preemptible_discount=1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_p5c5t2_fleet().job_cost(-1.0)


class TestFleet:
    def test_totals(self):
        fleet = paper_p5c5t2_fleet()
        assert len(fleet) == 5
        assert fleet.total_vcpus == 40
        assert fleet.total_ram_gb == 160

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            Fleet(members=[])

    def test_as_pricing_converts_all(self):
        fleet = paper_p5c5t2_fleet(PricingClass.PREEMPTIBLE)
        std = fleet.as_pricing(PricingClass.STANDARD)
        assert std.hourly_cost() > fleet.hourly_cost()

    def test_scaled_horizontal(self):
        fleet = paper_p5c5t2_fleet()
        double = fleet.scaled_horizontal(2)
        assert len(double) == 10
        assert double.hourly_cost() == pytest.approx(2 * fleet.hourly_cost())

    def test_horizontal_vs_vertical_cost_comparison(self):
        """§IV-E: 10 small (4 vCPU/16 GB) vs 5 large (8 vCPU/32 GB) —
        equal capacity, equal cost under a linear price book."""
        book = default_price_book()
        small = InstanceSpec("small", vcpus=4, clock_ghz=2.2, ram_gb=16, network_gbps=5)
        large = InstanceSpec("large", vcpus=8, clock_ghz=2.2, ram_gb=32, network_gbps=5)
        ten_small = Fleet([FleetMember(small) for _ in range(10)], book)
        five_large = Fleet([FleetMember(large) for _ in range(5)], book)
        assert ten_small.hourly_cost() == pytest.approx(five_large.hourly_cost())

    def test_member_validation(self):
        with pytest.raises(ConfigurationError):
            FleetMember(TABLE1_CLIENTS[0], interruption_p=1.5)


class TestInterruptionBands:
    def test_band_lookup(self):
        assert band_for(0.03).label == "<5%"
        assert band_for(0.07).label == "5-10%"
        assert band_for(0.5).label == ">20%"

    def test_bands_cover_unit_interval(self):
        assert INTERRUPTION_BANDS[0].p_low == 0.0
        assert INTERRUPTION_BANDS[-1].p_high == 1.0
        for a, b in zip(INTERRUPTION_BANDS, INTERRUPTION_BANDS[1:]):
            assert a.p_high == b.p_low

    def test_band_midpoint(self):
        assert INTERRUPTION_BANDS[1].p_mid == pytest.approx(0.075)

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            band_for(-0.1)


class TestDelayAnalysis:
    @pytest.fixture
    def analysis(self) -> DelayAnalysis:
        return paper_p5c5t2_analysis()

    def test_paper_50min_delay(self, analysis):
        assert analysis.expected_delay_minutes(0.05) == pytest.approx(50.0)

    def test_paper_200min_delay(self, analysis):
        assert analysis.expected_delay_minutes(0.20) == pytest.approx(200.0)

    def test_baseline_total_hours(self, analysis):
        # 200 waves x 2.4 min = 480 min = 8 h of pure subtask execution,
        # matching "total training time is slightly more than 8 hr".
        assert analysis.expected_total_hours(0.0) == pytest.approx(8.0)

    def test_relative_slowdown(self, analysis):
        assert analysis.relative_slowdown(0.0) == pytest.approx(1.0)
        assert analysis.relative_slowdown(0.05) > 1.0

    def test_lifetime_model_consistency(self, analysis):
        model = analysis.lifetime_model(0.05)
        assert model.survival_probability(3600) == pytest.approx(0.95)

    def test_band_passthrough(self, analysis):
        assert analysis.band(0.04).label == "<5%"
