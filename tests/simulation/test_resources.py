"""Processor-sharing compute resource tests (the Tn physics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.simulation import (
    TABLE1_CLIENTS,
    TABLE1_SERVER,
    ComputeResource,
    InstanceSpec,
    Simulator,
)


@pytest.fixture
def spec() -> InstanceSpec:
    # 2.4 GHz reference clock: per-core rate exactly 1 unit/s.
    return InstanceSpec("test", vcpus=4, clock_ghz=2.4, ram_gb=16, network_gbps=1)


class TestInstanceSpec:
    def test_reference_core_rate(self, spec):
        assert spec.per_core_rate == pytest.approx(1.0)
        assert spec.total_rate == pytest.approx(4.0)

    def test_table1_matches_paper(self):
        assert TABLE1_SERVER.vcpus == 8
        assert TABLE1_SERVER.clock_ghz == 2.3
        assert TABLE1_SERVER.ram_gb == 61
        assert TABLE1_SERVER.network_gbps == 10
        assert len(TABLE1_CLIENTS) == 4
        assert {c.vcpus for c in TABLE1_CLIENTS} == {8, 16}

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            InstanceSpec("bad", vcpus=0, clock_ghz=2.0, ram_gb=1, network_gbps=1)

    def test_default_links(self):
        wan = TABLE1_CLIENTS[0].default_link()
        lan = TABLE1_SERVER.default_link(is_server=True)
        assert wan.latency_s > lan.latency_s
        assert lan.bandwidth_bps > wan.bandwidth_bps


class TestSingleTask:
    def test_completion_time(self, sim, spec):
        done: list[float] = []
        res = ComputeResource(sim, spec)
        res.submit(10.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0]  # 10 units at 1 unit/s

    def test_invalid_work(self, sim, spec):
        res = ComputeResource(sim, spec)
        with pytest.raises(ConfigurationError):
            res.submit(0.0, lambda: None)

    def test_completed_count(self, sim, spec):
        res = ComputeResource(sim, spec)
        res.submit(1.0, lambda: None)
        res.submit(2.0, lambda: None)
        sim.run()
        assert res.completed_count == 2
        assert res.active_count == 0


class TestProcessorSharing:
    def test_within_core_count_no_slowdown(self, sim, spec):
        """k <= cores: each task runs at full per-core speed."""
        done: list[float] = []
        res = ComputeResource(sim, spec)
        for _ in range(4):  # 4 tasks on 4 cores
            res.submit(10.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0] * 4

    def test_oversubscription_slows_tasks(self, sim, spec):
        done: list[float] = []
        res = ComputeResource(sim, spec, contention=0.0)
        for _ in range(8):  # 8 tasks on 4 cores
            res.submit(10.0, lambda: done.append(sim.now))
        sim.run()
        # Total rate 4 units/s shared by 8 tasks -> 0.5/s each -> 20 s.
        assert done == pytest.approx([20.0] * 8)

    def test_contention_penalty_beyond_cores(self, sim, spec):
        res = ComputeResource(sim, spec, contention=0.25)
        # 8 active on 4 cores: degraded total = 4/(1+0.25*4) = 2 units/s.
        assert res.throughput(8) == pytest.approx(2.0)
        # Paper's observation: throughput *decreases* past saturation.
        assert res.throughput(8) < res.throughput(4)

    def test_dynamic_membership_recomputes_rates(self, sim, spec):
        """A task joining mid-flight slows an oversubscribed machine."""
        done: dict[str, float] = {}
        res = ComputeResource(sim, spec, contention=0.0)
        for i in range(4):
            res.submit(10.0, lambda i=i: done.setdefault(f"a{i}", sim.now))
        # At t=5 (tasks half done), add 4 more tasks.
        sim.schedule(
            5.0,
            lambda: [
                res.submit(10.0, lambda j=j: done.setdefault(f"b{j}", sim.now))
                for j in range(4)
            ],
        )
        sim.run()
        # First batch: 5 units left at t=5, rate drops to 0.5 -> finish at 15.
        assert done["a0"] == pytest.approx(15.0)
        # Second batch: 10 units, 0.5/s while sharing, then full speed after
        # the first batch leaves: 5 done by t=15, remaining 5 at 1/s -> t=20.
        assert done["b0"] == pytest.approx(20.0)

    def test_completion_order_by_remaining_work(self, sim, spec):
        order: list[str] = []
        res = ComputeResource(sim, spec)
        res.submit(5.0, lambda: order.append("long"), label="long")
        res.submit(2.0, lambda: order.append("short"), label="short")
        sim.run()
        assert order == ["short", "long"]


class TestCancelAndTerminate:
    def test_cancel_prevents_completion(self, sim, spec):
        done = []
        res = ComputeResource(sim, spec)
        task = res.submit(5.0, lambda: done.append(1))
        res.cancel(task)
        sim.run()
        assert done == [] and task.cancelled

    def test_cancel_speeds_up_others(self, sim, spec):
        done: list[float] = []
        res = ComputeResource(sim, spec, contention=0.0)
        tasks = [res.submit(10.0, lambda: done.append(sim.now)) for _ in range(8)]
        sim.schedule(0.0, lambda: [res.cancel(t) for t in tasks[4:]])
        sim.run()
        assert done == pytest.approx([10.0] * 4)

    def test_terminate_drops_all(self, sim, spec):
        done = []
        res = ComputeResource(sim, spec)
        res.submit(5.0, lambda: done.append(1))
        res.submit(5.0, lambda: done.append(2))
        dropped = res.terminate()
        sim.run()
        assert done == []
        assert len(dropped) == 2
        assert not res.alive

    def test_submit_after_terminate_raises(self, sim, spec):
        res = ComputeResource(sim, spec)
        res.terminate()
        with pytest.raises(SimulationError):
            res.submit(1.0, lambda: None)

    def test_double_cancel_is_noop(self, sim, spec):
        res = ComputeResource(sim, spec)
        task = res.submit(5.0, lambda: None)
        res.cancel(task)
        res.cancel(task)  # must not raise
        sim.run()


class TestUtilization:
    def test_busy_fraction(self, sim, spec):
        res = ComputeResource(sim, spec)
        res.submit(4.0, lambda: None)
        sim.run(until=8.0)
        assert res.utilization() == pytest.approx(0.5)


@settings(max_examples=25, deadline=None)
@given(
    works=st.lists(st.floats(0.5, 20.0), min_size=1, max_size=10),
    cores=st.integers(1, 8),
)
def test_property_work_conservation(works, cores):
    """Total completion time >= total work / total rate (no free lunch),
    and every task eventually completes."""
    sim = Simulator()
    spec = InstanceSpec("t", vcpus=cores, clock_ghz=2.4, ram_gb=8, network_gbps=1)
    res = ComputeResource(sim, spec, contention=0.0)
    done: list[float] = []
    for w in works:
        res.submit(w, lambda: done.append(sim.now))
    sim.run()
    assert len(done) == len(works)
    lower_bound = sum(works) / spec.total_rate
    assert max(done) >= lower_bound - 1e-6
