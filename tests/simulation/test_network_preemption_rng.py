"""Network link, preemption model, RNG registry, and tracing tests."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.simulation import (
    BernoulliSubtaskModel,
    ExponentialLifetime,
    NetworkLink,
    RngRegistry,
    Trace,
    interruption_rate_per_hour,
    lan_link,
    stable_name_hash,
    wan_link,
)


class TestNetworkLink:
    def test_transfer_time_components(self):
        link = NetworkLink(latency_s=0.1, bandwidth_bps=1000.0)
        # 2*latency + bytes/bandwidth
        assert link.transfer_time(500) == pytest.approx(0.2 + 0.5)

    def test_zero_bytes_costs_latency_only(self):
        link = NetworkLink(latency_s=0.05, bandwidth_bps=1e6)
        assert link.transfer_time(0) == pytest.approx(0.1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkLink(0.01, 1e6).transfer_time(-1)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkLink(latency_s=-1, bandwidth_bps=1e6)
        with pytest.raises(ConfigurationError):
            NetworkLink(latency_s=0, bandwidth_bps=0)

    def test_jitter_varies_transfers(self, rng):
        link = NetworkLink(0.01, 1e6, jitter=0.3)
        samples = {link.transfer_time(10000, rng) for _ in range(10)}
        assert len(samples) > 1

    def test_no_rng_means_no_jitter(self):
        link = NetworkLink(0.01, 1e6, jitter=0.5)
        assert link.transfer_time(100) == link.transfer_time(100)

    def test_scaled(self):
        link = NetworkLink(0.01, 1e6)
        half = link.scaled(0.5)
        assert half.bandwidth_bps == 5e5
        assert half.latency_s == link.latency_s

    def test_wan_slower_than_lan(self):
        assert wan_link().transfer_time(10**7) > lan_link().transfer_time(10**7)


class TestExponentialLifetime:
    def test_rate_conversion(self):
        assert interruption_rate_per_hour(0.05) == pytest.approx(-math.log(0.95))

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            interruption_rate_per_hour(1.0)
        with pytest.raises(ConfigurationError):
            ExponentialLifetime(-0.1)

    def test_zero_probability_never_dies(self, rng):
        model = ExponentialLifetime(0.0)
        assert model.sample_lifetime(rng) == math.inf
        assert model.survival_probability(1e9) == 1.0

    def test_survival_at_one_hour_matches_p(self):
        model = ExponentialLifetime(0.05)
        assert model.survival_probability(3600) == pytest.approx(0.95)

    def test_mean_lifetime_statistical(self):
        model = ExponentialLifetime(0.05)
        rng = np.random.default_rng(0)
        samples = [model.sample_lifetime(rng) for _ in range(4000)]
        expected_mean = 1.0 / model.rate_per_second
        assert abs(np.mean(samples) - expected_mean) / expected_mean < 0.1


class TestBernoulliSubtaskModel:
    @pytest.fixture
    def paper_model(self) -> BernoulliSubtaskModel:
        # §IV-E P5C5T2: n_s=2000, n_c=5, n_tc=2, t_e=2.4 min, t_o=5 min.
        return BernoulliSubtaskModel(n_s=2000, n_c=5, n_tc=2, t_e=144.0, t_o=300.0)

    def test_paper_wave_count(self, paper_model):
        assert paper_model.n == 200

    def test_paper_delay_at_p005(self, paper_model):
        # Paper: "with p=0.05, the expected increase ... is 50 min".
        assert paper_model.expected_delay(0.05) == pytest.approx(50 * 60)

    def test_paper_delay_at_p020(self, paper_model):
        # Paper: "with p=0.20, it will increase to 200 min".
        assert paper_model.expected_delay(0.20) == pytest.approx(200 * 60)

    def test_expected_time_identity(self, paper_model):
        # n·p·(t_e+t_o) + n·(1−p)·t_e == n·t_e + n·p·t_o
        p = 0.1
        lhs = (
            paper_model.n * p * (paper_model.t_e + paper_model.t_o)
            + paper_model.n * (1 - p) * paper_model.t_e
        )
        assert paper_model.expected_training_time(p) == pytest.approx(lhs)

    def test_zero_p_is_baseline(self, paper_model):
        assert paper_model.expected_training_time(0.0) == paper_model.baseline_time()

    def test_monte_carlo_agrees_with_expectation(self, paper_model):
        rng = np.random.default_rng(1)
        draws = [paper_model.sample_delay(0.05, rng) for _ in range(3000)]
        assert abs(np.mean(draws) - paper_model.expected_delay(0.05)) < 120

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BernoulliSubtaskModel(n_s=0, n_c=1, n_tc=1, t_e=1, t_o=1)
        with pytest.raises(ConfigurationError):
            BernoulliSubtaskModel(n_s=10, n_c=1, n_tc=1, t_e=-1, t_o=1)

    def test_invalid_probability(self, paper_model):
        with pytest.raises(ConfigurationError):
            paper_model.expected_delay(1.5)


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(42)
        assert reg.stream("a") is reg.stream("a")

    def test_different_names_independent(self):
        reg = RngRegistry(42)
        a = reg.stream("a").normal(size=10)
        b = reg.stream("b").normal(size=10)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        a = RngRegistry(7).stream("x").normal(size=5)
        b = RngRegistry(7).stream("x").normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_fresh_resets_state(self):
        reg = RngRegistry(7)
        first = reg.stream("x").normal(size=3)
        fresh = reg.fresh("x").normal(size=3)
        np.testing.assert_array_equal(first, fresh)

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(7)
        reg1.stream("a")
        a_vals = reg1.stream("a").normal(size=3)
        reg2 = RngRegistry(7)
        reg2.stream("zzz")  # extra consumer created first
        a_vals2 = reg2.stream("a").normal(size=3)
        np.testing.assert_array_equal(a_vals, a_vals2)

    def test_spawn_derives_different_streams(self):
        reg = RngRegistry(7)
        child = reg.spawn("exp1")
        assert child.seed != reg.seed
        a = child.stream("x").normal(size=3)
        b = reg.stream("x").normal(size=3)
        assert not np.allclose(a, b)

    def test_stable_name_hash_is_stable(self):
        # Pinned value: guards against accidental algorithm changes that
        # would silently re-randomize every experiment.
        assert stable_name_hash("data") == stable_name_hash("data")
        assert stable_name_hash("data") != stable_name_hash("init")


class TestTrace:
    def test_emit_and_query(self, trace):
        trace.emit(1.0, "x", value=10)
        trace.emit(2.0, "y", value=20)
        trace.emit(3.0, "x", value=30)
        assert trace.count("x") == 2
        assert [r["value"] for r in trace.of_kind("x")] == [10, 30]
        assert trace.last("x").time == 3.0
        assert trace.last("zzz") is None

    def test_series(self, trace):
        for t in range(5):
            trace.emit(float(t), "acc", v=t * 2)
        times, values = trace.series("acc", "v")
        np.testing.assert_array_equal(times, np.arange(5.0))
        np.testing.assert_array_equal(values, np.arange(5) * 2)

    def test_incr_counter_without_record(self, trace):
        trace.incr("fast_path", 3)
        assert trace.count("fast_path") == 3
        assert len(trace) == 0

    def test_summary_sorted(self, trace):
        trace.emit(0.0, "b")
        trace.emit(0.0, "a")
        assert list(trace.summary()) == ["a", "b"]

    def test_record_get_default(self, trace):
        trace.emit(0.0, "k", a=1)
        rec = trace.of_kind("k")[0]
        assert rec.get("missing", 42) == 42


@settings(max_examples=30, deadline=None)
@given(p=st.floats(0.001, 0.5), hours=st.floats(0.1, 24.0))
def test_property_survival_is_valid_probability(p, hours):
    model = ExponentialLifetime(p)
    s = model.survival_probability(hours * 3600)
    assert 0.0 < s <= 1.0
    # Survival decreases with time.
    assert s <= model.survival_probability(hours * 1800)
