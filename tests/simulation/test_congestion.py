"""Time-varying network congestion tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation import (
    CongestedLink,
    CongestionSchedule,
    NetworkLink,
    diurnal_schedule,
)


class TestSchedule:
    def test_factor_lookup(self):
        sched = CongestionSchedule(
            steps=((0.0, 1.0), (100.0, 0.5), (200.0, 0.8)), period_s=300.0
        )
        assert sched.factor_at(50) == 1.0
        assert sched.factor_at(150) == 0.5
        assert sched.factor_at(250) == 0.8

    def test_cyclic(self):
        sched = CongestionSchedule(steps=((0.0, 1.0), (100.0, 0.5)), period_s=200.0)
        assert sched.factor_at(350) == 0.5  # 350 % 200 = 150 -> second step
        assert sched.factor_at(401) == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"steps": ()},
            {"steps": ((5.0, 1.0),)},
            {"steps": ((0.0, 1.0), (50.0, 0.0))},
            {"steps": ((0.0, 1.0),), "period_s": 0.0},
            {"steps": ((0.0, 1.0), (500.0, 0.5)), "period_s": 300.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            CongestionSchedule(**kwargs)

    def test_diurnal_helper(self):
        sched = diurnal_schedule(peak_factor=0.3, peak_start_h=18, peak_end_h=23)
        assert sched.factor_at(12 * 3600) == 1.0  # noon: fine
        assert sched.factor_at(20 * 3600) == 0.3  # evening: congested
        assert sched.factor_at(23.5 * 3600) == 1.0  # late night: fine
        # Next day's evening is congested too.
        assert sched.factor_at((24 + 20) * 3600) == 0.3

    def test_diurnal_validation(self):
        with pytest.raises(ConfigurationError):
            diurnal_schedule(peak_start_h=23, peak_end_h=18)


class TestCongestedLink:
    def test_peak_transfers_slower(self):
        base = NetworkLink(latency_s=0.0, bandwidth_bps=1000.0)
        link = CongestedLink(base, diurnal_schedule(peak_factor=0.25))
        fast = link.transfer_time(1000, now=12 * 3600)
        slow = link.transfer_time(1000, now=20 * 3600)
        assert fast == pytest.approx(1.0)
        assert slow == pytest.approx(4.0)

    def test_latency_unaffected(self):
        base = NetworkLink(latency_s=0.1, bandwidth_bps=1e9)
        link = CongestedLink(base, diurnal_schedule(peak_factor=0.25))
        # Tiny transfer: dominated by latency, same on- and off-peak.
        assert link.transfer_time(1, now=20 * 3600) == pytest.approx(
            link.transfer_time(1, now=0.0), rel=1e-6
        )

    def test_properties_passthrough(self):
        base = NetworkLink(latency_s=0.05, bandwidth_bps=777.0)
        link = CongestedLink(base, diurnal_schedule())
        assert link.latency_s == 0.05
        assert link.bandwidth_bps == 777.0

    def test_plain_link_ignores_now(self):
        base = NetworkLink(latency_s=0.0, bandwidth_bps=1000.0)
        assert base.transfer_time(1000, now=12345.0) == base.transfer_time(1000)


class TestEndToEndCongestion:
    def test_evening_epoch_slower(self):
        """Drive a client through the web server during peak vs off-peak."""
        from repro.boinc import FileCatalog, ServerFile, WebServer
        from repro.simulation import Simulator

        def run_at(start_time: float) -> float:
            sim = Simulator()
            sim.schedule(start_time, lambda: None)
            sim.run()
            catalog = FileCatalog()
            catalog.publish(ServerFile("f", b"x", raw_size=10_000_000))
            web = WebServer(sim, catalog, compression_enabled=False)
            base = NetworkLink(latency_s=0.0, bandwidth_bps=1e6)
            link = CongestedLink(base, diurnal_schedule(peak_factor=0.2))
            done: list[float] = []
            web.download(["f"], link, None, lambda p: done.append(sim.now))
            sim.run()
            return done[0] - start_time

        offpeak = run_at(10 * 3600.0)
        peak = run_at(20 * 3600.0)
        assert peak == pytest.approx(5 * offpeak, rel=1e-6)
