"""Adversary fabric unit tests: plan validation and tampering semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation import Trace
from repro.simulation.adversary import (
    ATTACK_KINDS,
    AdversaryBehavior,
    AdversaryFabric,
    AdversaryPlan,
    SybilFleet,
)
from repro.simulation.rng import RngRegistry


def fabric(plan: AdversaryPlan, seed: int = 5) -> AdversaryFabric:
    return AdversaryFabric(plan, RngRegistry(seed), Trace())


def tamper(fab: AdversaryFabric, client: str, *, logical: str = "u0", seed_vecs=7):
    rng = np.random.default_rng(seed_vecs)
    base = rng.normal(size=16)
    honest = base + 0.01 * rng.normal(size=16)
    gradient = rng.normal(size=16)
    return (
        fab.tamper(
            client_id=client,
            wu_id=f"{logical}#r0",
            logical_id=logical,
            base_params=base,
            honest_params=honest,
            honest_gradient=gradient,
            honest_credit=10.0,
            now=0.0,
        ),
        base,
        honest,
        gradient,
    )


class TestPlanValidation:
    def test_empty_plan_inactive(self):
        assert not AdversaryPlan().active

    def test_any_behavior_activates(self):
        plan = AdversaryPlan(behaviors=(AdversaryBehavior(clients=("c0",)),))
        assert plan.active

    def test_unknown_attack(self):
        with pytest.raises(ConfigurationError):
            AdversaryBehavior(clients=("c0",), attack="meltdown")

    def test_no_clients(self):
        with pytest.raises(ConfigurationError):
            AdversaryBehavior(clients=())

    def test_claim_factor_below_one(self):
        with pytest.raises(ConfigurationError):
            AdversaryBehavior(clients=("c0",), claim_factor=0.5)

    def test_client_in_two_behaviors(self):
        with pytest.raises(ConfigurationError):
            AdversaryPlan(
                behaviors=(
                    AdversaryBehavior(clients=("c0",)),
                    AdversaryBehavior(clients=("c0",), attack="collude"),
                )
            )

    def test_sybil_validation(self):
        with pytest.raises(ConfigurationError):
            SybilFleet(identity="", count=1)
        with pytest.raises(ConfigurationError):
            SybilFleet(identity="x", count=0)


class TestTampering:
    def test_honest_client_untouched(self):
        fab = fabric(AdversaryPlan(behaviors=(AdversaryBehavior(clients=("bad",)),)))
        out, _, honest, gradient = tamper(fab, "good")
        assert out.params is honest
        assert out.gradient is gradient
        assert out.claimed_credit is None
        assert not out.tampered
        assert fab.tampered_uploads == 0

    @pytest.mark.parametrize(
        "attack", [a for a in ATTACK_KINDS if a != "claim_inflate"]
    )
    def test_tampering_attacks_change_params(self, attack):
        plan = AdversaryPlan(
            behaviors=(
                AdversaryBehavior(clients=("bad",), attack=attack, magnitude=2.0),
            )
        )
        fab = fabric(plan)
        out, _, honest, _ = tamper(fab, "bad")
        assert out.tampered
        assert not np.allclose(out.params, honest)
        assert out.gradient is not None  # gradient rules must not crash
        assert fab.tampered_uploads == 1

    def test_claim_inflate_keeps_computation_honest(self):
        plan = AdversaryPlan(
            behaviors=(
                AdversaryBehavior(
                    clients=("bad",), attack="claim_inflate", claim_factor=50.0
                ),
            )
        )
        fab = fabric(plan)
        out, _, honest, gradient = tamper(fab, "bad")
        assert out.params is honest
        assert out.gradient is gradient
        assert out.claimed_credit == 500.0
        assert not out.tampered  # computation itself is honest
        assert fab.inflated_claims == 1

    def test_signflip_reverses_delta(self):
        plan = AdversaryPlan(
            behaviors=(
                AdversaryBehavior(
                    clients=("bad",), attack="falsify_signflip", magnitude=1.0
                ),
            )
        )
        out, base, honest, _ = tamper(fabric(plan), "bad")
        np.testing.assert_allclose(out.params, base - (honest - base))

    def test_poison_drift_target_is_fixed_per_identity(self):
        plan = AdversaryPlan(
            behaviors=(AdversaryBehavior(clients=("bad",), attack="poison_drift"),)
        )
        fab = fabric(plan)
        first, base, honest, _ = tamper(fab, "bad", logical="u0")
        second, _, _, _ = tamper(fab, "bad", logical="u1")
        target = fab._drift_targets["bad"]
        step = 0.25
        np.testing.assert_allclose(first.params, honest + step * (target - honest))
        np.testing.assert_allclose(second.params, honest + step * (target - honest))


class TestCollusion:
    def plan(self):
        return AdversaryPlan(
            behaviors=(
                AdversaryBehavior(
                    clients=("bad-a", "bad-b"), attack="collude",
                    collusion_group="cartel",
                ),
            )
        )

    def test_cartel_members_bit_identical_per_unit(self):
        fab = fabric(self.plan())
        a, _, _, _ = tamper(fab, "bad-a", logical="u0")
        b, _, _, _ = tamper(fab, "bad-b", logical="u0")
        assert np.array_equal(a.params, b.params)
        assert np.array_equal(a.gradient, b.gradient)

    def test_different_units_differ(self):
        fab = fabric(self.plan())
        a, _, _, _ = tamper(fab, "bad-a", logical="u0")
        b, _, _, _ = tamper(fab, "bad-a", logical="u1")
        assert not np.array_equal(a.params, b.params)

    def test_same_seed_reproduces(self):
        a, _, _, _ = tamper(fabric(self.plan(), seed=3), "bad-a")
        b, _, _, _ = tamper(fabric(self.plan(), seed=3), "bad-a")
        assert np.array_equal(a.params, b.params)


class TestSybils:
    def test_register_binds_fleet_behavior(self):
        fleet = SybilFleet(identity="ring", count=2, attack="falsify_scale", magnitude=3.0)
        fab = fabric(AdversaryPlan(sybils=(fleet,)))
        fab.register_sybil(fleet, "sybil-ring-000")
        assert fab.compromised("sybil-ring-000")
        assert fab.attack_for("sybil-ring-000") == "falsify_scale"
        out, _, honest, _ = tamper(fab, "sybil-ring-000")
        np.testing.assert_allclose(out.params, honest * 3.0)
