"""Event queue and simulator engine tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order: list[str] = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.pop().callback()
        q.pop().callback()
        assert order == ["a", "b"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None, "first")
        second = q.push(1.0, lambda: None, "second")
        assert q.pop() is first
        assert q.pop() is second

    def test_cancel_skipped_on_pop(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        b = q.push(2.0, lambda: None)
        a.cancel()
        assert q.pop() is b

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        a.cancel()
        assert q.peek_time() == 5.0

    def test_is_empty_with_only_cancelled(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        a.cancel()
        assert q.is_empty()

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)

    def test_repr_shows_state(self):
        q = EventQueue()
        h = q.push(1.5, lambda: None, "tick")
        assert "tick" in repr(h)
        h.cancel()
        assert "cancelled" in repr(h)


class TestCompaction:
    """Majority-cancelled heaps are compacted (fleet-scale: dead timeout
    entries must not grow the per-event log factor without bound)."""

    def test_compaction_shrinks_heap(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(100)]
        for handle in handles[:80]:
            handle.cancel()
        assert len(q) == 100  # lazy: nothing removed yet
        q.push(200.0, lambda: None)  # trips the majority check
        assert len(q) == 21  # 20 live survivors + the new push

    def test_order_preserved_across_compaction(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None, label=f"e{i}") for i in range(100)]
        for i, handle in enumerate(handles):
            if i % 10 != 3:  # cancel 90%
                handle.cancel()
        q.push(0.5, lambda: None, label="early")
        popped = []
        while True:
            try:
                popped.append(q.pop())
            except SimulationError:
                break
        assert [h.label for h in popped] == [
            "early", "e3", "e13", "e23", "e33", "e43",
            "e53", "e63", "e73", "e83", "e93",
        ]

    def test_small_heaps_never_compact(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(20)]
        for handle in handles:
            handle.cancel()
        q.push(99.0, lambda: None)
        assert len(q) == 21  # below _COMPACT_MIN: all lazy entries remain

    def test_cancel_after_pop_does_not_skew_accounting(self):
        q = EventQueue()
        live = [q.push(float(i), lambda: None) for i in range(100)]
        fired = [q.pop() for _ in range(50)]
        for handle in fired:
            handle.cancel()  # cancelling an already-fired handle
        assert q._cancelled_count == 0
        q.push(200.0, lambda: None)
        assert len(q) == 51  # no spurious compaction, nothing lost
        del live

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert q._cancelled_count == 1


class TestSimulator:
    def test_clock_advances_to_event_times(self, sim):
        times: list[float] = []
        sim.schedule(3.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 3.0]
        assert sim.now == 3.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_stops_clock_exactly(self, sim):
        fired: list[float] = []
        sim.schedule(10.0, lambda: fired.append(sim.now))
        sim.run(until=4.0)
        assert sim.now == 4.0
        assert fired == []
        sim.run()
        assert fired == [10.0]

    def test_run_until_advances_idle_clock(self, sim):
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_events_can_schedule_events(self, sim):
        seen: list[float] = []

        def chain(depth: int) -> None:
            seen.append(sim.now)
            if depth:
                sim.schedule(1.0, lambda: chain(depth - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_max_events_guard(self, sim):
        def forever() -> None:
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step_returns_false_when_idle(self, sim):
        assert sim.step() is False
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.events_processed == 1

    def test_cancelled_event_not_executed(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_pending_counts_live_only(self, sim):
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.pending() == 1

    def test_reentrant_run_rejected(self, sim):
        def nested() -> None:
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()


@settings(max_examples=30, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
def test_property_events_fire_in_time_order(delays):
    sim = Simulator()
    fired: list[float] = []
    for d in delays:
        sim.schedule(d, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
