"""Chaos-plan dataclass validation and window queries."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.chaos import (
    ChaosPlan,
    PartitionSchedule,
    PartitionWindow,
    ServerCrash,
    StoreFaultWindow,
    TransferFaultPlan,
)


class TestTransferFaultPlan:
    def test_defaults_inactive(self):
        assert not TransferFaultPlan().active

    def test_active_with_any_probability(self):
        assert TransferFaultPlan(failure_p=0.1).active
        assert TransferFaultPlan(stall_p=0.1).active

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            TransferFaultPlan(failure_p=-0.1)
        with pytest.raises(ConfigurationError):
            TransferFaultPlan(stall_p=1.5)

    def test_probabilities_cannot_exceed_one(self):
        with pytest.raises(ConfigurationError):
            TransferFaultPlan(failure_p=0.7, stall_p=0.4)

    def test_stall_timeout_positive(self):
        with pytest.raises(ConfigurationError):
            TransferFaultPlan(stall_timeout_s=0.0)


class TestPartitionWindow:
    def test_blocks_everyone_when_clients_empty(self):
        w = PartitionWindow(start_s=10.0, duration_s=5.0)
        assert w.blocks("any-client", 12.0)
        assert not w.blocks("any-client", 9.0)
        assert not w.blocks("any-client", 15.0)  # end is exclusive

    def test_blocks_only_listed_clients(self):
        w = PartitionWindow(10.0, 5.0, clients=("c1",))
        assert w.blocks("c1", 12.0)
        assert not w.blocks("c2", 12.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(-1.0, 5.0)
        with pytest.raises(ConfigurationError):
            PartitionWindow(0.0, 0.0)

    def test_schedule_finds_blocking_window(self):
        sched = PartitionSchedule(
            (PartitionWindow(0.0, 5.0, ("c1",)), PartitionWindow(10.0, 5.0))
        )
        assert sched.blocking("c1", 2.0).clients == ("c1",)
        assert sched.blocking("c2", 2.0) is None
        assert sched.blocking("c2", 11.0) is not None
        assert bool(sched)
        assert not bool(PartitionSchedule())


class TestStoreFaultWindow:
    def test_outage_covers(self):
        w = StoreFaultWindow(100.0, 50.0)
        assert w.latency_factor is None
        assert w.covers(100.0)
        assert w.covers(149.0)
        assert not w.covers(150.0)

    def test_degraded_factor_bounds(self):
        StoreFaultWindow(0.0, 1.0, latency_factor=2.0)
        with pytest.raises(ConfigurationError):
            StoreFaultWindow(0.0, 1.0, latency_factor=0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StoreFaultWindow(-1.0, 1.0)


class TestServerCrash:
    def test_defaults(self):
        crash = ServerCrash(at_s=60.0)
        assert crash.restart_delay_s == 120.0

    def test_permanent_loss(self):
        assert ServerCrash(60.0, restart_delay_s=None).restart_delay_s is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServerCrash(-1.0)
        with pytest.raises(ConfigurationError):
            ServerCrash(0.0, restart_delay_s=0.0)


class TestChaosPlan:
    def test_empty_plan_inactive(self):
        assert not ChaosPlan().active

    def test_each_layer_activates(self):
        assert ChaosPlan(transfer=TransferFaultPlan(failure_p=0.1)).active
        assert ChaosPlan(partitions=(PartitionWindow(0.0, 1.0),)).active
        assert ChaosPlan(ps_crashes=(ServerCrash(1.0),)).active
        assert ChaosPlan(kv_windows=(StoreFaultWindow(0.0, 1.0),)).active

    def test_type_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan(transfer="nope")
        with pytest.raises(ConfigurationError):
            ChaosPlan(partitions=(object(),))
        with pytest.raises(ConfigurationError):
            ChaosPlan(ps_crashes=(object(),))
        with pytest.raises(ConfigurationError):
            ChaosPlan(kv_windows=(object(),))

    def test_plan_is_pure_data(self):
        # Same plan compares equal to an identically built one: plans hold
        # no RNG state, which is what makes chaos runs reproducible.
        a = ChaosPlan(transfer=TransferFaultPlan(failure_p=0.2))
        b = ChaosPlan(transfer=TransferFaultPlan(failure_p=0.2))
        assert a == b
