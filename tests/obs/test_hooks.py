"""Trace observer hooks, the metrics collector mapping, and the profiler."""

from __future__ import annotations

from repro.core.runner import DistributedRunner
from repro.obs import MetricsCollector, MetricsRegistry, SimProfiler
from repro.simulation.engine import Simulator
from repro.simulation.tracing import Trace

from ..core.test_runner import tiny_config


class Recorder:
    def __init__(self):
        self.records = []
        self.counters = []

    def on_record(self, record):
        self.records.append(record)

    def on_counter(self, kind, amount):
        self.counters.append((kind, amount))


class TestTraceObservers:
    def test_attach_sees_emits_and_incrs(self):
        trace = Trace()
        rec = Recorder()
        trace.attach(rec)
        trace.emit(1.0, "a.x", foo=1)
        trace.incr("b.y", 3)
        assert [r.kind for r in rec.records] == ["a.x"]
        assert rec.counters == [("b.y", 3)]

    def test_detach_stops_delivery(self):
        trace = Trace()
        rec = Recorder()
        trace.attach(rec)
        trace.detach(rec)
        trace.emit(1.0, "a.x")
        trace.incr("b.y")
        assert rec.records == [] and rec.counters == []

    def test_attach_is_idempotent(self):
        trace = Trace()
        rec = Recorder()
        trace.attach(rec)
        trace.attach(rec)
        trace.emit(1.0, "a.x")
        assert len(rec.records) == 1

    def test_summary_prefix_covers_bare_counters(self):
        """The chaos layers bump counters via incr() without emitting a
        record; summary(prefix) must filter those the same way."""
        trace = Trace()
        trace.emit(1.0, "ps.crash")
        trace.incr("ps.adoptions", 2)
        trace.incr("net.retry")
        assert trace.summary("ps.") == {"ps.adoptions": 2, "ps.crash": 1}

    def test_summary_tuple_prefix(self):
        trace = Trace()
        trace.emit(1.0, "ps.crash")
        trace.incr("net.retry")
        trace.incr("kv.outage")
        assert trace.summary(("ps.", "net.")) == {"net.retry": 1, "ps.crash": 1}
        assert trace.summary() == {"kv.outage": 1, "net.retry": 1, "ps.crash": 1}


class TestCollectorMapping:
    def feed(self, *events):
        registry = MetricsRegistry()
        trace = Trace()
        trace.attach(MetricsCollector(registry))
        for time, kind, fields in events:
            trace.emit(time, kind, **fields)
        return registry.snapshot()

    def test_transfer_events(self):
        snap = self.feed(
            (1.0, "web.download", {"files": ["f"], "seconds": 2.5}),
            (2.0, "web.upload", {"nbytes": 10, "seconds": 0.5}),
            (3.0, "web.xfer_fail", {"direction": "down", "reason": "stall"}),
            (4.0, "net.retry", {"client": "c1"}),
        )
        assert snap["histograms"]["transfer.download_s"]["mean"] == 2.5
        assert snap["histograms"]["transfer.upload_s"]["mean"] == 0.5
        assert snap["counters"]["transfer.failures"] == 1
        assert snap["counters"]["transfer.retries"] == 1

    def test_scheduler_and_credit_events(self):
        snap = self.feed(
            (0.0, "sched.created", {"wu": "a", "epoch": 1, "shard": 0}),
            (1.0, "sched.assign", {"wu": "a", "host": "h"}),
            (2.0, "credit.grant", {"wu": "a", "host": "h", "amount": 1.5}),
            (3.0, "credit.grant", {"wu": "b", "host": "h", "amount": 2.0}),
        )
        assert snap["counters"]["sched.workunits_created"] == 1
        assert snap["counters"]["sched.assignments"] == 1
        assert snap["counters"]["credit.grants"] == 2
        assert snap["gauges"]["credit.granted_total"]["value"] == 3.5

    def test_epoch_duration_from_bracketing(self):
        snap = self.feed(
            (10.0, "epoch.start", {"epoch": 1}),
            (25.0, "epoch.end", {"epoch": 1, "accuracy": 0.7}),
        )
        assert snap["histograms"]["epoch.duration_s"]["mean"] == 15.0
        assert snap["gauges"]["epoch.accuracy"]["value"] == 0.7

    def test_unknown_kinds_are_ignored(self):
        # Mapped counters pre-exist at zero; an unmapped kind moves nothing.
        snap = self.feed((0.0, "totally.new.kind", {"x": 1}))
        assert all(v == 0 for v in snap["counters"].values())
        assert snap["histograms"] == {} and snap["gauges"] == {}


class TestProfiler:
    def test_buckets_by_label_prefix(self):
        profiler = SimProfiler()
        profiler.run_event("web:download", lambda: None)
        profiler.run_event("web:upload", lambda: None)
        profiler.run_event("cpu", lambda: None)
        profiler.run_event("", lambda: None)
        report = profiler.report()
        assert report["total_events"] == 4
        assert report["by_label"]["web"]["events"] == 2
        assert report["by_label"]["cpu"]["events"] == 1
        assert report["by_label"]["<unlabeled>"]["events"] == 1
        assert report["total_wall_s"] >= 0.0

    def test_charges_wall_time_even_when_callback_raises(self):
        profiler = SimProfiler()

        def boom():
            raise RuntimeError("x")

        try:
            profiler.run_event("cpu", boom)
        except RuntimeError:
            pass
        assert profiler.report()["by_label"]["cpu"]["events"] == 1

    def test_engine_routes_events_through_profiler(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.profiler = profiler
        fired = []
        sim.schedule(1.0, lambda: fired.append(1), label="cpu:tick")
        sim.run()
        assert fired == [1]
        assert profiler.report()["by_label"]["cpu"]["events"] == 1

    def test_profiled_run_attributes_all_events(self):
        from repro.obs import ObservabilityConfig

        runner = DistributedRunner(
            tiny_config(), observability=ObservabilityConfig(profile=True)
        )
        runner.run()
        report = runner.obs.profiler.report()
        assert report["total_events"] > 0
        assert "cpu" in report["by_label"]
