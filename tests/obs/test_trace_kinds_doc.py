"""Drift guard: every emitted trace kind must be documented.

Runs a short chaotic, replicated, autoscaled run — the union of the
emitting subsystems — and asserts every kind it produces (and every
causality-key field those records carry) appears in docs/TRACE_KINDS.md.
A new emit site without a catalogue row fails here, which is the point:
the catalogue is the contract the span builder and the trace consumers
rely on.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.core import FaultConfig
from repro.core.runner import DistributedRunner
from repro.obs.spans import SpanStore

from ..chaos._invariants import seeded_plan
from ..core.test_runner import tiny_config

DOC = Path(__file__).resolve().parents[2] / "docs" / "TRACE_KINDS.md"

# Causality/join keys: when one of these appears on a record, the doc row
# for that kind must mention it (required or italic-optional).
ID_FIELDS = ("wu", "client", "host", "logical", "canonical", "store", "key")


def documented_kinds() -> dict[str, str]:
    """kind -> the raw fields cell from its catalogue row."""
    table_row = re.compile(r"^\|\s*`([a-z_]+\.[a-z_]+)`\s*\|([^|]*)\|")
    kinds: dict[str, str] = {}
    for line in DOC.read_text().splitlines():
        match = table_row.match(line)
        if match:
            kinds[match.group(1)] = match.group(2)
    return kinds


@pytest.fixture(scope="module")
def chaotic_trace():
    config = tiny_config(
        max_epochs=3,
        replicas=2,
        num_clients=4,
        ps_autoscale=True,
        codec="fp16",  # exercises the codec plane's net.encode/net.decode
        faults=FaultConfig(chaos=seeded_plan(2021, 800.0)),
    )
    runner = DistributedRunner(config)
    runner.run()
    return runner.trace


def test_catalogue_parses_nonempty():
    kinds = documented_kinds()
    assert len(kinds) > 30
    assert "sched.created" in kinds
    assert "ps.assimilated" in kinds


def test_every_emitted_kind_is_documented(chaotic_trace):
    kinds = documented_kinds()
    emitted = {record.kind for record in chaotic_trace}
    undocumented = sorted(emitted - set(kinds))
    assert not undocumented, (
        f"emit sites produced kinds missing from docs/TRACE_KINDS.md: "
        f"{undocumented} — add a catalogue row for each"
    )


def test_documented_id_fields_match_emitted(chaotic_trace):
    kinds = documented_kinds()
    missing: list[str] = []
    for record in chaotic_trace:
        row = kinds.get(record.kind, "")
        for field_name in ID_FIELDS:
            if field_name in record.fields and f"`{field_name}`" not in row:
                missing.append(f"{record.kind} carries {field_name!r}")
    assert not missing, (
        "records carry id fields their catalogue rows don't mention: "
        + ", ".join(sorted(set(missing)))
    )


def test_span_builder_handles_every_emitted_kind(chaotic_trace):
    # The builder must at least classify every kind (handler or explicit
    # skip) — unhandled kinds mean the catalogue and builder drifted.
    store = SpanStore.from_trace(chaotic_trace)
    assert store.unhandled_kinds == set()
