"""Unit tests for the metrics primitives and the registry."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    NULL_TIMER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.incr()
        c.incr(4)
        assert c.value == 5
        assert c.snapshot() == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            Counter("x").incr(-1)


class TestGauge:
    def test_tracks_envelope(self):
        g = Gauge("x")
        assert g.value is None and g.updates == 0
        for v in (3.0, -1.0, 2.0):
            g.set(v)
        assert g.value == 2.0
        assert g.min == -1.0 and g.max == 3.0
        assert g.updates == 3
        snap = g.snapshot()
        assert snap == {"value": 2.0, "min": -1.0, "max": 3.0, "updates": 3}


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0 and h.max == 4.0
        assert h.samples() == (1.0, 2.0, 3.0, 4.0)

    def test_quantiles_match_numpy(self):
        data = [0.3, 7.1, 2.2, 9.9, 4.4, 1.1]
        h = Histogram("lat", data)
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert h.quantile(q) == float(np.quantile(data, q))
        pcts = h.percentiles()
        assert set(pcts) == {"p50", "p95", "p99"}

    def test_empty_histogram_stats_undefined(self):
        h = Histogram("lat")
        assert h.count == 0
        assert h.snapshot() == {"count": 0}
        for stat in ("mean", "min", "max"):
            with pytest.raises(ObservabilityError, match="no samples"):
                getattr(h, stat)
        with pytest.raises(ObservabilityError, match="no samples"):
            h.quantile(0.5)

    def test_rejects_bad_inputs(self):
        h = Histogram("lat", [1.0])
        with pytest.raises(ObservabilityError, match="non-finite"):
            h.observe(math.nan)
        with pytest.raises(ObservabilityError, match="non-finite"):
            h.observe(math.inf)
        with pytest.raises(ObservabilityError, match="outside"):
            h.quantile(1.5)

    def test_merge_concatenates(self):
        a = Histogram("lat", [1.0, 2.0])
        b = Histogram("lat", [3.0])
        merged = a.merge(b)
        assert merged.samples() == (1.0, 2.0, 3.0)
        # merge is non-destructive
        assert a.count == 2 and b.count == 1


class TestTimerNesting:
    def make(self):
        clock = {"now": 0.0}
        reg = MetricsRegistry(clock=lambda: clock["now"])
        return clock, reg

    def test_flat_span(self):
        clock, reg = self.make()
        t = reg.timer("work")
        t.start()
        clock["now"] = 5.0
        t.stop()
        assert t.count == 1
        assert t.total_s == 5.0
        assert t.exclusive_s == 5.0

    def test_nested_spans_decompose_parent(self):
        clock, reg = self.make()
        parent, child = reg.timer("parent"), reg.timer("child")
        parent.start()
        clock["now"] = 1.0
        child.start()
        clock["now"] = 4.0
        child.stop()
        clock["now"] = 6.0
        parent.stop()
        assert child.total_s == 3.0 and child.exclusive_s == 3.0
        assert parent.total_s == 6.0
        assert parent.exclusive_s == 3.0  # 6 inclusive minus 3 in the child

    def test_context_manager(self):
        clock, reg = self.make()
        with reg.timer("work").time():
            clock["now"] = 2.0
        assert reg.timer("work").total_s == 2.0

    def test_stop_without_start_raises(self):
        _, reg = self.make()
        with pytest.raises(ObservabilityError, match="no span running"):
            reg.timer("work").stop()

    def test_misnested_stop_raises(self):
        _, reg = self.make()
        a, b = reg.timer("a"), reg.timer("b")
        a.start()
        b.start()
        with pytest.raises(ObservabilityError, match="misnesting"):
            a.stop()

    def test_null_timer_is_inert(self):
        NULL_TIMER.start()
        NULL_TIMER.stop()
        with NULL_TIMER.time():
            pass
        with NULL_TIMER:
            pass


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")
        assert isinstance(reg.timer("t"), Timer)
        assert reg.timer("t") is reg.timer("t")

    def test_name_collision_across_types_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError, match="already registered"):
            reg.histogram("x")
        reg.timer("t")
        with pytest.raises(ObservabilityError, match="already registered"):
            reg.counter("t")
        with pytest.raises(ObservabilityError, match="already registered"):
            reg.timer("x")

    def test_snapshot_groups_and_sorts(self):
        reg = MetricsRegistry()
        reg.counter("b").incr(2)
        reg.counter("a").incr()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms", "timers"]
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 1, "b": 2}
        assert snap["gauges"]["g"]["value"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1
