"""Trace JSONL dump/load: schema versioning, fidelity, byte-stability."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.runner import DistributedRunner
from repro.obs.spans import SpanStore
from repro.obs.trace_io import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    iter_trace_jsonl,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.simulation.tracing import Trace, TraceRecord

from ..core.test_runner import tiny_config


@pytest.fixture(scope="module")
def runner():
    runner = DistributedRunner(tiny_config())
    runner.run()
    return runner


class TestRoundTrip:
    def test_records_survive_verbatim(self, runner, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(runner.trace, path)
        header, records = read_trace_jsonl(path)
        assert count == len(records) == len(runner.trace)
        for original, loaded in zip(runner.trace, records):
            assert loaded.time == original.time
            assert loaded.kind == original.kind
        assert header["schema"] == TRACE_SCHEMA
        assert header["version"] == TRACE_SCHEMA_VERSION
        assert header["counters"] == dict(runner.trace.summary())

    def test_span_reconstruction_identical_on_replay(self, runner, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(runner.trace, path)
        live = SpanStore.from_trace(runner.trace)
        replay = SpanStore.from_records(read_trace_jsonl(path)[1])
        assert len(replay.spans) == len(live.spans)
        assert replay.lineage_problems() == []
        assert replay.critical_path().total_s == pytest.approx(
            live.critical_path().total_s
        )

    def test_dump_is_byte_stable(self, runner, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace_jsonl(runner.trace, a, meta={"seed": 77})
        write_trace_jsonl(runner.trace, b, meta={"seed": 77})
        assert a.read_bytes() == b.read_bytes()

    def test_iter_streams_lazily(self, runner, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(runner.trace, path)
        first = next(iter_trace_jsonl(path))
        assert isinstance(first, TraceRecord)


class TestSanitization:
    def test_numpy_scalars_and_arrays(self, tmp_path):
        trace = Trace()
        trace.emit(1.0, "x.y", acc=np.float64(0.5), n=np.int32(3),
                   vec=np.array([1.0, 2.0]), opaque=object())
        path = tmp_path / "t.jsonl"
        write_trace_jsonl(trace, path)
        _, [record] = read_trace_jsonl(path)
        assert record["acc"] == 0.5
        assert record["n"] == 3
        assert record["vec"] == [1.0, 2.0]
        assert isinstance(record["opaque"], str)

    def test_bounded_trace_header_carries_drop_count(self, tmp_path):
        trace = Trace(max_records=2)
        for i in range(5):
            trace.emit(float(i), "x.y", i=i)
        path = tmp_path / "t.jsonl"
        count = write_trace_jsonl(trace, path)
        header, records = read_trace_jsonl(path)
        assert count == len(records) == 2
        assert header["counters"]["trace.dropped"] == 3
        assert header["max_records"] == 2


class TestSchemaGuards:
    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(TraceSchemaError, match="header"):
            read_trace_jsonl(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"schema": TRACE_SCHEMA, "version": 99}) + "\n")
        with pytest.raises(TraceSchemaError, match="version"):
            read_trace_jsonl(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceSchemaError, match="empty"):
            read_trace_jsonl(path)

    def test_rejects_corrupt_record_line(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            json.dumps({"schema": TRACE_SCHEMA, "version": TRACE_SCHEMA_VERSION})
            + "\nnot json\n"
        )
        with pytest.raises(TraceSchemaError, match="bad record"):
            read_trace_jsonl(path)
