"""Hypothesis property tests for the metrics primitives.

The ISSUE pins three algebraic properties the dashboard and the
telemetry export depend on:

* histogram quantiles are *exactly* ``np.quantile`` over the raw
  samples (the exact-sample design buys this by construction);
* histogram merge is associative (it is sample concatenation);
* a nest of timers decomposes: a parent's exclusive time equals its
  inclusive time minus its direct children's inclusive time, and
  sibling leaves never double count.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, MetricsRegistry
from repro.obs.telemetry import run_digest

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(finite, min_size=1, max_size=60)


@settings(max_examples=80, deadline=None)
@given(samples=sample_lists, q=st.floats(min_value=0.0, max_value=1.0))
def test_property_quantile_matches_numpy(samples, q):
    h = Histogram("h", samples)
    expected = float(np.quantile(np.asarray(samples, dtype=np.float64), q))
    assert h.quantile(q) == expected


@settings(max_examples=60, deadline=None)
@given(
    a=st.lists(finite, max_size=20),
    b=st.lists(finite, max_size=20),
    c=st.lists(finite, max_size=20),
)
def test_property_merge_associative(a, b, c):
    ha, hb, hc = Histogram("h", a), Histogram("h", b), Histogram("h", c)
    left = ha.merge(hb).merge(hc)
    right = ha.merge(hb.merge(hc))
    assert left.samples() == right.samples()
    if left.count:
        assert left.quantile(0.5) == right.quantile(0.5)


@settings(max_examples=60, deadline=None)
@given(
    a=st.lists(finite, min_size=1, max_size=20),
    b=st.lists(finite, min_size=1, max_size=20),
)
def test_property_merge_stats_match_pooled_samples(a, b):
    merged = Histogram("h", a).merge(Histogram("h", b))
    pooled = a + b
    assert merged.count == len(pooled)
    assert merged.min == min(pooled)
    assert merged.max == max(pooled)
    assert merged.quantile(0.95) == float(np.quantile(pooled, 0.95))


durations = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=0, max_size=8
)


@settings(max_examples=60, deadline=None)
@given(gaps=durations, child_spans=durations)
def test_property_timer_nesting_decomposes(gaps, child_spans):
    """parent.exclusive == parent.total - sum(child totals), exactly.

    The parent runs one span; children run back-to-back inside it with
    arbitrary idle gaps between them.  Exact float equality holds because
    the implementation computes exclusive time by subtracting the same
    accumulated child sum it hands to the parent span.
    """
    clock = {"now": 0.0}
    reg = MetricsRegistry(clock=lambda: clock["now"])
    parent = reg.timer("parent")
    child = reg.timer("child")
    parent.start()
    for gap, span in zip(gaps, child_spans):
        clock["now"] += gap
        child.start()
        clock["now"] += span
        child.stop()
    clock["now"] += 1.0
    parent.stop()
    assert parent.count == 1
    assert parent.exclusive_s == parent.total_s - child.total_s
    assert child.exclusive_s == child.total_s  # leaves keep all their time


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["label", "counters", "epochs", "seed", "config"]),
        st.integers(min_value=0, max_value=10),
        min_size=1,
    )
)
def test_property_digest_ignores_key_order(core):
    """The digest is canonical: insertion order of the dict never matters."""
    reversed_core = dict(reversed(list(core.items())))
    assert run_digest(core) == run_digest(reversed_core)
