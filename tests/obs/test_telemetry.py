"""Telemetry export: schema, digest semantics, round-trip, CLI, dashboard."""

from __future__ import annotations

import json

import pytest

from repro.analysis import sweep_dashboard, telemetry_dashboard
from repro.cli import main
from repro.core.runner import DistributedRunner
from repro.errors import ObservabilityError
from repro.obs import (
    DIGEST_FIELDS,
    OBSERVABILITY_OFF,
    TELEMETRY_SCHEMA,
    TELEMETRY_VERSION,
    ObservabilityConfig,
    build_sweep_telemetry,
    read_telemetry,
    run_digest,
    write_telemetry,
)

from ..core.test_runner import tiny_config


@pytest.fixture(scope="module")
def finished_runner():
    runner = DistributedRunner(tiny_config(), observability=ObservabilityConfig(profile=True))
    runner.run()
    return runner


class TestDocument:
    def test_schema_and_sections(self, finished_runner):
        payload = finished_runner.telemetry()
        assert payload["schema"] == TELEMETRY_SCHEMA
        assert payload["schema_version"] == TELEMETRY_VERSION
        assert payload["seed"] == finished_runner.config.seed
        assert len(payload["epochs"]) == len(finished_runner.result.epochs)
        assert payload["counters"] == dict(finished_runner.result.counters)
        assert payload["audit"]["ok"] is True
        assert payload["metrics"]["histograms"]
        assert payload["profile"]["total_events"] > 0
        assert payload["digest"] == run_digest(payload)

    def test_document_is_json_serialisable(self, finished_runner):
        json.dumps(finished_runner.telemetry())

    def test_digest_excludes_observability_sections(self, finished_runner):
        payload = finished_runner.telemetry()
        stripped = {k: v for k, v in payload.items() if k in DIGEST_FIELDS}
        assert run_digest(stripped) == payload["digest"]
        # Mutating an observability section must not move the digest ...
        tampered = dict(payload)
        tampered["metrics"] = None
        tampered["audit"] = None
        tampered["profile"] = None
        assert run_digest(tampered) == payload["digest"]
        # ... but touching the deterministic core must.
        tampered["counters"] = {**payload["counters"], "assimilations": 999}
        assert run_digest(tampered) != payload["digest"]

    def test_round_trip(self, finished_runner, tmp_path):
        payload = finished_runner.telemetry()
        path = write_telemetry(tmp_path / "run.json", payload)
        loaded = read_telemetry(path)
        assert loaded == json.loads(json.dumps(payload))  # tuples -> lists

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something.else"}))
        with pytest.raises(ObservabilityError, match="not a telemetry document"):
            read_telemetry(path)

    def test_read_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"schema": TELEMETRY_SCHEMA, "schema_version": 999})
        )
        with pytest.raises(ObservabilityError, match="version"):
            read_telemetry(path)

    def test_read_rejects_tampered_core(self, finished_runner, tmp_path):
        payload = finished_runner.telemetry()
        tampered = json.loads(json.dumps(payload))
        tampered["total_time_s"] += 1.0
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(tampered))
        with pytest.raises(ObservabilityError, match="digest mismatch"):
            read_telemetry(path)

    def test_sweep_document_round_trip(self, finished_runner, tmp_path):
        doc = build_sweep_telemetry([finished_runner.telemetry()])
        path = write_telemetry(tmp_path / "sweep.json", doc)
        loaded = read_telemetry(path)
        assert loaded["schema"].endswith(".sweep")
        assert len(loaded["runs"]) == 1


class TestObservabilityModes:
    def test_off_mode_emits_no_observability_sections(self):
        runner = DistributedRunner(tiny_config(), observability=OBSERVABILITY_OFF)
        runner.run()
        payload = runner.telemetry()
        assert payload["metrics"] is None
        assert payload["audit"] is None
        assert payload["profile"] is None
        assert payload["digest"] == run_digest(payload)


class TestDashboards:
    def test_run_dashboard_renders_all_panels(self, finished_runner):
        text = telemetry_dashboard(finished_runner.telemetry())
        assert "accuracy vs simulated hours" in text
        assert "run counters" in text
        assert "latency distributions" in text
        assert "component timers" in text
        assert "wall-clock profile" in text
        assert "audit: OK" in text

    def test_sweep_dashboard_renders(self, finished_runner):
        text = sweep_dashboard(build_sweep_telemetry([finished_runner.telemetry()]))
        assert "sweep telemetry" in text
        assert "OK" in text


class TestCli:
    RUN_ARGS = [
        "run",
        "-p", "1", "-c", "2", "-t", "2",
        "--epochs", "1",
        "--shards", "4",
        "--alpha", "0.9",
    ]

    def test_run_metrics_out_and_dashboard(self, tmp_path, capsys):
        out = tmp_path / "tele.json"
        code = main(self.RUN_ARGS + ["--metrics-out", str(out), "--profile"])
        assert code == 0
        assert "telemetry written to" in capsys.readouterr().out
        payload = read_telemetry(out)
        assert payload["audit"]["ok"] is True
        assert payload["profile"]["total_events"] > 0

        assert main(["dashboard", str(out)]) == 0
        text = capsys.readouterr().out
        assert "audit: OK" in text and "run counters" in text

    def test_run_no_audit(self, tmp_path, capsys):
        out = tmp_path / "tele.json"
        assert main(self.RUN_ARGS + ["--metrics-out", str(out), "--no-audit"]) == 0
        capsys.readouterr()
        payload = read_telemetry(out)
        assert payload["audit"] is None
        assert payload["metrics"] is not None

    def test_sweep_metrics_out_and_dashboard(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "-p", "1", "-c", "2", "-t", "2",
                "--epochs", "1",
                "--shards", "4",
                "--rule", "vcasgd,downpour",
                "--metrics-out", str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        payload = read_telemetry(out)
        assert len(payload["runs"]) == 2
        assert all(run["audit"]["ok"] for run in payload["runs"])

        assert main(["dashboard", str(out)]) == 0
        assert "sweep telemetry" in capsys.readouterr().out
