"""Causal span reconstruction: lineage integrity and critical path.

Two layers of coverage: hand-built record streams that pin the builder's
handling of each lifecycle edge (timeouts, invalid results, replication
cancels, emit-order quirks), and full seeded runs asserting the global
contracts — orphan-free lineages and a critical path whose hop durations
sum exactly to the wall clock to the last epoch boundary.
"""

from __future__ import annotations

import pytest

from repro.core import FaultConfig
from repro.core.runner import DistributedRunner
from repro.simulation.tracing import Trace, TraceRecord
from repro.obs.spans import CLIENT_HOPS, SpanStore, span_summary

from ..core.test_runner import tiny_config
from ..chaos._invariants import seeded_plan


def rec(time, kind, **fields):
    return TraceRecord(time, kind, fields)


def happy_path_records(wu="job:e000:s000", client="client-000"):
    """One workunit's clean ride through the whole pipeline."""
    return [
        rec(0.0, "epoch.start", epoch=0),
        rec(0.0, "sched.created", wu=wu, epoch=0, shard=0),
        rec(1.0, "sched.assign", wu=wu, client=client, attempt=0),
        rec(1.0, "web.download", files=["shard"], seconds=2.0, client=client, wu=wu),
        rec(3.0, "client.train_start", wu=wu, client=client),
        rec(53.0, "client.train_done", wu=wu, client=client),
        rec(53.0, "web.upload", nbytes=100, seconds=1.0, client=client, wu=wu),
        rec(54.0, "client.uploaded", wu=wu, client=client),
        rec(54.0, "server.result_valid", wu=wu, host=client),
        rec(60.0, "params.publish", version=1, wu=wu),
        rec(60.0, "ps.assimilated", wu=wu, epoch=0, rule="vcasgd",
            accuracy=0.5, queue_wait=1.0, service=5.0, client=client,
            base_version=0, alpha=0.8),
        rec(60.0, "server.assimilated", wu=wu, epoch=0),
        rec(60.0, "epoch.end", epoch=0, accuracy=0.5, spread=0.0),
    ]


class TestHappyPath:
    def test_complete_lineage(self):
        store = SpanStore.from_records(happy_path_records())
        lineage = store.lineage("job:e000:s000")
        assert lineage.fate == "merged"
        assert lineage.complete and not lineage.terminated
        assert [a.outcome for a in lineage.attempts] == ["success"]
        assert store.lineage_problems() == []

    def test_span_chain_names_and_bounds(self):
        store = SpanStore.from_records(happy_path_records())
        names = [s.name for s in store.lineage_spans("job:e000:s000")]
        for expected in (
            "wu.generate", "sched.dispatch", "net.download", "client.train",
            "net.upload", "server.validate", "ps.queue", "ps.service",
            "params.publish",
        ):
            assert expected in names
        train = next(s for s in store.spans if s.name == "client.train")
        assert (train.start, train.end) == (3.0, 53.0)
        # ps.queue/service reconstructed backwards from the commit record.
        queue = next(s for s in store.spans if s.name == "ps.queue")
        service = next(s for s in store.spans if s.name == "ps.service")
        assert (queue.start, queue.end) == (54.0, 55.0)
        assert (service.start, service.end) == (55.0, 60.0)

    def test_merge_staleness_joined_to_publish_version(self):
        store = SpanStore.from_records(happy_path_records())
        merge = store.lineage("job:e000:s000").merge
        assert merge["base_version"] == 0
        assert merge["version"] == 1
        assert merge["staleness"] == 1
        assert merge["alpha"] == 0.8

    def test_critical_path_tiles_the_epoch(self):
        store = SpanStore.from_records(happy_path_records())
        path = store.critical_path()
        assert path.total_s == pytest.approx(60.0, abs=1e-9)
        assert path.end_s == 60.0
        # Hops are contiguous: each starts where the previous ended.
        for before, after in zip(path.hops, path.hops[1:]):
            assert after.start == pytest.approx(before.end, abs=1e-9)
        totals = path.per_hop_totals()
        assert totals["client.train"] == pytest.approx(50.0)


class TestFailureFates:
    def test_timeout_then_success(self):
        wu, a, b = "job:e000:s000", "client-000", "client-001"
        records = [
            rec(0.0, "epoch.start", epoch=0),
            rec(0.0, "sched.created", wu=wu, epoch=0, shard=0),
            rec(0.0, "sched.assign", wu=wu, client=a, attempt=0),
            rec(300.0, "sched.timeout", wu=wu, client=a),
            rec(310.0, "sched.assign", wu=wu, client=b, attempt=1),
            rec(310.0, "web.download", files=[], seconds=1.0, client=b, wu=wu),
            rec(311.0, "client.train_start", wu=wu, client=b),
            rec(361.0, "client.train_done", wu=wu, client=b),
            rec(361.0, "web.upload", nbytes=1, seconds=1.0, client=b, wu=wu),
            rec(362.0, "client.uploaded", wu=wu, client=b),
            rec(362.0, "server.result_valid", wu=wu, host=b),
            rec(370.0, "params.publish", version=1, wu=wu),
            rec(370.0, "ps.assimilated", wu=wu, epoch=0, rule="r", accuracy=0.4,
                queue_wait=0.0, service=8.0, client=b, base_version=0),
            rec(370.0, "server.assimilated", wu=wu, epoch=0),
            rec(370.0, "epoch.end", epoch=0, accuracy=0.4, spread=0.0),
        ]
        store = SpanStore.from_records(records)
        lineage = store.lineage(wu)
        assert [x.outcome for x in lineage.attempts] == ["timeout", "success"]
        assert lineage.fate == "merged"
        assert store.lineage_problems() == []
        # The second dispatch wait starts at the timeout, not at creation.
        dispatches = [s for s in store.spans if s.name == "sched.dispatch"]
        assert dispatches[1].start == 300.0 and dispatches[1].end == 310.0

    def test_exhausted_before_timeout_emit_order(self):
        # The scheduler emits sched.exhausted BEFORE the sched.timeout of
        # the attempt that exhausted the unit; both must land.
        wu = "job:e000:s000"
        records = [
            rec(0.0, "sched.created", wu=wu, epoch=0, shard=0),
            rec(0.0, "sched.assign", wu=wu, client="c0", attempt=0),
            rec(300.0, "sched.exhausted", wu=wu, via="timeout"),
            rec(300.0, "sched.timeout", wu=wu, client="c0"),
        ]
        store = SpanStore.from_records(records)
        lineage = store.lineage(wu)
        assert lineage.fate == "exhausted:timeout"
        assert lineage.terminated
        assert [x.outcome for x in lineage.attempts] == ["timeout"]
        assert store.lineage_problems() == []

    def test_invalid_result_requeues(self):
        wu = "job:e000:s000"
        records = [
            rec(0.0, "sched.created", wu=wu, epoch=0, shard=0),
            rec(0.0, "sched.assign", wu=wu, client="c0", attempt=0),
            rec(50.0, "server.result_invalid", wu=wu, reason="nan_guard", code="non_finite"),
            rec(60.0, "sched.assign", wu=wu, client="c1", attempt=1),
            rec(100.0, "server.result_valid", wu=wu, host="c1"),
            rec(110.0, "ps.assimilated", wu=wu, epoch=0, rule="r", accuracy=0.3,
                queue_wait=0.0, service=5.0, client="c1", base_version=0),
            rec(110.0, "server.assimilated", wu=wu, epoch=0),
        ]
        store = SpanStore.from_records(records)
        lineage = store.lineage(wu)
        assert [x.outcome for x in lineage.attempts] == ["invalid", "success"]
        assert lineage.fate == "merged"
        assert store.lineage_problems() == []

    def test_replication_cancel(self):
        records = [
            rec(0.0, "sched.created", wu="w:r0", epoch=0, shard=0),
            rec(0.0, "sched.created", wu="w:r1", epoch=0, shard=0),
            rec(0.0, "sched.assign", wu="w:r0", client="c0", attempt=0),
            rec(0.0, "sched.assign", wu="w:r1", client="c1", attempt=0),
            rec(40.0, "server.result_valid", wu="w:r0", host="c0"),
            rec(41.0, "quorum.reached", logical="w", canonical="w:r0",
                replicas_seen=1),
            rec(41.0, "sched.cancelled", wu="w:r1"),
            rec(50.0, "ps.assimilated", wu="w:r0", epoch=0, rule="r",
                accuracy=0.4, queue_wait=0.0, service=5.0, client="c0",
                base_version=0),
            rec(50.0, "server.assimilated", wu="w:r0", epoch=0),
        ]
        store = SpanStore.from_records(records)
        assert store.lineage("w:r0").fate == "merged"
        loser = store.lineage("w:r1")
        assert loser.fate == "cancelled"
        assert [x.outcome for x in loser.attempts] == ["cancelled"]
        assert store.lineage_problems() == []
        # quorum wait bridges validation to the decision.
        wait = next(s for s in store.spans if s.name == "quorum.wait")
        assert (wait.start, wait.end) == (40.0, 41.0)

    def test_transfer_fault_and_backoff(self):
        wu = "job:e000:s000"
        records = [
            rec(0.0, "sched.created", wu=wu, epoch=0, shard=0),
            rec(0.0, "sched.assign", wu=wu, client="c0", attempt=0),
            rec(1.0, "web.xfer_fail", direction="down", reason="fault",
                client="c0", wu=wu),
            rec(5.0, "net.retry", client="c0", wu=wu, phase="download",
                attempt=1, reason="fault", backoff_s=10.0),
        ]
        store = SpanStore.from_records(records)
        fault = next(s for s in store.spans if s.name == "net.fault")
        assert (fault.start, fault.end) == (1.0, 5.0)
        backoff = next(s for s in store.spans if s.name == "net.backoff")
        assert (backoff.start, backoff.end) == (5.0, 15.0)

    def test_truncated_attempt_closed_honestly(self):
        records = [
            rec(0.0, "sched.created", wu="w", epoch=0, shard=0),
            rec(0.0, "sched.assign", wu="w", client="c0", attempt=0),
            rec(10.0, "client.train_start", wu="w", client="c0"),
        ]
        store = SpanStore.from_records(records)
        lineage = store.lineage("w")
        assert [x.outcome for x in lineage.attempts] == ["truncated"]
        # Fate stays open — and that IS a reported problem on a full trace.
        assert any("orphan" in p for p in store.lineage_problems())

    def test_bounded_trace_suppresses_integrity_claims(self):
        records = [rec(5.0, "sched.assign", wu="w", client="c0", attempt=0)]
        store = SpanStore.from_records(records, dropped=100)
        assert store.lineage_problems() == []


class TestKvAndMarkers:
    def test_kv_update_span_reconstructed_backwards(self):
        records = [
            rec(10.0, "kv.update", store="params", key="k", latency=3.0, lost=0),
            rec(20.0, "kv.read", store="params", key="k", latency=1.0),
        ]
        store = SpanStore.from_records(records)
        update = next(s for s in store.spans if s.name == "kv.update")
        assert (update.start, update.end) == (7.0, 10.0)
        read = next(s for s in store.spans if s.name == "kv.read")
        assert (read.start, read.end) == (20.0, 21.0)
        assert update.track == "kv:params"

    def test_unknown_kind_collected_not_fatal(self):
        store = SpanStore.from_records([rec(0.0, "totally.new_kind", x=1)])
        assert store.unhandled_kinds == {"totally.new_kind"}


class TestRealRuns:
    @pytest.fixture(scope="class")
    def clean_runner(self):
        runner = DistributedRunner(tiny_config())
        runner.run()
        return runner

    @pytest.fixture(scope="class")
    def chaos_runner(self):
        config = tiny_config(
            max_epochs=3, faults=FaultConfig(chaos=seeded_plan(2021, 800.0))
        )
        runner = DistributedRunner(config)
        runner.run()
        return runner

    def test_orphan_free_lineages(self, clean_runner, chaos_runner):
        for runner in (clean_runner, chaos_runner):
            store = SpanStore.from_trace(runner.trace)
            assert store.unhandled_kinds == set()
            assert store.lineage_problems() == []
            counts = store.lineage_counts()
            assert counts["total"] == counts["complete"] + counts["terminated"]

    def test_critical_path_sums_to_wall_clock(self, clean_runner, chaos_runner):
        for runner in (clean_runner, chaos_runner):
            store = SpanStore.from_trace(runner.trace)
            path = store.critical_path()
            wall = runner.trace.of_kind("epoch.end")[-1].time
            assert path.total_s == pytest.approx(wall, abs=1e-6)
            assert path.end_s == pytest.approx(wall, abs=1e-9)
            for before, after in zip(path.hops, path.hops[1:]):
                assert after.start == pytest.approx(before.end, abs=1e-9)

    def test_replicated_run_cancels_losing_replicas(self):
        runner = DistributedRunner(tiny_config(replicas=2, num_clients=4))
        runner.run()
        store = SpanStore.from_trace(runner.trace)
        assert store.lineage_problems() == []
        counts = store.lineage_counts()
        assert counts["fates"].get("cancelled", 0) > 0
        assert counts["complete"] > 0

    def test_straggler_attribution_covers_every_client(self, clean_runner):
        store = SpanStore.from_trace(clean_runner.trace)
        stragglers = store.client_percentiles()
        assert set(stragglers) == {"client-000", "client-001"}
        for hops in stragglers.values():
            assert "client.train" in hops
            for hop_name in hops:
                assert hop_name in CLIENT_HOPS

    def test_staleness_matches_runner_samples(self, clean_runner):
        # The span join (publish version - base version) must agree with
        # the runner's own staleness accounting, merge for merge.
        store = SpanStore.from_trace(clean_runner.trace)
        lags = [m["staleness"] for m in store.merges()]
        assert lags == list(clean_runner.staleness_samples)

    def test_span_summary_payload_shape(self, chaos_runner):
        summary = span_summary(chaos_runner.trace)
        assert summary["lineage_problems"] == []
        assert summary["lineages"]["total"] > 0
        assert summary["critical_path"]["total_s"] > 0
        assert summary["critical_path"]["hop_count"] == len(
            SpanStore.from_trace(chaos_runner.trace).critical_path().hops
        )
        assert summary["staleness"]["merges"] > 0
        assert summary["dropped_records"] == 0

    def test_describe_lineage_renders(self, clean_runner):
        store = SpanStore.from_trace(clean_runner.trace)
        wu = next(iter(store.lineages))
        lines = store.describe_lineage(wu)
        assert wu in lines[0]
        assert any("client.train" in line for line in lines)
