"""Invariant auditor: synthetic trace streams, corruption, and live runs."""

from __future__ import annotations

import pytest

from repro.core.runner import DistributedRunner
from repro.errors import InvariantViolation
from repro.obs import InvariantAuditor, ObservabilityConfig
from repro.simulation.tracing import Trace

from ..core.test_runner import tiny_config


def clean_trace() -> Trace:
    """A minimal well-formed lifecycle: two workunits through one epoch."""
    t = Trace()
    t.emit(0.0, "epoch.start", epoch=1)
    for i, wu in enumerate(("wu-a", "wu-b")):
        t.emit(0.0, "sched.created", wu=wu, epoch=1, shard=i)
        t.emit(1.0, "sched.assign", wu=wu, host="h1")
        t.emit(2.0, "server.result_valid", wu=wu, host="h1")
        t.emit(2.0, "credit.grant", wu=wu, host="h1", amount=1.5)
        t.emit(2.0, "server.assimilated", wu=wu)
        t.emit(3.0, "ps.assimilated", wu=wu, service=1.0)
    t.emit(3.0, "params.publish", version=1)
    t.emit(4.0, "params.publish", version=2)
    t.emit(4.0, "epoch.end", epoch=1, accuracy=0.5)
    return t


def replayed(trace: Trace) -> InvariantAuditor:
    auditor = InvariantAuditor()
    auditor.replay(trace)
    return auditor


class TestCleanStream:
    def test_clean_trace_verifies(self):
        auditor = replayed(clean_trace())
        report = auditor.verify()
        assert report.ok
        assert report.violations == []
        assert report.records_seen == len(clean_trace())
        assert report.checks > 0
        assert report.to_dict()["ok"] is True

    def test_exhausted_workunit_is_a_valid_terminal_fate(self):
        t = clean_trace()
        t.emit(5.0, "epoch.start", epoch=2)
        t.emit(5.0, "sched.created", wu="wu-c", epoch=2, shard=0)
        t.emit(6.0, "sched.exhausted", wu="wu-c", via="timeout")
        t.emit(7.0, "epoch.end", epoch=2)
        assert replayed(t).verify().ok

    def test_counter_bumps_are_observed(self):
        t = Trace()
        auditor = InvariantAuditor()
        t.attach(auditor)
        t.incr("cpu.busy", 3)
        assert auditor.kind_counts["cpu.busy"] == 3


class TestCorruptedStreams:
    def assert_violation(self, trace: Trace, match: str):
        auditor = replayed(trace)
        with pytest.raises(InvariantViolation, match=match):
            auditor.verify()
        assert not auditor.violations == []

    def test_double_creation(self):
        t = clean_trace()
        t.emit(9.0, "sched.created", wu="wu-a", epoch=1, shard=0)
        self.assert_violation(t, "created twice")

    def test_assignment_after_terminal(self):
        t = clean_trace()
        t.emit(9.0, "sched.assign", wu="wu-a", host="h2")
        self.assert_violation(t, "terminal state")

    def test_double_validation(self):
        t = clean_trace()
        t.emit(9.0, "server.result_valid", wu="wu-a", host="h2")
        self.assert_violation(t, "validated twice")

    def test_double_assimilation(self):
        t = clean_trace()
        t.emit(9.0, "server.assimilated", wu="wu-a")
        self.assert_violation(t, "assimilated twice")

    def test_unvalidated_assimilation(self):
        t = clean_trace()
        t.emit(9.0, "sched.created", wu="wu-x", epoch=1, shard=2)
        t.emit(9.5, "server.assimilated", wu="wu-x")
        self.assert_violation(t, "unvalidated")

    def test_credit_without_validation(self):
        t = clean_trace()
        t.emit(9.0, "sched.created", wu="wu-x", epoch=1, shard=2)
        t.emit(9.5, "credit.grant", wu="wu-x", host="h1", amount=1.0)
        self.assert_violation(t, "unvalidated")

    def test_validated_but_never_assimilated(self):
        t = clean_trace()
        t.emit(9.0, "sched.created", wu="wu-x", epoch=1, shard=2)
        t.emit(9.5, "server.result_valid", wu="wu-x", host="h1")
        t.emit(9.5, "credit.grant", wu="wu-x", host="h1", amount=1.0)
        self.assert_violation(t, "unassimilated")

    def test_version_regression(self):
        t = clean_trace()
        t.emit(9.0, "params.publish", version=1)
        self.assert_violation(t, "not monotone")

    def test_unclosed_epoch(self):
        t = clean_trace()
        t.emit(9.0, "epoch.start", epoch=2)
        self.assert_violation(t, "never ended")

    def test_overlapping_epochs(self):
        t = Trace()
        t.emit(0.0, "epoch.start", epoch=1)
        t.emit(1.0, "epoch.start", epoch=2)
        t.emit(2.0, "epoch.end", epoch=2)
        t.emit(2.0, "epoch.end", epoch=1)
        auditor = replayed(t)
        with pytest.raises(InvariantViolation):
            auditor.verify()

    def test_strict_mode_raises_at_the_record(self):
        t = Trace()
        auditor = InvariantAuditor(strict=True)
        t.attach(auditor)
        t.emit(0.0, "sched.created", wu="wu-a", epoch=1, shard=0)
        with pytest.raises(InvariantViolation, match="created twice"):
            t.emit(1.0, "sched.created", wu="wu-a", epoch=1, shard=0)


class TestLiveRun:
    def test_default_run_carries_a_clean_report(self):
        runner = DistributedRunner(tiny_config())
        runner.run()
        report = runner.obs.report
        assert report is not None and report.ok
        assert report.records_seen == len(runner.trace)
        assert report.checks > 100  # the auditor actually looked at things

    def test_replay_matches_live_observation(self):
        runner = DistributedRunner(tiny_config())
        runner.run()
        fresh = InvariantAuditor()
        fresh.replay(runner.trace)
        report = fresh.verify(runner, require_full_coverage=True)
        assert report.ok
        assert report.records_seen == runner.obs.report.records_seen

    def test_strict_live_auditor_stays_silent_on_a_healthy_run(self):
        runner = DistributedRunner(
            tiny_config(), observability=ObservabilityConfig(strict_audit=True)
        )
        runner.run()
        assert runner.obs.report.ok
