"""Perfetto trace-event export: structure, flows, and the validator."""

from __future__ import annotations

import json

import pytest

from repro.core.runner import DistributedRunner
from repro.obs.spans import SpanStore
from repro.obs.trace_export import (
    build_perfetto_trace,
    validate_perfetto,
    write_perfetto_trace,
)

from ..core.test_runner import tiny_config


@pytest.fixture(scope="module")
def store():
    runner = DistributedRunner(tiny_config())
    runner.run()
    return SpanStore.from_trace(runner.trace)


@pytest.fixture(scope="module")
def doc(store):
    return build_perfetto_trace(store)


class TestDocumentStructure:
    def test_valid_per_own_validator(self, doc):
        assert validate_perfetto(doc) == []

    def test_one_named_process_per_track(self, store, doc):
        metadata = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert {m["args"]["name"] for m in metadata} == set(store.tracks())
        # pids are unique per track
        assert len({m["pid"] for m in metadata}) == len(metadata)

    def test_every_span_is_a_complete_event(self, store, doc):
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(store.spans)
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_microsecond_scaling(self, store, doc):
        train = next(s for s in store.spans if s.name == "client.train")
        event = next(
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "client.train"
            and e["args"].get("wu") == train.wu
        )
        assert event["ts"] == pytest.approx(train.start * 1000.0)
        assert event["dur"] == pytest.approx(train.duration * 1000.0)

    def test_flow_chains_link_lineages_across_tracks(self, store, doc):
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "t", "f")]
        assert flows, "expected flow events for lineage hand-offs"
        by_id: dict = {}
        for event in flows:
            by_id.setdefault(event["id"], []).append(event)
        for chain in by_id.values():
            assert chain[0]["ph"] == "s"
            assert chain[-1]["ph"] == "f"
            # A flow only exists if it actually crosses tracks.
            assert len({e["pid"] for e in chain}) > 1

    def test_json_serializable(self, doc, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(doc))
        assert json.loads(path.read_text())["traceEvents"]


class TestWriteAndValidate:
    def test_write_emits_valid_json(self, store, tmp_path):
        path = tmp_path / "perfetto.json"
        count = write_perfetto_trace(store, path)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count
        assert validate_perfetto(loaded) == []

    def test_validator_catches_missing_fields(self):
        assert validate_perfetto({"traceEvents": [{"ph": "X", "name": "a"}]})
        assert validate_perfetto({"traceEvents": [{"ph": "??"}]})
        assert validate_perfetto([]) == [
            "document must be an object with a traceEvents array"
        ]

    def test_validator_catches_negative_duration(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "ts": 0, "dur": -5},
        ]}
        assert any("negative dur" in p for p in validate_perfetto(doc))

    def test_validator_catches_broken_flow(self):
        doc = {"traceEvents": [
            {"ph": "t", "id": 1, "pid": 1, "ts": 0},
            {"ph": "f", "id": 1, "pid": 2, "ts": 1},
        ]}
        assert any("does not start with 's'" in p for p in validate_perfetto(doc))
