"""repro — reproduction of "Distributed Deep Learning Using Volunteer
Computing-Like Paradigm" (Atre, Jha, Rao; IPDPS workshops 2021).

Subpackages
-----------
``repro.nn``
    NumPy deep-learning substrate (autograd, layers, models, optimizers) —
    stands in for the paper's TensorFlow stack.
``repro.data``
    Synthetic CIFAR-style dataset, shard splitting, batch loading.
``repro.simulation``
    Discrete-event simulator: clock, processor-sharing compute, network
    links, preemption models, deterministic RNG streams, tracing.
``repro.kvstore``
    Eventual- (Redis-like) and strong-consistency (MySQL-like) parameter
    stores with paper-calibrated latencies.
``repro.boinc``
    BOINC-like middleware: workunits, scheduler with timeout/reissue and
    sticky-file affinity, web server, validator, client daemon.
``repro.core``
    The paper's contribution: VC-ASGD, the parameter-server pool, the
    distributed training runner, and the ASGD baselines.
``repro.cloud``
    Preemptible-instance pricing, interruption bands, fleet cost model.
``repro.analysis``
    Curve metrics (crossovers, smoothness, time-to-accuracy) and tables.

Quickstart
----------
>>> from repro.core import TrainingJobConfig, run_experiment
>>> result = run_experiment(TrainingJobConfig(max_epochs=3, num_shards=10))
>>> result.final_val_accuracy  # doctest: +SKIP
0.41
"""

from . import analysis, boinc, cloud, core, data, kvstore, nn, simulation
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "nn",
    "data",
    "simulation",
    "kvstore",
    "boinc",
    "core",
    "cloud",
    "analysis",
    "ReproError",
    "__version__",
]
