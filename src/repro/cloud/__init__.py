"""Cloud cost/preemption models: pricing, interruption bands, fleets."""

from .capacity import (
    CapacityEstimate,
    WorkloadSpec,
    cifar10_workload,
    imagenet_workload,
    plan_capacity,
)
from .fleet import Fleet, FleetMember, paper_p5c5t2_fleet
from .interruption import (
    INTERRUPTION_BANDS,
    DelayAnalysis,
    InterruptionBand,
    band_for,
    paper_p5c5t2_analysis,
)
from .pricing import (
    PAPER_FLEET_PREEMPTIBLE_PER_H,
    PAPER_FLEET_STANDARD_PER_H,
    PriceBook,
    PricingClass,
    default_price_book,
)

__all__ = [
    "WorkloadSpec",
    "CapacityEstimate",
    "cifar10_workload",
    "imagenet_workload",
    "plan_capacity",
    "Fleet",
    "FleetMember",
    "paper_p5c5t2_fleet",
    "InterruptionBand",
    "INTERRUPTION_BANDS",
    "band_for",
    "DelayAnalysis",
    "paper_p5c5t2_analysis",
    "PriceBook",
    "PricingClass",
    "default_price_book",
    "PAPER_FLEET_STANDARD_PER_H",
    "PAPER_FLEET_PREEMPTIBLE_PER_H",
]
