"""Cloud price book: standard vs preemptible instances (§III-E, §IV-E).

The paper's anchor: the P5C5T2 client fleet (5 instances, 40 vCPU, 160 GB
RAM total) costs **$1.67/h** on standard instances and **$0.50/h** on
preemptible ones — a 70% saving; preemptible discounts in general run
70–90%.  We price an instance linearly in vCPUs and RAM with coefficients
calibrated to that anchor, and apply a per-pool discount for preemptible
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError
from ..simulation.resources import InstanceSpec

__all__ = [
    "PricingClass",
    "PriceBook",
    "default_price_book",
    "PAPER_FLEET_STANDARD_PER_H",
    "PAPER_FLEET_PREEMPTIBLE_PER_H",
]

# §IV-E anchors.
PAPER_FLEET_STANDARD_PER_H = 1.67
PAPER_FLEET_PREEMPTIBLE_PER_H = 0.50


class PricingClass(Enum):
    """How an instance is billed."""

    STANDARD = "standard"
    PREEMPTIBLE = "preemptible"


@dataclass(frozen=True)
class PriceBook:
    """Linear price model: ``$/h = vcpus * per_vcpu + ram_gb * per_gb``.

    ``preemptible_discount`` is the *fraction saved* (0.70 → preemptible
    costs 30% of standard).  The paper quotes 70–90% depending on pool.
    """

    per_vcpu_hour: float
    per_gb_hour: float
    preemptible_discount: float = 0.70

    def __post_init__(self) -> None:
        if self.per_vcpu_hour < 0 or self.per_gb_hour < 0:
            raise ConfigurationError("negative price coefficients")
        if not 0.0 <= self.preemptible_discount < 1.0:
            raise ConfigurationError(
                f"discount must be in [0, 1), got {self.preemptible_discount}"
            )

    def standard_hourly(self, spec: InstanceSpec) -> float:
        """$/hour for a standard (on-demand) instance of this spec."""
        return spec.vcpus * self.per_vcpu_hour + spec.ram_gb * self.per_gb_hour

    def preemptible_hourly(self, spec: InstanceSpec) -> float:
        """$/hour for the same capacity from the preemptible pool."""
        return self.standard_hourly(spec) * (1.0 - self.preemptible_discount)

    def hourly(self, spec: InstanceSpec, pricing: PricingClass) -> float:
        """$/hour for ``spec`` under the given pricing class."""
        if pricing is PricingClass.STANDARD:
            return self.standard_hourly(spec)
        return self.preemptible_hourly(spec)

    def cost(self, spec: InstanceSpec, pricing: PricingClass, hours: float) -> float:
        """Total $ for running ``spec`` for ``hours`` (fractional allowed)."""
        if hours < 0:
            raise ConfigurationError(f"negative duration {hours}")
        return self.hourly(spec, pricing) * hours


def default_price_book() -> PriceBook:
    """Coefficients calibrated to the paper's P5C5T2 fleet anchor.

    The fleet totals 40 vCPU + 160 GB; AWS-typical cost attribution puts
    roughly 80% of an instance's price on compute.  Solving
    ``40 a + 160 b = 1.67`` with the 80/20 split gives the coefficients
    below; the preemptible discount of 70% then lands the fleet at
    $0.501/h — the paper's $0.50.
    """
    a = PAPER_FLEET_STANDARD_PER_H * 0.80 / 40.0  # $/vCPU-hour
    b = PAPER_FLEET_STANDARD_PER_H * 0.20 / 160.0  # $/GB-hour
    return PriceBook(per_vcpu_hour=a, per_gb_hour=b, preemptible_discount=0.70)
