"""Fleet composition and cost accounting (§IV-E).

A :class:`Fleet` is the set of client instances a training job runs on,
each with a pricing class.  It answers the paper's cost questions —
hourly rate, total job cost, preemptible savings — and supports the
horizontal-vs-vertical scaling comparison (10 small vs 5 large instances).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..simulation.resources import TABLE1_CLIENTS, InstanceSpec
from .pricing import PriceBook, PricingClass, default_price_book

__all__ = ["FleetMember", "Fleet", "paper_p5c5t2_fleet"]


@dataclass(frozen=True)
class FleetMember:
    """One instance in the fleet."""

    spec: InstanceSpec
    pricing: PricingClass = PricingClass.PREEMPTIBLE
    interruption_p: float = 0.05  # hourly; <5% band, the paper's pools

    def __post_init__(self) -> None:
        if not 0.0 <= self.interruption_p < 1.0:
            raise ConfigurationError(f"invalid interruption_p {self.interruption_p}")


@dataclass
class Fleet:
    """A collection of client instances with a shared price book."""

    members: list[FleetMember]
    price_book: PriceBook = field(default_factory=default_price_book)

    def __post_init__(self) -> None:
        if not self.members:
            raise ConfigurationError("fleet must contain at least one member")

    def __len__(self) -> int:
        return len(self.members)

    @property
    def total_vcpus(self) -> int:
        return sum(m.spec.vcpus for m in self.members)

    @property
    def total_ram_gb(self) -> float:
        return sum(m.spec.ram_gb for m in self.members)

    def hourly_cost(self) -> float:
        """$/hour at each member's own pricing class."""
        return sum(self.price_book.hourly(m.spec, m.pricing) for m in self.members)

    def hourly_cost_if(self, pricing: PricingClass) -> float:
        """$/hour if every member were billed at ``pricing``."""
        return sum(self.price_book.hourly(m.spec, pricing) for m in self.members)

    def job_cost(self, hours: float) -> float:
        """Total $ for a job of the given duration."""
        if hours < 0:
            raise ConfigurationError(f"negative duration {hours}")
        return self.hourly_cost() * hours

    def savings_fraction(self) -> float:
        """Fraction saved vs an all-standard fleet (the paper's 70%)."""
        standard = self.hourly_cost_if(PricingClass.STANDARD)
        return 1.0 - self.hourly_cost() / standard

    def as_pricing(self, pricing: PricingClass) -> "Fleet":
        """Copy of this fleet with every member rebilled at ``pricing``."""
        return Fleet(
            [FleetMember(m.spec, pricing, m.interruption_p) for m in self.members],
            price_book=self.price_book,
        )

    def scaled_horizontal(self, factor: int) -> "Fleet":
        """``factor``× more instances of the same specs (horizontal scaling)."""
        if factor <= 0:
            raise ConfigurationError("factor must be positive")
        return Fleet(self.members * factor, price_book=self.price_book)


def paper_p5c5t2_fleet(pricing: PricingClass = PricingClass.PREEMPTIBLE) -> Fleet:
    """The §IV-E cost-analysis fleet: 5 × (8 vCPU, 32 GB) clients.

    The paper quotes 40 vCPU / 160 GB total, i.e. five of the 8-vCPU/32 GB
    client rows of Table I.
    """
    spec = TABLE1_CLIENTS[0]  # 8 vCPU / 2.2 GHz / 32 GB
    members = [FleetMember(spec, pricing) for _ in range(5)]
    return Fleet(members)
