"""Analytic capacity planning for VC training jobs.

The paper reasons about scaling in closed form: ImageNet is "800 times the
total training data size of CIFAR10", pushing the update count to ~1.6 M
and the strong-consistency overhead to ~187 h (§IV-D); the PS count has to
grow with Cn × Tn (§IV-B); fleet cost scales with instance hours (§IV-E).
This module packages those calculations as a planner so a user can answer
"what happens if I run *this* workload on *that* fleet" without running
the simulator.

All estimates are steady-state queueing arithmetic, deliberately simple
and cross-checked against the event simulation in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..kvstore.latency import StoreLatency, mysql_like_latency, redis_like_latency
from ..simulation.resources import InstanceSpec, TABLE1_CLIENTS, TABLE1_SERVER
from .pricing import PriceBook, PricingClass, default_price_book

__all__ = [
    "WorkloadSpec",
    "cifar10_workload",
    "imagenet_workload",
    "CapacityEstimate",
    "plan_capacity",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of a training job for planning purposes."""

    name: str
    num_shards: int
    epochs: int
    work_units_per_subtask: float  # calibrated: 144 ≈ 2.4 min on a ref core
    param_bytes: int  # wire size of one parameter file
    shard_bytes: int  # wire size of one data shard

    def __post_init__(self) -> None:
        if self.num_shards <= 0 or self.epochs <= 0:
            raise ConfigurationError("shards and epochs must be positive")
        if self.work_units_per_subtask <= 0:
            raise ConfigurationError("work per subtask must be positive")
        if self.param_bytes <= 0 or self.shard_bytes <= 0:
            raise ConfigurationError("byte sizes must be positive")

    @property
    def total_subtasks(self) -> int:
        """n_s: total updates over the whole job (the paper's ~2 000 / ~1.6 M)."""
        return self.num_shards * self.epochs


def cifar10_workload() -> WorkloadSpec:
    """The paper's benchmark job: 50 shards × 40 epochs, 21.2 MB params,
    3.9 MB shards."""
    return WorkloadSpec(
        name="cifar10",
        num_shards=50,
        epochs=40,
        work_units_per_subtask=144.0,
        param_bytes=int(21.2 * 1024 * 1024),
        shard_bytes=int(3.9 * 1024 * 1024),
    )


def imagenet_workload() -> WorkloadSpec:
    """The §IV-D extrapolation: 800× CIFAR10's data → 40 000 shards/epoch,
    ~1.6 M updates over 40 epochs."""
    base = cifar10_workload()
    return WorkloadSpec(
        name="imagenet",
        num_shards=base.num_shards * 800,
        epochs=base.epochs,
        work_units_per_subtask=base.work_units_per_subtask,
        param_bytes=base.param_bytes,
        shard_bytes=base.shard_bytes,
    )


@dataclass(frozen=True)
class CapacityEstimate:
    """Planner output for one (workload, fleet, Pn, Tn) combination."""

    workload: str
    num_clients: int
    concurrency: int
    num_param_servers: int
    subtask_seconds: float  # t_e on the mean client core
    epoch_waves: float
    client_epoch_seconds: float
    assimilation_service_seconds: float
    ps_utilization: float  # arrival rate / pool capacity (rho)
    bottleneck: str  # "clients" | "parameter-servers"
    min_param_servers: int  # smallest Pn with rho < 1
    job_hours: float
    store_overhead_hours: float  # extra vs the Redis-calibrated baseline
    fleet_cost: float

    def summary_row(self) -> list[object]:
        """Row for tabular rendering of several estimates."""
        return [
            self.workload,
            f"C{self.num_clients}T{self.concurrency}P{self.num_param_servers}",
            round(self.subtask_seconds / 60, 2),
            round(self.ps_utilization, 2),
            self.bottleneck,
            self.min_param_servers,
            round(self.job_hours, 1),
            round(self.fleet_cost, 2),
        ]


def plan_capacity(
    workload: WorkloadSpec,
    client_specs: tuple[InstanceSpec, ...] = TABLE1_CLIENTS,
    num_clients: int = 5,
    concurrency: int = 2,
    num_param_servers: int = 1,
    server_spec: InstanceSpec = TABLE1_SERVER,
    validation_work_units: float = 8.0,
    store: StoreLatency | None = None,
    price_book: PriceBook | None = None,
    pricing: PricingClass = PricingClass.PREEMPTIBLE,
) -> CapacityEstimate:
    """Steady-state estimate of epoch time, bottleneck and cost.

    Model: clients run ``concurrency`` subtasks each at one core's speed;
    an epoch is ``ceil(shards / (clients × concurrency))`` waves; the PS
    pool is an M/D/c-ish server whose per-result service is the store
    update latency plus the validation pass.  When the pool's utilization
    ρ ≥ 1, epoch time is drain-limited and the bottleneck flips to the
    servers (the Fig. 3 regime).
    """
    if num_clients <= 0 or concurrency <= 0 or num_param_servers <= 0:
        raise ConfigurationError("fleet parameters must be positive")
    store = store if store is not None else redis_like_latency()
    price_book = price_book if price_book is not None else default_price_book()

    fleet = [client_specs[i % len(client_specs)] for i in range(num_clients)]
    mean_core_rate = sum(spec.per_core_rate for spec in fleet) / num_clients
    subtask_seconds = workload.work_units_per_subtask / mean_core_rate

    slots = num_clients * concurrency
    waves = math.ceil(workload.num_shards / slots)
    client_epoch_seconds = waves * subtask_seconds

    service = (
        store.update(workload.param_bytes)
        + validation_work_units / server_spec.per_core_rate
    )
    arrival_rate = slots / subtask_seconds  # results/second while running
    capacity = num_param_servers / service
    rho = arrival_rate / capacity

    # Minimum Pn for stability (ρ < 1), the §IV-B sizing question.
    min_ps = max(1, math.ceil(arrival_rate * service * (1 + 1e-9)))

    if rho < 1.0:
        # Clients dominate; the PS pool adds only the tail drain.
        epoch_seconds = client_epoch_seconds + (slots / num_param_servers) * service
        bottleneck = "clients"
    else:
        # Drain-limited: after the first wave of results lands, the pool is
        # the pipeline; every result passes through it serially.
        epoch_seconds = (
            subtask_seconds + workload.num_shards * service / num_param_servers
        )
        bottleneck = "parameter-servers"

    job_hours = workload.epochs * epoch_seconds / 3600.0

    baseline_service = (
        redis_like_latency().update(workload.param_bytes)
        + validation_work_units / server_spec.per_core_rate
    )
    overhead_hours = (
        workload.total_subtasks * max(0.0, service - baseline_service) / 3600.0
    )

    hourly = sum(price_book.hourly(spec, pricing) for spec in fleet)
    return CapacityEstimate(
        workload=workload.name,
        num_clients=num_clients,
        concurrency=concurrency,
        num_param_servers=num_param_servers,
        subtask_seconds=subtask_seconds,
        epoch_waves=waves,
        client_epoch_seconds=client_epoch_seconds,
        assimilation_service_seconds=service,
        ps_utilization=rho,
        bottleneck=bottleneck,
        min_param_servers=min_ps,
        job_hours=job_hours,
        store_overhead_hours=overhead_hours,
        fleet_cost=hourly * job_hours,
    )
