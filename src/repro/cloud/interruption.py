"""Interruption-frequency bands and the §IV-E training-delay analysis.

AWS's Spot Instance Advisor reports a *frequency of interruption* per
instance pool in coarse bands (<5%, 5–10%, ..., >20%).  The paper's clients
all sit in the <5% band and saw zero terminations over an 8-hour run; the
delay analysis then evaluates the binomial model at p = 0.05 and p = 0.20.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..simulation.preemption import BernoulliSubtaskModel, ExponentialLifetime

__all__ = ["InterruptionBand", "INTERRUPTION_BANDS", "DelayAnalysis", "paper_p5c5t2_analysis"]


@dataclass(frozen=True)
class InterruptionBand:
    """One advisor band: label plus the probability range it denotes."""

    label: str
    p_low: float
    p_high: float

    @property
    def p_mid(self) -> float:
        return 0.5 * (self.p_low + self.p_high)

    def contains(self, p: float) -> bool:
        """Whether probability ``p`` falls in this band."""
        return self.p_low <= p < self.p_high


INTERRUPTION_BANDS = (
    InterruptionBand("<5%", 0.00, 0.05),
    InterruptionBand("5-10%", 0.05, 0.10),
    InterruptionBand("10-15%", 0.10, 0.15),
    InterruptionBand("15-20%", 0.15, 0.20),
    InterruptionBand(">20%", 0.20, 1.00),
)


def band_for(p: float) -> InterruptionBand:
    """Advisor band containing probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"probability must be in [0, 1], got {p}")
    for band in INTERRUPTION_BANDS:
        if band.contains(p):
            return band
    return INTERRUPTION_BANDS[-1]


@dataclass(frozen=True)
class DelayAnalysis:
    """Expected training-time impact of preemptions for one job shape.

    Thin façade over :class:`BernoulliSubtaskModel` that adds the advisor
    band view and the lifetime model used by the event simulation, so one
    object answers both "what does the formula say" and "what should the
    simulator draw".
    """

    model: BernoulliSubtaskModel

    def expected_delay_minutes(self, p: float) -> float:
        """Expected extra training time (minutes) at interruption rate ``p``."""
        return self.model.expected_delay(p) / 60.0

    def expected_total_hours(self, p: float) -> float:
        """Expected total training time (hours) at interruption rate ``p``."""
        return self.model.expected_training_time(p) / 3600.0

    def relative_slowdown(self, p: float) -> float:
        """Expected time with preemptions ÷ time without."""
        return self.model.expected_training_time(p) / self.model.baseline_time()

    def lifetime_model(self, p: float) -> ExponentialLifetime:
        """Per-instance lifetime process with hourly interruption prob ``p``."""
        return ExponentialLifetime(hourly_probability=p)

    def band(self, p: float) -> InterruptionBand:
        """Spot-advisor band containing probability ``p``."""
        return band_for(p)


def paper_p5c5t2_analysis() -> DelayAnalysis:
    """The exact §IV-E configuration: n_c=5, n_tc=2, n_s=2000, t_e=2.4 min,
    t_o=5 min — yielding n=200 waves, 50 min delay at p=0.05 and 200 min at
    p=0.20."""
    return DelayAnalysis(
        BernoulliSubtaskModel(n_s=2000, n_c=5, n_tc=2, t_e=2.4 * 60, t_o=5 * 60)
    )
