"""Mini-batch iteration over a :class:`~repro.data.dataset.Dataset`."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from .dataset import Dataset

__all__ = ["BatchLoader"]


class BatchLoader:
    """Iterate (x, y) mini-batches, optionally reshuffling each pass.

    Unlike framework data loaders there is no worker pool: datasets here are
    in-memory arrays and slicing is already vectorized.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.rng = rng
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        if self.rng is not None:
            order = self.rng.permutation(n)
        else:
            order = np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.x[idx], self.dataset.y[idx]
