"""Dataset container with ``.npz``-style serialization.

A :class:`Dataset` is an immutable (features, labels) pair.  Shards of the
training set travel to clients as compressed ``.npz`` blobs, exactly like
the paper's 3.9 MB per-shard files; :meth:`Dataset.to_bytes` produces the
blob whose size the network-transfer model charges for.
"""

from __future__ import annotations

import io

import numpy as np

from ..errors import SerializationError, ShapeError

__all__ = ["Dataset"]


class Dataset:
    """Immutable labelled dataset.

    Parameters
    ----------
    x:
        Feature array; first axis indexes samples.
    y:
        Integer label array of shape ``(len(x),)``.
    name:
        Optional human-readable tag (e.g. ``"train"``, ``"shard-07"``).
    """

    __slots__ = ("x", "y", "name")

    def __init__(self, x: np.ndarray, y: np.ndarray, name: str = "") -> None:
        x = np.asarray(x)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ShapeError(f"x has {len(x)} samples but y has {len(y)}")
        if y.ndim != 1:
            raise ShapeError(f"labels must be 1-D, got shape {y.shape}")
        self.x = x
        self.y = y
        self.name = name
        x.setflags(write=False)
        y.setflags(write=False)

    def __len__(self) -> int:
        return len(self.x)

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return f"Dataset({len(self)} samples, x.shape={self.x.shape}{tag})"

    @property
    def num_classes(self) -> int:
        """Number of distinct label values assuming labels are 0..K-1."""
        return int(self.y.max()) + 1 if len(self.y) else 0

    def subset(self, indices: np.ndarray, name: str = "") -> "Dataset":
        """Return the sub-dataset selected by ``indices`` (copies)."""
        indices = np.asarray(indices)
        return Dataset(self.x[indices].copy(), self.y[indices].copy(), name=name)

    def shuffled(self, rng: np.random.Generator, name: str = "") -> "Dataset":
        """Return a copy with rows permuted."""
        perm = rng.permutation(len(self))
        return self.subset(perm, name=name or self.name)

    def class_counts(self) -> np.ndarray:
        """Histogram of labels (length = num_classes)."""
        return np.bincount(self.y, minlength=self.num_classes)

    # -- serialization --------------------------------------------------
    def to_bytes(self, compress: bool = True) -> bytes:
        """Serialize to a (compressed) ``.npz`` blob — the shard file."""
        buf = io.BytesIO()
        save = np.savez_compressed if compress else np.savez
        save(buf, x=self.x, y=self.y, name=np.asarray(self.name))
        return buf.getvalue()

    @staticmethod
    def from_bytes(blob: bytes) -> "Dataset":
        """Inverse of :meth:`to_bytes`."""
        try:
            with np.load(io.BytesIO(blob)) as archive:
                return Dataset(
                    archive["x"].copy(),
                    archive["y"].copy(),
                    name=str(archive["name"]),
                )
        except ShapeError:
            raise
        except Exception as exc:
            raise SerializationError(f"cannot decode dataset blob: {exc}") from exc

    def nbytes(self, compress: bool = True) -> int:
        """Serialized size in bytes (what the web server actually transfers)."""
        return len(self.to_bytes(compress=compress))
