"""Image augmentations for NCHW batches.

The paper deliberately trains *without* regularization to keep the strategy
comparison clean (§IV-A); augmentation is provided for the ablations that
ask how much that choice matters, and for downstream users of the
substrate.  All transforms are vectorized over the batch and driven by an
explicit RNG (reproducible pipelines).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError, ShapeError

__all__ = [
    "random_horizontal_flip",
    "random_crop",
    "gaussian_noise",
    "cutout",
    "compose",
]

Augmentation = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def _check_nchw(x: np.ndarray) -> None:
    if x.ndim != 4:
        raise ShapeError(f"augmentations expect NCHW batches, got ndim={x.ndim}")


def random_horizontal_flip(p: float = 0.5) -> Augmentation:
    """Flip each image left-right with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _check_nchw(x)
        out = x.copy()
        mask = rng.random(len(x)) < p
        out[mask] = out[mask, :, :, ::-1]
        return out

    return apply


def random_crop(padding: int = 1) -> Augmentation:
    """Zero-pad by ``padding`` then crop back at a random offset per image
    (the standard CIFAR augmentation)."""
    if padding < 1:
        raise ConfigurationError("padding must be >= 1")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _check_nchw(x)
        n, c, h, w = x.shape
        padded = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
        out = np.empty_like(x)
        offsets_y = rng.integers(0, 2 * padding + 1, size=n)
        offsets_x = rng.integers(0, 2 * padding + 1, size=n)
        for i in range(n):  # offsets differ per image; loop is over N only
            oy, ox = offsets_y[i], offsets_x[i]
            out[i] = padded[i, :, oy : oy + h, ox : ox + w]
        return out

    return apply


def gaussian_noise(std: float = 0.1) -> Augmentation:
    """Additive white noise."""
    if std < 0:
        raise ConfigurationError("std must be non-negative")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _check_nchw(x)
        if std == 0.0:
            return x.copy()
        return x + rng.normal(scale=std, size=x.shape)

    return apply


def cutout(size: int = 2) -> Augmentation:
    """Zero a random ``size``×``size`` square per image (DeVries & Taylor)."""
    if size < 1:
        raise ConfigurationError("size must be >= 1")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _check_nchw(x)
        n, c, h, w = x.shape
        if size > min(h, w):
            raise ConfigurationError(f"cutout size {size} exceeds image {h}x{w}")
        out = x.copy()
        ys = rng.integers(0, h - size + 1, size=n)
        xs = rng.integers(0, w - size + 1, size=n)
        for i in range(n):
            out[i, :, ys[i] : ys[i] + size, xs[i] : xs[i] + size] = 0.0
        return out

    return apply


def compose(transforms: Sequence[Augmentation]) -> Augmentation:
    """Chain augmentations left to right."""
    if not transforms:
        raise ConfigurationError("compose() of an empty list")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in transforms:
            x = transform(x, rng)
        return x

    return apply
