"""Dataset substrate: synthetic CIFAR-style data, shards, batch loading."""

from . import augment
from .dataset import Dataset
from .loader import BatchLoader
from .sharding import shard_name, split_dataset
from .synthetic import (
    SyntheticImageConfig,
    make_classification_splits,
    make_synthetic_images,
)
from .timeseries import (
    TimeSeriesConfig,
    generate_series,
    train_val_split_series,
    windowed_dataset,
)

__all__ = [
    "augment",
    "TimeSeriesConfig",
    "generate_series",
    "windowed_dataset",
    "train_val_split_series",
    "Dataset",
    "BatchLoader",
    "split_dataset",
    "shard_name",
    "SyntheticImageConfig",
    "make_synthetic_images",
    "make_classification_splits",
]
