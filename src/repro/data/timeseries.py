"""Synthetic time-series forecasting data (§V).

The paper's future-work section singles out time-series forecasting as a
workload with the *opposite* profile to image classification: small data,
less amenable to data-parallel sharding, better suited to vertical
scaling.  This module provides the substrate to study that: a seeded
generator of multi-component series (trend + seasonality + AR noise) and
the sliding-window transform that turns a series into a supervised
forecasting dataset compatible with :class:`repro.data.Dataset` consumers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["TimeSeriesConfig", "generate_series", "windowed_dataset", "train_val_split_series"]


@dataclass(frozen=True)
class TimeSeriesConfig:
    """Shape of the synthetic series."""

    length: int = 1200
    trend_slope: float = 0.002
    seasonal_period: int = 48
    seasonal_amplitude: float = 1.0
    ar_coefficient: float = 0.7
    noise_std: float = 0.25

    def __post_init__(self) -> None:
        if self.length < 8:
            raise ConfigurationError("series too short")
        if self.seasonal_period < 2:
            raise ConfigurationError("seasonal_period must be >= 2")
        if not -1.0 < self.ar_coefficient < 1.0:
            raise ConfigurationError("ar_coefficient must be in (-1, 1) for stationarity")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be non-negative")


def generate_series(cfg: TimeSeriesConfig, rng: np.random.Generator) -> np.ndarray:
    """One series: linear trend + sinusoidal seasonality + AR(1) noise."""
    t = np.arange(cfg.length, dtype=np.float64)
    trend = cfg.trend_slope * t
    seasonal = cfg.seasonal_amplitude * np.sin(2 * np.pi * t / cfg.seasonal_period)
    shocks = rng.normal(scale=cfg.noise_std, size=cfg.length)
    noise = np.empty(cfg.length)
    noise[0] = shocks[0]
    for i in range(1, cfg.length):
        noise[i] = cfg.ar_coefficient * noise[i - 1] + shocks[i]
    return trend + seasonal + noise


def windowed_dataset(
    series: np.ndarray, window: int, horizon: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding-window supervised pairs.

    Returns ``(x, y)``: ``x[i]`` is ``series[i : i+window]`` and ``y[i]``
    is the value ``horizon`` steps after the window.  Vectorized with
    stride tricks (no Python loop over windows).
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ConfigurationError("series must be 1-D")
    if window < 1 or horizon < 1:
        raise ConfigurationError("window and horizon must be >= 1")
    n = series.size - window - horizon + 1
    if n <= 0:
        raise ConfigurationError(
            f"series of length {series.size} too short for window={window}, "
            f"horizon={horizon}"
        )
    stride = series.strides[0]
    x = np.lib.stride_tricks.as_strided(
        series, shape=(n, window), strides=(stride, stride), writeable=False
    ).copy()
    y = series[window + horizon - 1 :][:n].copy()
    return x, y


def train_val_split_series(
    x: np.ndarray, y: np.ndarray, val_fraction: float = 0.2
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Chronological split (never shuffle time series!): the validation
    windows come strictly after every training window."""
    if not 0.0 < val_fraction < 1.0:
        raise ConfigurationError("val_fraction must be in (0, 1)")
    cut = int(len(x) * (1.0 - val_fraction))
    if cut == 0 or cut == len(x):
        raise ConfigurationError("split leaves an empty side")
    return x[:cut], y[:cut], x[cut:], y[cut:]
