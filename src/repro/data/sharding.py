"""Dataset sharding — the work generator's data split (§III-A).

The paper's work generator "splits the DL training dataset into subsets";
with CIFAR10 it uses 50 shards of 1 000 images each.  Three strategies are
provided:

* ``contiguous`` — slice the dataset in order (cheapest; what a file-based
  splitter does);
* ``shuffled`` — permute once, then slice (the default: balanced classes in
  expectation);
* ``stratified`` — round-robin per class, guaranteeing near-equal class
  counts in every shard.

Shard identity is stable across epochs: the paper reuses the same 50 data
files every epoch, relying on BOINC sticky files to avoid re-download.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .dataset import Dataset

__all__ = ["split_dataset", "shard_name"]


def shard_name(index: int, total: int) -> str:
    """Stable shard file name, e.g. ``shard-07-of-50``."""
    width = len(str(total - 1))
    return f"shard-{index:0{width}d}-of-{total}"


def split_dataset(
    dataset: Dataset,
    num_shards: int,
    rng: np.random.Generator | None = None,
    strategy: str = "shuffled",
) -> list[Dataset]:
    """Split ``dataset`` into ``num_shards`` near-equal shards.

    Sizes differ by at most one sample.  ``rng`` is required for the
    ``shuffled`` strategy and ignored otherwise.
    """
    if num_shards <= 0:
        raise ConfigurationError(f"num_shards must be positive, got {num_shards}")
    if num_shards > len(dataset):
        raise ConfigurationError(
            f"cannot split {len(dataset)} samples into {num_shards} shards"
        )

    if strategy == "contiguous":
        order = np.arange(len(dataset))
    elif strategy == "shuffled":
        if rng is None:
            raise ConfigurationError("'shuffled' strategy requires an rng")
        order = rng.permutation(len(dataset))
    elif strategy == "stratified":
        order = _stratified_order(dataset)
    else:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; expected contiguous|shuffled|stratified"
        )

    chunks = np.array_split(order, num_shards)
    return [
        dataset.subset(chunk, name=shard_name(i, num_shards))
        for i, chunk in enumerate(chunks)
    ]


def _stratified_order(dataset: Dataset) -> np.ndarray:
    """Interleave samples class-by-class so equal slices stay balanced."""
    y = dataset.y
    classes = np.unique(y)
    per_class = [np.flatnonzero(y == c) for c in classes]
    longest = max(len(idx) for idx in per_class)
    order: list[int] = []
    for i in range(longest):
        for idx in per_class:
            if i < len(idx):
                order.append(int(idx[i]))
    return np.asarray(order)
