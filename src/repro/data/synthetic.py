"""Synthetic image-classification data — the CIFAR10 stand-in.

The paper benchmarks on CIFAR10 (50 000 train / 10 000 test, 32×32×3,
10 classes).  No dataset download is possible in this environment, so we
generate a *structured* synthetic task with the properties the experiments
depend on:

* per-class structure that a neural net must actually learn (class
  prototypes composed of low-frequency spatial patterns),
* within-class variation (random per-sample pattern mixing + pixel noise)
  so that shards drawn from different parts of the dataset induce the
  learn/unlearn dynamics §IV-C analyzes,
* a controllable difficulty knob (noise level) so the accuracy curves have
  headroom and do not saturate in epoch 1.

Everything is driven by an explicit ``numpy.random.Generator``; the same
seed yields bit-identical datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .dataset import Dataset

__all__ = ["SyntheticImageConfig", "make_synthetic_images", "make_classification_splits"]


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Parameters of the synthetic image task.

    Defaults are scaled down from CIFAR10 (32×32×3 → 8×8×3) so a full
    40-epoch distributed run executes in seconds; the *relative* behaviour
    of training strategies is what the reproduction measures.
    """

    num_classes: int = 10
    image_size: int = 8
    channels: int = 3
    prototypes_per_class: int = 3
    noise_std: float = 2.5
    pattern_frequencies: int = 3

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ConfigurationError("need at least 2 classes")
        if self.image_size < 2 or self.channels < 1:
            raise ConfigurationError("invalid image geometry")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be non-negative")

    @property
    def num_features(self) -> int:
        return self.channels * self.image_size * self.image_size


def _class_prototypes(
    cfg: SyntheticImageConfig, rng: np.random.Generator
) -> np.ndarray:
    """Build (classes, prototypes, C, H, W) smooth class templates.

    Each prototype is a random mixture of low-frequency 2-D cosine patterns,
    giving spatial structure a convolution can exploit (unlike white-noise
    prototypes, which only an MLP memorizes).
    """
    size = cfg.image_size
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    bases = []
    for fy in range(cfg.pattern_frequencies):
        for fx in range(cfg.pattern_frequencies):
            phase_y = np.pi * fy * (yy + 0.5) / size
            phase_x = np.pi * fx * (xx + 0.5) / size
            bases.append(np.cos(phase_y) * np.cos(phase_x))
    basis = np.stack(bases)  # (B, H, W)
    n_basis = basis.shape[0]
    coeffs = rng.normal(
        size=(cfg.num_classes, cfg.prototypes_per_class, cfg.channels, n_basis)
    )
    protos = np.einsum("kpcb,bhw->kpchw", coeffs, basis)
    # Normalize each prototype to unit RMS so classes are equally "loud".
    rms = np.sqrt((protos**2).mean(axis=(2, 3, 4), keepdims=True))
    return protos / np.maximum(rms, 1e-12)


def make_synthetic_images(
    num_samples: int,
    cfg: SyntheticImageConfig,
    rng: np.random.Generator,
    flat: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``num_samples`` labelled images.

    Returns ``(x, y)`` with ``x`` of shape (N, C, H, W) — or (N, C*H*W)
    when ``flat`` — and integer labels ``y`` of shape (N,).  Labels are
    balanced up to rounding.
    """
    if num_samples <= 0:
        raise ConfigurationError("num_samples must be positive")
    protos = _class_prototypes(cfg, rng)
    labels = rng.permutation(np.arange(num_samples) % cfg.num_classes)
    proto_idx = rng.integers(cfg.prototypes_per_class, size=num_samples)
    # Per-sample convex mixing of the chosen prototype with a second one of
    # the same class: within-class variation beyond additive noise.
    second_idx = rng.integers(cfg.prototypes_per_class, size=num_samples)
    mix = rng.uniform(0.55, 1.0, size=num_samples)[:, None, None, None]
    first = protos[labels, proto_idx]
    second = protos[labels, second_idx]
    x = mix * first + (1.0 - mix) * second
    x += rng.normal(scale=cfg.noise_std, size=x.shape)
    if flat:
        x = x.reshape(num_samples, -1)
    return x.astype(np.float64), labels.astype(np.int64)


def make_classification_splits(
    cfg: SyntheticImageConfig,
    rng: np.random.Generator,
    num_train: int = 2000,
    num_val: int = 400,
    num_test: int = 400,
    flat: bool = False,
) -> tuple[Dataset, Dataset, Dataset]:
    """Build train/validation/test :class:`~repro.data.dataset.Dataset` splits.

    All three splits share the same class prototypes (drawn once from
    ``rng``), mirroring CIFAR10's train/test split of a single distribution.
    """
    protos_rng_state = rng.bit_generator.state  # prototypes must be shared
    total = num_train + num_val + num_test
    x, y = make_synthetic_images(total, cfg, rng, flat=flat)
    del protos_rng_state
    train = Dataset(x[:num_train], y[:num_train], name="train")
    val = Dataset(
        x[num_train : num_train + num_val], y[num_train : num_train + num_val], name="val"
    )
    test = Dataset(x[num_train + num_val :], y[num_train + num_val :], name="test")
    return train, val, test
