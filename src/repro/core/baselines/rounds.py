"""Round harness: race update rules under volunteer-computing conditions.

A deliberately compact comparator (separate from the full BOINC pipeline)
that isolates the *update rule* variable: N clients each own a data shard;
every round each client locally trains from the current server copy and
reports either a weight copy or an accumulated gradient; the server applies
the rule per arriving update.

Volunteer conditions are injected as per-round client dropouts.  Rules with
``fault_tolerant=False`` (EASGD's round form) cannot advance until every
client reports, so a dropout stalls the round and costs a full extra round
time — which is precisely the §III-C argument for why such schemes do not
fit VC systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...data.dataset import Dataset
from ...data.loader import BatchLoader
from ...data.sharding import split_dataset
from ...data.synthetic import SyntheticImageConfig, make_classification_splits
from ...errors import ConfigurationError
from ...nn.losses import cross_entropy
from ...nn.metrics import evaluate_classifier
from ...nn.models import ModelSpec, build_model
from ...nn.optim import SGD
from ...nn.serialization import gradients_to_vector, state_to_vector, vector_to_state
from ...nn.tensor import Tensor
from ...simulation.rng import RngRegistry
from ..rules import ClientUpdate, UpdateRule

__all__ = ["RoundConfig", "RoundRecord", "RoundResult", "RoundHarness"]


@dataclass(frozen=True)
class RoundConfig:
    """Shape of one comparator experiment."""

    num_clients: int = 5
    num_rounds: int = 30
    dropout_p: float = 0.0  # P(a given client fails to report in a round)
    local_steps: int = 8
    batch_size: int = 20
    local_lr: float = 0.05
    round_seconds: float = 150.0  # ≈ t_e: one wave of subtasks
    model: ModelSpec = field(
        default_factory=lambda: ModelSpec(
            "mlp", {"in_features": 192, "hidden": [32], "num_classes": 10}
        )
    )
    data: SyntheticImageConfig = field(default_factory=SyntheticImageConfig)
    num_train: int = 2000
    num_val: int = 400
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_clients <= 0 or self.num_rounds <= 0:
            raise ConfigurationError("num_clients and num_rounds must be positive")
        if not 0.0 <= self.dropout_p < 1.0:
            raise ConfigurationError("dropout_p must be in [0, 1)")


@dataclass(frozen=True)
class RoundRecord:
    round_index: int
    end_time_s: float
    val_accuracy: float
    reported: int
    stalled_retries: int


@dataclass
class RoundResult:
    label: str
    records: list[RoundRecord] = field(default_factory=list)
    total_stalls: int = 0

    @property
    def final_accuracy(self) -> float:
        return self.records[-1].val_accuracy

    @property
    def total_time_s(self) -> float:
        return self.records[-1].end_time_s

    def accuracy_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, accuracies) arrays for curve analysis."""
        t = np.asarray([r.end_time_s for r in self.records])
        a = np.asarray([r.val_accuracy for r in self.records])
        return t, a


class RoundHarness:
    """Runs any :class:`UpdateRule` on a shared data/model substrate."""

    def __init__(self, config: RoundConfig) -> None:
        self.config = config
        self.rngs = RngRegistry(config.seed)
        train, val, _ = make_classification_splits(
            config.data,
            self.rngs.stream("data"),
            num_train=config.num_train,
            num_val=config.num_val,
            num_test=1,
            flat=True,
        )
        self.val_set = val
        self.shards: list[Dataset] = split_dataset(
            train, config.num_clients, rng=self.rngs.stream("shards")
        )
        self.model = build_model(config.model, self.rngs.stream("init"))
        self.template = self.model.state_dict()
        self.initial_vec = state_to_vector(self.template)

    # -- client-side local training ------------------------------------------
    def _local_train(
        self, start_vec: np.ndarray, shard: Dataset, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (new weights, accumulated gradient) from one local pass."""
        cfg = self.config
        self.model.load_state_dict(vector_to_state(start_vec, self.template))
        self.model.train()
        opt = SGD(self.model.parameters(), lr=cfg.local_lr)
        params = list(self.model.parameters())
        accumulated = np.zeros_like(start_vec)
        loader = BatchLoader(shard, cfg.batch_size, rng=rng)
        steps = 0
        while steps < cfg.local_steps:
            for xb, yb in loader:
                if steps >= cfg.local_steps:
                    break
                self.model.zero_grad()
                loss = cross_entropy(self.model(Tensor(xb)), yb)
                loss.backward()
                grads = {
                    name: p.grad for name, p in self.model.named_parameters()
                }
                # Zero-filled at buffer slots, so it stays aligned with the
                # parameter vector even for models with buffers.
                accumulated += gradients_to_vector(grads, self.template)
                opt.step()
                steps += 1
        return state_to_vector(self.model.state_dict()), accumulated

    def _evaluate(self, vec: np.ndarray) -> float:
        self.model.load_state_dict(vector_to_state(vec, self.template))
        _, acc = evaluate_classifier(self.model, self.val_set.x, self.val_set.y)
        return acc

    # -- the race ---------------------------------------------------------------
    def run(self, rule: UpdateRule) -> RoundResult:
        """Race ``rule`` over the configured rounds; returns its trajectory."""
        cfg = self.config
        rng = self.rngs.fresh(f"rounds:{rule.describe()}")
        server = self.initial_vec.copy()
        result = RoundResult(label=rule.describe())
        clock = 0.0
        version = 0
        for round_index in range(1, cfg.num_rounds + 1):
            rule.snapshot_sent(version, server)
            reporting = [
                c for c in range(cfg.num_clients) if rng.random() >= cfg.dropout_p
            ]
            retries = 0
            if not rule.fault_tolerant:
                # Barrier semantics: wait (and redraw) until everyone reports.
                while len(reporting) < cfg.num_clients:
                    retries += 1
                    clock += cfg.round_seconds
                    reporting = [
                        c
                        for c in range(cfg.num_clients)
                        if rng.random() >= cfg.dropout_p
                    ]
                result.total_stalls += retries
            updates: list[ClientUpdate] = []
            for client in reporting:
                new_vec, grad = self._local_train(
                    server, self.shards[client], rng
                )
                updates.append(
                    ClientUpdate(
                        client_id=client,
                        params=new_vec,
                        gradient=grad,
                        base_version=version,
                    )
                )
            # Asynchronous arrival: apply in a random order.
            order = rng.permutation(len(updates))
            for idx in order:
                server = rule.apply(server, updates[idx], round_index)
            version += 1
            clock += cfg.round_seconds
            result.records.append(
                RoundRecord(
                    round_index=round_index,
                    end_time_s=clock,
                    val_accuracy=self._evaluate(server),
                    reported=len(reporting),
                    stalled_retries=retries,
                )
            )
        return result
