"""Back-compat shim: the update-rule family now lives in
:mod:`repro.core.rules`, promoted from a baselines-only helper to the
core server-side abstraction (both the round harness and the full BOINC
pipeline apply the same rule objects).  Import from ``repro.core.rules``
in new code.
"""

from __future__ import annotations

from ..rules import (
    ClientUpdate,
    DCASGDRule,
    DownpourRule,
    EASGDRule,
    RescaledASGDRule,
    SyncAllReduceRule,
    UpdateRule,
    VCASGDRule,
    make_rule,
)

__all__ = [
    "ClientUpdate",
    "UpdateRule",
    "VCASGDRule",
    "DownpourRule",
    "EASGDRule",
    "DCASGDRule",
    "RescaledASGDRule",
    "SyncAllReduceRule",
    "make_rule",
]
