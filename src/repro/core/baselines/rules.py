"""Server-side update rules for the ASGD family the paper compares against.

§II-B / §III-C discuss three prior schemes; each is implemented as an
:class:`UpdateRule` so the round harness (:mod:`.rounds`) can race them
against VC-ASGD under volunteer-computing conditions (dropouts, staleness):

* **Downpour SGD** (Dean et al.) — clients push *gradients*; the server
  applies them directly with its own learning rate.
* **EASGD** (Zhang et al.) — elastic averaging with moving rate β; the
  canonical asynchronous form updates both sides with the elastic force.
  Its round form *requires updates from every client* (the paper's point
  about fault intolerance is modelled in the harness barrier).
* **DC-ASGD** (Zheng et al.) — Downpour plus a delay-compensation term
  built from a diagonal Hessian approximation:
  ``g + λ · g ⊙ g ⊙ (W_now − W_backup)``.

All rules operate on flat float64 parameter/gradient vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...errors import ConfigurationError
from ..vcasgd import AlphaSchedule, vcasgd_merge

__all__ = [
    "ClientUpdate",
    "UpdateRule",
    "VCASGDRule",
    "DownpourRule",
    "EASGDRule",
    "DCASGDRule",
    "SyncAllReduceRule",
]


@dataclass(frozen=True)
class ClientUpdate:
    """What one client sends to the server after local training.

    VC-ASGD and EASGD consume ``params`` (a full weight copy); Downpour and
    DC-ASGD consume ``gradient`` (the accumulated local gradient).  Both are
    populated by the round harness so any rule can run on the same trace.
    ``base_version`` identifies the server snapshot the client started from
    (staleness bookkeeping; DC-ASGD uses the corresponding backup weights).
    """

    client_id: int
    params: np.ndarray
    gradient: np.ndarray
    base_version: int


class UpdateRule:
    """Applies client updates to the server parameter vector."""

    #: Whether the rule can make progress when some clients never report
    #: (VC-ASGD / Downpour / DC-ASGD: yes; EASGD round form: no).
    fault_tolerant: bool = True

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        """Return the new server vector after absorbing one client update."""
        raise NotImplementedError

    def snapshot_sent(self, version: int, server: np.ndarray) -> None:
        """Hook: the server copy ``server`` was sent out as ``version``."""

    def describe(self) -> str:
        """Short label used in result tables."""
        return type(self).__name__


@dataclass
class VCASGDRule(UpdateRule):
    """The paper's Eq. 1 with an α schedule."""

    schedule: AlphaSchedule
    fault_tolerant: bool = True

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return vcasgd_merge(server, update.params, self.schedule.alpha_at(epoch))

    def describe(self) -> str:
        return f"VC-ASGD({self.schedule.describe()})"


@dataclass
class DownpourRule(UpdateRule):
    """Server-side SGD on pushed gradients (Downpour's parameter server)."""

    server_lr: float = 0.05
    fault_tolerant: bool = True

    def __post_init__(self) -> None:
        if self.server_lr <= 0:
            raise ConfigurationError("server_lr must be positive")

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return server - self.server_lr * update.gradient

    def describe(self) -> str:
        return f"Downpour(lr={self.server_lr})"


@dataclass
class EASGDRule(UpdateRule):
    """Elastic averaging: ``W_s ← W_s + β (W_c − W_s)``.

    Algebraically the server-side move equals VC-ASGD with α = 1 − β (the
    paper reads its α = 0.999 run as EASGD with moving rate 0.001).  The
    crucial *system* difference — EASGD expects every client's update each
    round — is enforced by the harness when ``fault_tolerant`` is False.
    """

    moving_rate: float = 0.001
    fault_tolerant: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.moving_rate < 1.0:
            raise ConfigurationError("moving_rate must be in (0, 1)")

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return server + self.moving_rate * (update.params - server)

    def describe(self) -> str:
        return f"EASGD(beta={self.moving_rate})"


@dataclass
class SyncAllReduceRule(UpdateRule):
    """Bulk-synchronous data parallelism (the AllReduce family, §II-B).

    Each round the server replaces its copy with the *mean* of every
    client's parameters — computed incrementally as updates arrive
    (``W ← W + (W_c − W)/k`` for the k-th arrival of the round), which
    equals the exact mean once all have landed.  Like every BSP scheme it
    requires all clients per round, so ``fault_tolerant = False``: in a VC
    environment each dropout stalls the barrier.
    """

    fault_tolerant: bool = False
    _round: int = field(default=-1, repr=False)
    _arrivals: int = field(default=0, repr=False)

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        if epoch != self._round:
            self._round = epoch
            self._arrivals = 0
        self._arrivals += 1
        if self._arrivals == 1:
            return update.params.copy()
        return server + (update.params - server) / self._arrivals

    def describe(self) -> str:
        return "SyncAllReduce"


@dataclass
class DCASGDRule(UpdateRule):
    """Delay-compensated ASGD (Zheng et al. 2017).

    Keeps a backup of each parameter snapshot it hands out; on receiving a
    gradient computed against backup ``W_bak`` while the server has moved
    to ``W_s``, applies::

        W_s ← W_s − lr · (g + λ · g ⊙ g ⊙ (W_s − W_bak))

    The λ-term is the diagonal approximation of the Hessian correction.
    """

    server_lr: float = 0.05
    lam: float = 0.04
    fault_tolerant: bool = True
    _backups: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.server_lr <= 0 or self.lam < 0:
            raise ConfigurationError("invalid DC-ASGD parameters")

    def snapshot_sent(self, version: int, server: np.ndarray) -> None:
        self._backups[version] = server.copy()

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        backup = self._backups.get(update.base_version)
        g = update.gradient
        if backup is None:
            compensated = g
        else:
            compensated = g + self.lam * g * g * (server - backup)
        return server - self.server_lr * compensated

    def describe(self) -> str:
        return f"DC-ASGD(lr={self.server_lr}, lambda={self.lam})"
