"""Single-instance serial synchronous training — the Fig. 6 baseline.

"To benchmark the performance of our distributed training approach against
the best possible performance baseline, we run the CIFAR10 training job as
a serial single-instance synchronous training" on the server-class
instance.  Same model, same data, same optimizer; one machine, no
parameter server, no staleness.

Simulated time: one epoch costs the full job's work (``num_shards`` ×
``work_units_per_subtask``) executed on the instance's aggregate rate
(batch-level parallelism uses all cores), plus a per-epoch validation pass.
"""

from __future__ import annotations

import numpy as np

from ...data.loader import BatchLoader
from ...data.synthetic import make_classification_splits
from ...errors import ConfigurationError
from ...nn.losses import cross_entropy
from ...nn.metrics import evaluate_classifier
from ...nn.models import build_model
from ...nn.optim import SGD, Adam
from ...nn.tensor import Tensor
from ...simulation.rng import RngRegistry
from ..job import TrainingJobConfig
from ..results import EpochRecord, RunResult

__all__ = ["SingleInstanceTrainer", "run_single_instance"]


class SingleInstanceTrainer:
    """Serial synchronous trainer with a simulated wall clock.

    ``passes_per_epoch`` controls how many passes over the full training
    set constitute one recorded epoch.  The default (None) matches the
    distributed system's aggregate optimization work per epoch — clients
    collectively perform ``local_training.local_epochs`` passes over the
    data each epoch — making the Fig. 6 comparison work-fair.  Pass 1 for
    the textbook one-pass epoch.
    """

    def __init__(
        self, config: TrainingJobConfig, passes_per_epoch: int | None = None
    ) -> None:
        self.config = config
        if passes_per_epoch is None:
            passes_per_epoch = config.local_training.local_epochs
        if passes_per_epoch <= 0:
            raise ConfigurationError("passes_per_epoch must be positive")
        self.passes_per_epoch = passes_per_epoch
        self.rngs = RngRegistry(config.seed)
        data_rng = self.rngs.stream("data")
        self.train_set, self.val_set, self.test_set = make_classification_splits(
            config.data,
            data_rng,
            num_train=config.num_train,
            num_val=config.num_val,
            num_test=config.num_test,
            flat=config.flat_features,
        )
        self.model = build_model(config.model, self.rngs.stream("init"))
        cfg = config.local_training
        if cfg.optimizer == "adam":
            self.optimizer = Adam(self.model.parameters(), lr=cfg.learning_rate)
        elif cfg.optimizer == "sgd":
            self.optimizer = SGD(self.model.parameters(), lr=cfg.learning_rate)
        else:  # pragma: no cover - config validates
            raise ConfigurationError(f"unknown optimizer {cfg.optimizer!r}")
        # One epoch of serial work = the whole job's subtask work; all the
        # instance's cores contribute (data-parallel batches on one node).
        total_work = config.num_shards * config.work_units_per_subtask
        rate = config.server_spec.total_rate
        self.epoch_seconds = total_work / rate + config.validation_work_units / rate

    def run(self) -> RunResult:
        """Train serially for up to ``max_epochs``; returns epoch records."""
        config = self.config
        result = RunResult(label="single-instance")
        loader = BatchLoader(
            self.train_set,
            config.local_training.batch_size,
            rng=self.rngs.stream("batches"),
        )
        clock = 0.0
        for epoch in range(1, config.max_epochs + 1):
            self.model.train()
            for _ in range(self.passes_per_epoch):
                for xb, yb in loader:
                    self.model.zero_grad()
                    loss = cross_entropy(self.model(Tensor(xb)), yb)
                    loss.backward()
                    self.optimizer.step()
            clock += self.epoch_seconds
            _, val_acc = evaluate_classifier(self.model, self.val_set.x, self.val_set.y)
            _, test_acc = evaluate_classifier(self.model, self.test_set.x, self.test_set.y)
            result.append(
                EpochRecord(
                    epoch=epoch,
                    end_time_s=clock,
                    val_accuracy_mean=val_acc,
                    val_accuracy_min=val_acc,
                    val_accuracy_max=val_acc,
                    test_accuracy=test_acc,
                    alpha=float("nan"),
                    assimilations=0,
                    timeouts_so_far=0,
                    lost_updates_so_far=0,
                )
            )
            if (
                config.target_accuracy is not None
                and val_acc >= config.target_accuracy
            ):
                result.stopped_reason = "target_accuracy"
                break
        if not result.stopped_reason:
            result.stopped_reason = "max_epochs"
        return result


def run_single_instance(
    config: TrainingJobConfig, passes_per_epoch: int | None = None
) -> RunResult:
    """Convenience wrapper mirroring :func:`repro.core.runner.run_experiment`."""
    return SingleInstanceTrainer(config, passes_per_epoch).run()
