"""Comparators: single-instance training and the prior ASGD family."""

from .rounds import RoundConfig, RoundHarness, RoundRecord, RoundResult
from .rules import (
    ClientUpdate,
    DCASGDRule,
    DownpourRule,
    EASGDRule,
    SyncAllReduceRule,
    UpdateRule,
    VCASGDRule,
)
from .single_instance import SingleInstanceTrainer, run_single_instance

__all__ = [
    "SingleInstanceTrainer",
    "run_single_instance",
    "UpdateRule",
    "ClientUpdate",
    "VCASGDRule",
    "DownpourRule",
    "EASGDRule",
    "DCASGDRule",
    "SyncAllReduceRule",
    "RoundConfig",
    "RoundHarness",
    "RoundRecord",
    "RoundResult",
]
