"""Server-side update rules: the pluggable merge fabric of the pipeline.

§II-B / §III-C compare VC-ASGD against the prior ASGD family.  Every
scheme is an :class:`UpdateRule` applied per arriving client result, so
the *same* rule objects run on both substrates:

* the compact round harness (:mod:`.baselines.rounds`), which isolates the
  update-rule variable; and
* the full BOINC pipeline (:class:`~repro.core.runner.DistributedRunner`
  → :class:`~repro.core.param_server.ParameterServerPool`), where rules
  additionally experience real staleness, timeouts, preemptions and
  KV-store semantics.

Rules implemented:

* **VC-ASGD** (the paper, Eq. 1) — weighted merge of the client's full
  parameter copy with an α schedule.
* **Downpour SGD** (Dean et al.) — clients push *gradients*; the server
  applies them directly with its own learning rate.
* **EASGD** (Zhang et al.) — elastic averaging with moving rate β; the
  canonical round form *requires updates from every client*, which is the
  paper's fault-intolerance argument (modelled as a barrier in both
  harnesses).
* **DC-ASGD** (Zheng et al.) — Downpour plus a delay-compensation term
  built from a diagonal Hessian approximation:
  ``g + λ · g ⊙ g ⊙ (W_now − W_backup)``.
* **Rescaled ASGD** (after Mahran et al.) — delay-scaled Downpour: the
  server step for an update with staleness τ is divided by (1 + τ), so
  stragglers on slow volunteers cannot blow up the server copy.
* **SyncAllReduce** — bulk-synchronous mean, the AllReduce family's
  fault-intolerant reference point.

All rules operate on flat float64 parameter/gradient vectors (the
:mod:`repro.nn.serialization` codec).  Stateful rules (DC-ASGD backups,
sync-round counters) expose ``state_dict``/``load_state_dict`` so their
state participates in :class:`~repro.core.checkpoint.Checkpoint`
save/resume — a server failure must not silently reset delay compensation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .vcasgd import AlphaSchedule, ConstantAlpha, VarAlpha, vcasgd_merge

__all__ = [
    "ClientUpdate",
    "UpdateRule",
    "VCASGDRule",
    "DownpourRule",
    "EASGDRule",
    "DCASGDRule",
    "RescaledASGDRule",
    "SyncAllReduceRule",
    "CoordMedianRule",
    "CenteredClipRule",
    "RULE_NAMES",
    "make_rule",
]


@dataclass(frozen=True)
class ClientUpdate:
    """What one client sends to the server after local training.

    VC-ASGD and EASGD consume ``params`` (a full weight copy); Downpour,
    DC-ASGD and Rescaled ASGD consume ``gradient`` (the accumulated local
    gradient in the same flat codec, zero-filled at buffer slots).
    ``base_version`` identifies the server publish the client started from
    (staleness bookkeeping; DC-ASGD uses the corresponding backup weights).

    On the full pipeline this object is the upload payload itself: it flows
    through the BOINC validator, replication quorum and assimilator intact.
    ``gradient`` may be None when the configured rule does not need it
    (clients then skip the accumulation work).
    """

    client_id: int | str
    params: np.ndarray
    gradient: np.ndarray | None = None
    base_version: int = 0
    #: BOINC-style credit the client *claims* for this result (None = the
    #: server-side nominal cost).  Honest clients leave it None; the
    #: adversary fabric's claim-inflation attack sets it, and the credit
    #: ledger defends by granting the median of a quorum's claims.
    claimed_credit: float | None = None


class UpdateRule:
    """Applies client updates to the server parameter vector."""

    #: Whether the rule can make progress when some clients never report
    #: (VC-ASGD / Downpour / DC-ASGD / Rescaled: yes; EASGD and BSP: no).
    fault_tolerant: bool = True

    #: Whether :meth:`apply` reads ``update.gradient``.  Clients only pay
    #: for gradient accumulation when the job's rule needs it.
    uses_gradient: bool = False

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        """Return the new server vector after absorbing one client update.

        Must be out of place: with an eventually consistent store,
        ``server`` may be a snapshot other in-flight transactions still
        reference.  ``epoch`` is 1-based, as the paper counts.

        Built-in rules route through :meth:`apply_into` with a single
        fresh output allocation, so absorbing a result costs exactly one
        vector-sized allocation and zero temporaries.
        """
        raise NotImplementedError

    def apply_into(
        self,
        server: np.ndarray,
        update: ClientUpdate,
        epoch: int,
        out: np.ndarray,
    ) -> np.ndarray:
        """In-place variant of :meth:`apply`: write the merged vector into
        ``out`` and return it.

        ``out`` must not alias ``server``, ``update.params`` or
        ``update.gradient``.  Built-in rules implement their kernel here
        with ``np.<op>(..., out=)`` BLAS-1 calls over per-rule scratch
        buffers — bit-identical results to the historical allocating
        expressions (same elementwise ops in the same order), with zero
        temporaries.  The default delegates to :meth:`apply` so custom
        out-of-place rules keep working unchanged.
        """
        result = self.apply(server, update, epoch)
        if result is not out:
            np.copyto(out, result)
        return out

    def _scratch(self, shape: tuple[int, ...], slot: int = 0) -> np.ndarray:
        """A reusable per-rule scratch buffer (lazily grown per slot).

        Scratch holds *intermediate* values only — never the returned
        vector — so reuse across calls cannot alias anything a store
        snapshot, catalog payload or checkpoint still references.
        """
        buffers = self.__dict__.setdefault("_scratch_buffers", {})
        buf = buffers.get(slot)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape)
            buffers[slot] = buf
        return buf

    def snapshot_sent(self, version: int, server: np.ndarray) -> None:
        """Hook: the server copy ``server`` was published as ``version``."""

    def state_dict(self) -> dict[str, np.ndarray]:
        """Checkpointable rule state (empty for stateless rules)."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state:
            raise ConfigurationError(
                f"{type(self).__name__} is stateless but got rule state "
                f"{sorted(state)}"
            )

    def describe(self) -> str:
        """Short label used in result tables."""
        return type(self).__name__

    def merge_weight(self, epoch: int) -> float | None:
        """Blending weight the rule would use for a merge at ``epoch``.

        Purely informational (trace/span attribution joins it to per-merge
        staleness); None when the rule has no single scalar weight.
        ``epoch`` is 1-based, matching :meth:`apply`.
        """
        return None

    @staticmethod
    def _require_gradient(update: ClientUpdate) -> np.ndarray:
        if update.gradient is None:
            raise ConfigurationError(
                "update rule needs an accumulated gradient but the client "
                "update carries none (was the job configured before the "
                "rule was set?)"
            )
        return update.gradient


@dataclass
class VCASGDRule(UpdateRule):
    """The paper's Eq. 1 with an α schedule."""

    schedule: AlphaSchedule
    fault_tolerant: bool = True

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return self.apply_into(server, update, epoch, np.empty_like(server))

    def apply_into(
        self,
        server: np.ndarray,
        update: ClientUpdate,
        epoch: int,
        out: np.ndarray,
    ) -> np.ndarray:
        return vcasgd_merge(
            server,
            update.params,
            self.schedule.alpha_at(epoch),
            out=out,
            scratch=self._scratch(server.shape),
        )

    def describe(self) -> str:
        return f"VC-ASGD({self.schedule.describe()})"

    def merge_weight(self, epoch: int) -> float | None:
        return float(self.schedule.alpha_at(epoch))


@dataclass
class DownpourRule(UpdateRule):
    """Server-side SGD on pushed gradients (Downpour's parameter server)."""

    server_lr: float = 0.05
    fault_tolerant: bool = True
    uses_gradient: bool = True

    def __post_init__(self) -> None:
        if self.server_lr <= 0:
            raise ConfigurationError("server_lr must be positive")

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return self.apply_into(server, update, epoch, np.empty_like(server))

    def apply_into(
        self,
        server: np.ndarray,
        update: ClientUpdate,
        epoch: int,
        out: np.ndarray,
    ) -> np.ndarray:
        g = self._require_gradient(update)
        scaled = np.multiply(g, self.server_lr, out=self._scratch(g.shape))
        return np.subtract(server, scaled, out=out)

    def describe(self) -> str:
        return f"Downpour(lr={self.server_lr})"


@dataclass
class EASGDRule(UpdateRule):
    """Elastic averaging: ``W_s ← W_s + β (W_c − W_s)``.

    Algebraically the server-side move equals VC-ASGD with α = 1 − β (the
    paper reads its α = 0.999 run as EASGD with moving rate 0.001).  The
    crucial *system* difference — EASGD expects every client's update each
    round — is enforced by the harness when ``fault_tolerant`` is False.
    """

    moving_rate: float = 0.001
    fault_tolerant: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.moving_rate < 1.0:
            raise ConfigurationError("moving_rate must be in (0, 1)")

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return self.apply_into(server, update, epoch, np.empty_like(server))

    def apply_into(
        self,
        server: np.ndarray,
        update: ClientUpdate,
        epoch: int,
        out: np.ndarray,
    ) -> np.ndarray:
        pull = np.subtract(update.params, server, out=self._scratch(server.shape))
        np.multiply(pull, self.moving_rate, out=pull)
        return np.add(server, pull, out=out)

    def describe(self) -> str:
        return f"EASGD(beta={self.moving_rate})"

    def merge_weight(self, epoch: int) -> float | None:
        return float(self.moving_rate)


@dataclass
class SyncAllReduceRule(UpdateRule):
    """Bulk-synchronous data parallelism (the AllReduce family, §II-B).

    Each round the server replaces its copy with the *mean* of every
    client's parameters — computed incrementally as updates arrive
    (``W ← W + (W_c − W)/k`` for the k-th arrival of the round), which
    equals the exact mean once all have landed.  Like every BSP scheme it
    requires all clients per round, so ``fault_tolerant = False``: in a VC
    environment each dropout stalls the barrier.
    """

    fault_tolerant: bool = False
    _round: int = field(default=-1, repr=False)
    _arrivals: int = field(default=0, repr=False)

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return self.apply_into(server, update, epoch, np.empty_like(server))

    def apply_into(
        self,
        server: np.ndarray,
        update: ClientUpdate,
        epoch: int,
        out: np.ndarray,
    ) -> np.ndarray:
        if epoch != self._round:
            self._round = epoch
            self._arrivals = 0
        self._arrivals += 1
        if self._arrivals == 1:
            np.copyto(out, update.params)
            return out
        delta = np.subtract(update.params, server, out=self._scratch(server.shape))
        np.divide(delta, self._arrivals, out=delta)
        return np.add(server, delta, out=out)

    def state_dict(self) -> dict[str, np.ndarray]:
        return {
            "round": np.asarray([self._round]),
            "arrivals": np.asarray([self._arrivals]),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if state:
            self._round = int(np.asarray(state["round"])[0])
            self._arrivals = int(np.asarray(state["arrivals"])[0])

    def describe(self) -> str:
        return "SyncAllReduce"


@dataclass
class DCASGDRule(UpdateRule):
    """Delay-compensated ASGD (Zheng et al. 2017).

    Keeps a backup of each parameter snapshot it hands out; on receiving a
    gradient computed against backup ``W_bak`` while the server has moved
    to ``W_s``, applies::

        W_s ← W_s − lr · (g + λ · g ⊙ g ⊙ (W_s − W_bak))

    The λ-term is the diagonal approximation of the Hessian correction.
    ``max_backups`` bounds memory on long runs: only the most recent
    publishes keep a backup; older updates fall back to plain Downpour
    (their compensation window has passed anyway).
    """

    server_lr: float = 0.05
    lam: float = 0.04
    max_backups: int = 64
    fault_tolerant: bool = True
    uses_gradient: bool = True
    _backups: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.server_lr <= 0 or self.lam < 0:
            raise ConfigurationError("invalid DC-ASGD parameters")
        if self.max_backups < 1:
            raise ConfigurationError("max_backups must be >= 1")

    def snapshot_sent(self, version: int, server: np.ndarray) -> None:
        self._backups[version] = server.copy()
        while len(self._backups) > self.max_backups:
            del self._backups[min(self._backups)]

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return self.apply_into(server, update, epoch, np.empty_like(server))

    def apply_into(
        self,
        server: np.ndarray,
        update: ClientUpdate,
        epoch: int,
        out: np.ndarray,
    ) -> np.ndarray:
        backup = self._backups.get(update.base_version)
        g = self._require_gradient(update)
        # Same elementwise op order as the historical expression
        # ``server - lr * (g + ((lam*g)*g) * (server - backup))`` so results
        # stay bit-identical; two scratch slots hold the intermediates.
        work = self._scratch(g.shape)
        if backup is None:
            np.multiply(g, self.server_lr, out=work)
            return np.subtract(server, work, out=out)
        np.multiply(g, self.lam, out=work)
        np.multiply(work, g, out=work)
        drift = np.subtract(server, backup, out=self._scratch(server.shape, slot=1))
        np.multiply(work, drift, out=work)
        np.add(g, work, out=work)
        np.multiply(work, self.server_lr, out=work)
        return np.subtract(server, work, out=out)

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"backup:{version}": vec for version, vec in self._backups.items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._backups = {
            int(key.split(":", 1)[1]): np.asarray(vec, dtype=np.float64).copy()
            for key, vec in state.items()
        }

    def describe(self) -> str:
        return f"DC-ASGD(lr={self.server_lr}, lambda={self.lam})"


@dataclass
class RescaledASGDRule(UpdateRule):
    """Staleness-rescaled ASGD (after Mahran et al.).

    A Downpour-style gradient step whose size shrinks with the update's
    *delay*: an update trained from publish ``base_version`` while the
    server is at version ``v`` has staleness τ = v − base_version and is
    applied as::

        W_s ← W_s − (lr / (1 + τ)^p) · g

    With p = 1 this is the classic staleness-aware rescaling (Rudra's
    τ-inverse learning rate, Gupta et al., reaches the same fixed point);
    heterogeneous volunteer fleets produce highly dispersed τ, which is
    exactly the regime the rescaling targets.  The rule tracks the latest
    published version via :meth:`snapshot_sent`, so it needs no harness
    cooperation beyond the version tags every publish already carries.
    """

    server_lr: float = 0.05
    power: float = 1.0
    fault_tolerant: bool = True
    uses_gradient: bool = True
    _latest_version: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.server_lr <= 0 or self.power < 0:
            raise ConfigurationError("invalid Rescaled ASGD parameters")

    def snapshot_sent(self, version: int, server: np.ndarray) -> None:
        self._latest_version = max(self._latest_version, version)

    def staleness_of(self, update: ClientUpdate) -> int:
        """Delay τ of an update relative to the latest publish."""
        return max(0, self._latest_version - update.base_version)

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return self.apply_into(server, update, epoch, np.empty_like(server))

    def apply_into(
        self,
        server: np.ndarray,
        update: ClientUpdate,
        epoch: int,
        out: np.ndarray,
    ) -> np.ndarray:
        g = self._require_gradient(update)
        scale = self.server_lr / (1.0 + self.staleness_of(update)) ** self.power
        scaled = np.multiply(g, scale, out=self._scratch(g.shape))
        return np.subtract(server, scaled, out=out)

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"latest_version": np.asarray([self._latest_version])}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if state:
            self._latest_version = int(np.asarray(state["latest_version"])[0])

    def describe(self) -> str:
        return f"RescaledASGD(lr={self.server_lr}, p={self.power:g})"


# -- robust aggregation (Byzantine defense) ---------------------------------


class _WindowedRule(UpdateRule):
    """Shared machinery: a ring buffer of the most recent client params.

    Robust aggregators need *several* client vectors to out-vote a
    Byzantine minority, but the BOINC pipeline delivers results one at a
    time.  The window turns the stream into a sliding population: each
    arriving update is pushed, then the robust aggregate of the window
    replaces the raw client vector in the Eq. 1 merge
    ``W_s ← α·W_s + (1−α)·agg(window)``.  The buffer participates in
    ``state_dict`` so a checkpoint resume sees the same population.
    """

    window: int
    _buf: np.ndarray | None
    _filled: int
    _next: int

    def _push(self, params: np.ndarray) -> np.ndarray:
        """Append ``params`` to the ring; return the filled-rows view."""
        if self._buf is None or self._buf.shape[1:] != params.shape:
            self._buf = np.empty((self.window,) + params.shape)
            self._filled = 0
            self._next = 0
        np.copyto(self._buf[self._next], params)
        self._next = (self._next + 1) % self.window
        self._filled = min(self._filled + 1, self.window)
        return self._buf[: self._filled]

    def state_dict(self) -> dict[str, np.ndarray]:
        if self._buf is None:
            return {}
        return {
            "window_buf": self._buf[: self._filled].copy(),
            "window_next": np.asarray([self._next]),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if not state:
            self._buf = None
            self._filled = 0
            self._next = 0
            return
        rows = np.asarray(state["window_buf"], dtype=np.float64)
        self._buf = np.empty((self.window,) + rows.shape[1:])
        self._filled = min(rows.shape[0], self.window)
        np.copyto(self._buf[: self._filled], rows[: self._filled])
        self._next = int(np.asarray(state["window_next"])[0]) % self.window


@dataclass
class CoordMedianRule(_WindowedRule):
    """Coordinate-wise median over a window of recent client results.

    The classic Byzantine-robust aggregator (Yin et al. 2018): each
    parameter coordinate takes the median of the last ``window`` client
    vectors, so any minority of falsified uploads is out-voted
    coordinate-by-coordinate.  The median then enters the paper's Eq. 1
    with the configured α schedule — identical server-side semantics to
    VC-ASGD, just a robustified client vector.
    """

    schedule: AlphaSchedule
    window: int = 5
    fault_tolerant: bool = True
    _buf: np.ndarray | None = field(default=None, repr=False)
    _filled: int = field(default=0, repr=False)
    _next: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return self.apply_into(server, update, epoch, np.empty_like(server))

    def apply_into(
        self,
        server: np.ndarray,
        update: ClientUpdate,
        epoch: int,
        out: np.ndarray,
    ) -> np.ndarray:
        rows = self._push(update.params)
        median = np.median(rows, axis=0, out=self._scratch(server.shape))
        return vcasgd_merge(
            server,
            median,
            self.schedule.alpha_at(epoch),
            out=out,
            scratch=self._scratch(server.shape, slot=1),
        )

    def describe(self) -> str:
        return f"CoordMedian(w={self.window}, {self.schedule.describe()})"

    def merge_weight(self, epoch: int) -> float | None:
        return float(self.schedule.alpha_at(epoch))


@dataclass
class CenteredClipRule(_WindowedRule):
    """CenteredClip (Gorbunov et al., "Secure Distributed Training at Scale").

    Iteratively refines an estimate ``v`` starting at the current server
    copy::

        v ← v + (1/k) · Σ_i clip(x_i − v, τ)

    where ``clip(d, τ)`` rescales ``d`` to L2 norm at most τ.  Honest
    updates (small deltas off the server copy) pass through nearly
    unclipped; falsified vectors far from consensus contribute at most a
    τ-length pull per iteration, bounding Byzantine influence regardless
    of magnitude.  The converged ``v`` then enters Eq. 1 with the α
    schedule, like every averaging rule on this substrate.
    """

    schedule: AlphaSchedule
    tau: float = 1.0
    iters: int = 3
    window: int = 5
    fault_tolerant: bool = True
    _buf: np.ndarray | None = field(default=None, repr=False)
    _filled: int = field(default=0, repr=False)
    _next: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ConfigurationError("tau must be positive")
        if self.iters < 1:
            raise ConfigurationError("iters must be >= 1")
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")

    def apply(self, server: np.ndarray, update: ClientUpdate, epoch: int) -> np.ndarray:
        return self.apply_into(server, update, epoch, np.empty_like(server))

    def apply_into(
        self,
        server: np.ndarray,
        update: ClientUpdate,
        epoch: int,
        out: np.ndarray,
    ) -> np.ndarray:
        rows = self._push(update.params)
        v = self._scratch(server.shape)
        np.copyto(v, server)
        diff = self._scratch(server.shape, slot=1)
        acc = self._scratch(server.shape, slot=2)
        inv_k = 1.0 / rows.shape[0]
        for _ in range(self.iters):
            acc.fill(0.0)
            for row in rows:
                np.subtract(row, v, out=diff)
                norm = float(np.linalg.norm(diff))
                if norm > self.tau:
                    np.multiply(diff, self.tau / norm, out=diff)
                np.add(acc, diff, out=acc)
            np.multiply(acc, inv_k, out=acc)
            np.add(v, acc, out=v)
        return vcasgd_merge(
            server,
            v,
            self.schedule.alpha_at(epoch),
            out=out,
            scratch=diff,
        )

    def describe(self) -> str:
        return (
            f"CenteredClip(tau={self.tau:g}, iters={self.iters}, "
            f"w={self.window}, {self.schedule.describe()})"
        )

    def merge_weight(self, epoch: int) -> float | None:
        return float(self.schedule.alpha_at(epoch))


# -- factory (CLI / sweep surface) ------------------------------------------

RULE_NAMES = (
    "vcasgd",
    "downpour",
    "easgd",
    "dcasgd",
    "rescaled",
    "allreduce",
    "median",
    "centeredclip",
)


def make_rule(
    name: str, alpha_schedule: AlphaSchedule | None = None, **kwargs
) -> UpdateRule:
    """Build an update rule from its CLI name.

    ``alpha_schedule`` is consumed by ``vcasgd`` only (defaulting to the
    paper's Var schedule); ``kwargs`` pass through to the rule constructor.
    """
    key = name.strip().lower().replace("-", "").replace("_", "")
    if key == "vcasgd":
        return VCASGDRule(alpha_schedule or VarAlpha(), **kwargs)
    if key in ("median", "coordmedian"):
        return CoordMedianRule(alpha_schedule or VarAlpha(), **kwargs)
    if key in ("centeredclip", "cclip"):
        return CenteredClipRule(alpha_schedule or VarAlpha(), **kwargs)
    if key == "easgd" and alpha_schedule is not None and not kwargs:
        # The paper reads alpha=0.999 as EASGD beta=0.001; honour a constant
        # alpha by translating it to the moving rate.
        if isinstance(alpha_schedule, ConstantAlpha) and alpha_schedule.alpha < 1.0:
            return EASGDRule(moving_rate=1.0 - alpha_schedule.alpha)
    builders = {
        "downpour": DownpourRule,
        "easgd": EASGDRule,
        "dcasgd": DCASGDRule,
        "rescaled": RescaledASGDRule,
        "rescaledasgd": RescaledASGDRule,
        "allreduce": SyncAllReduceRule,
        "syncallreduce": SyncAllReduceRule,
    }
    try:
        return builders[key](**kwargs)
    except KeyError:
        raise ConfigurationError(
            f"unknown update rule {name!r}; expected one of {', '.join(RULE_NAMES)}"
        ) from None
