"""VC-ASGD: the paper's asynchronous parameter-update scheme (§III-C).

On every client result the parameter server immediately applies

    W_s ← α·W_s + (1 − α)·W_{c_i,j}                               (Eq. 1)

regardless of arrival order, never waiting for stragglers — which is what
makes the scheme fault tolerant.  Unrolling Eq. 1 over the ``n_t`` results
of an epoch gives the epoch recursion the paper states as Eq. 2:

    W_{s,e} = α^{n_t}·W_{s,e−1} + (1 − α)·Σ_j α^{j−1}·W_{c, n_t−j+1}

(the later a result arrives, the less it is discounted).  α may vary with
the epoch; the paper's "Var" experiment uses α_e = e/(e+1), rising from
0.5 towards 1 like an inverse learning-rate schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "AlphaSchedule",
    "ConstantAlpha",
    "VarAlpha",
    "LinearAlpha",
    "CallableAlpha",
    "vcasgd_merge",
    "epoch_recursion",
]


class AlphaSchedule:
    """Maps an epoch number (1-based, as in the paper) to α ∈ (0, 1]."""

    def alpha_at(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def _validate_epoch(self, epoch: int) -> None:
        if epoch < 1:
            raise ConfigurationError(f"epoch must be >= 1, got {epoch}")

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class ConstantAlpha(AlphaSchedule):
    """Fixed α (the paper's 0.7 / 0.95 / 0.999 experiments)."""

    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")

    def alpha_at(self, epoch: int) -> float:
        """α for the given 1-based epoch."""
        self._validate_epoch(epoch)
        return self.alpha

    def describe(self) -> str:
        """Short label used in run names and tables."""
        return f"alpha={self.alpha}"


@dataclass(frozen=True)
class VarAlpha(AlphaSchedule):
    """The paper's epoch-varying schedule: α_e = e / (e + 1).

    Rises from 0.5 (epoch 1) to ~0.98 (epoch 40): aggressive learning from
    clients early, stability late — "analogous to learning-rate scheduling".
    """

    def alpha_at(self, epoch: int) -> float:
        self._validate_epoch(epoch)
        return epoch / (epoch + 1.0)

    def describe(self) -> str:
        return "alpha=e/(e+1)"


@dataclass(frozen=True)
class LinearAlpha(AlphaSchedule):
    """Linear ramp from ``start`` to ``end`` over ``num_epochs`` epochs."""

    start: float
    end: float
    num_epochs: int

    def __post_init__(self) -> None:
        for a in (self.start, self.end):
            if not 0.0 < a <= 1.0:
                raise ConfigurationError(f"alpha endpoints must be in (0, 1], got {a}")
        if self.num_epochs < 1:
            raise ConfigurationError("num_epochs must be >= 1")

    def alpha_at(self, epoch: int) -> float:
        self._validate_epoch(epoch)
        if self.num_epochs == 1:
            return self.end
        frac = min(epoch - 1, self.num_epochs - 1) / (self.num_epochs - 1)
        return self.start + (self.end - self.start) * frac

    def describe(self) -> str:
        return f"alpha={self.start}->{self.end}"


class CallableAlpha(AlphaSchedule):
    """Wrap an arbitrary ``epoch -> alpha`` function."""

    def __init__(self, fn: Callable[[int], float], label: str = "custom") -> None:
        self.fn = fn
        self.label = label

    def alpha_at(self, epoch: int) -> float:
        self._validate_epoch(epoch)
        alpha = float(self.fn(epoch))
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"schedule produced alpha={alpha} at epoch {epoch}")
        return alpha

    def describe(self) -> str:
        return self.label


def vcasgd_merge(
    server: np.ndarray,
    client: np.ndarray,
    alpha: float,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Apply Eq. 1: ``out = α·server + (1−α)·client``.

    Vectorized BLAS-1; with ``out=server`` the merge is fully in place
    (the hot path at the parameter server — ~5M scalars per update in the
    paper's setup).  Passing ``scratch`` (same shape, aliasing nothing)
    eliminates the last temporary: the merge then allocates nothing at
    all.  Results are bit-identical either way — the same two multiplies
    and one add in the same order.
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    if server.shape != client.shape:
        raise ConfigurationError(
            f"parameter shape mismatch: server {server.shape} vs client {client.shape}"
        )
    if out is None:
        out = np.empty_like(server)
    np.multiply(server, alpha, out=out)
    # out += (1 - alpha) * client, without allocating (1-alpha)*client:
    scaled = np.multiply(client, 1.0 - alpha, out=scratch)
    out += scaled
    return out


def epoch_recursion(
    server_prev: np.ndarray, client_updates: Sequence[np.ndarray], alpha: float
) -> np.ndarray:
    """Closed-form Eq. 2: the server copy after assimilating ``n_t`` results.

    ``client_updates`` are in arrival order.  Used by tests to prove the
    sequential Eq. 1 application equals the paper's unrolled form.
    """
    n_t = len(client_updates)
    result = (alpha**n_t) * np.asarray(server_prev, dtype=np.float64)
    for j, update in enumerate(client_updates):
        # The j-th arrival (0-based) is discounted by the (n_t - 1 - j)
        # merges that follow it.
        result += (1.0 - alpha) * (alpha ** (n_t - 1 - j)) * np.asarray(update)
    return result
