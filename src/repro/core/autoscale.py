"""Dynamic parameter-server scaling (§III-D).

The paper: "our idea is to allow the system to dynamically vary the number
of parameter servers based on the number of jobs and clients" — motivated
by users finding the PS-to-client ratio hard to pick (Horovod's critique of
the parameter-server model).

:class:`AutoscalingPool` extends the fixed pool with a queue-pressure
controller:

* **scale up** when the backlog per worker exceeds ``up_threshold``
  (results are arriving faster than the pool drains them — the Fig. 3
  P1-at-T8 regime), up to ``max_servers``;
* **scale down** when the pool has been idle-ish for a while
  (``down_idle_s`` with backlog below ``down_threshold`` per worker),
  down to ``min_servers``.

Scaling events are traced, so experiments can plot worker count over time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .param_server import ParameterServerPool

__all__ = ["AutoscalePolicy", "AutoscalingPool"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Controller settings for the autoscaling pool."""

    min_servers: int = 1
    max_servers: int = 8
    up_threshold: float = 2.0  # backlog per worker that triggers scale-up
    down_threshold: float = 0.25  # backlog per worker allowing scale-down
    down_idle_s: float = 120.0  # sustained low pressure before scale-down
    cooldown_s: float = 30.0  # minimum time between scaling actions

    def __post_init__(self) -> None:
        if not 1 <= self.min_servers <= self.max_servers:
            raise ConfigurationError(
                f"need 1 <= min_servers <= max_servers, got "
                f"{self.min_servers}..{self.max_servers}"
            )
        if self.up_threshold <= self.down_threshold:
            raise ConfigurationError("up_threshold must exceed down_threshold")
        if self.cooldown_s < 0 or self.down_idle_s < 0:
            raise ConfigurationError("timing parameters must be non-negative")


class AutoscalingPool(ParameterServerPool):
    """Parameter-server pool whose worker count follows queue pressure."""

    def __init__(self, *args, policy: AutoscalePolicy | None = None, **kwargs) -> None:
        policy = policy or AutoscalePolicy()
        kwargs.setdefault("num_servers", policy.min_servers)
        super().__init__(*args, **kwargs)
        self.policy = policy
        if not policy.min_servers <= self.num_servers <= policy.max_servers:
            raise ConfigurationError(
                f"initial num_servers={self.num_servers} outside policy range"
            )
        self.scale_ups = 0
        self.scale_downs = 0
        self._last_scale_time = -float("inf")
        self._low_pressure_since: float | None = None

    # -- hook into the queue lifecycle ---------------------------------------
    def assimilate(self, workunit, payload, on_done) -> None:
        super().assimilate(workunit, payload, on_done)
        self._evaluate()

    def _dispatch(self) -> None:
        super()._dispatch()
        self._evaluate()

    # -- controller ----------------------------------------------------------------
    def _pressure(self) -> float:
        """Backlog (queued + in service) per worker."""
        return (self.queue_depth() + self.busy_workers) / self.num_servers

    def _evaluate(self) -> None:
        now = self.sim.now
        pressure = self._pressure()
        policy = self.policy

        # Track how long pressure has been low (for scale-down).
        if pressure <= policy.down_threshold:
            if self._low_pressure_since is None:
                self._low_pressure_since = now
        else:
            self._low_pressure_since = None

        if now - self._last_scale_time < policy.cooldown_s:
            return

        if pressure >= policy.up_threshold and self.num_servers < policy.max_servers:
            self.num_servers += 1
            self.scale_ups += 1
            self._last_scale_time = now
            if self.trace is not None:
                self.trace.emit(
                    now, "ps.scale_up", workers=self.num_servers, pressure=pressure
                )
            super()._dispatch()  # the new worker can start immediately
        elif (
            self._low_pressure_since is not None
            and now - self._low_pressure_since >= policy.down_idle_s
            and self.num_servers > policy.min_servers
        ):
            self.num_servers -= 1
            self.scale_downs += 1
            self._last_scale_time = now
            self._low_pressure_since = now  # restart the idle clock
            if self.trace is not None:
                self.trace.emit(
                    now, "ps.scale_down", workers=self.num_servers, pressure=pressure
                )
