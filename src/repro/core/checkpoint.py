"""Training-job checkpointing: survive *server* failure.

§II-B notes that TensorFlow's parameter-server strategy "is not fault
tolerant against failure of the centralized server".  In the paper's
design the server parameter copy lives in a database, so a restarted
server can resume the job.  This module makes that concrete: a
:class:`Checkpoint` captures the server parameter vector, the completed
epoch count, the elapsed simulated time, the per-epoch history, the
parameter-publish counter, and the update rule's internal state (DC-ASGD
delay-compensation backups, sync-round counters — see
:meth:`repro.core.rules.UpdateRule.state_dict`); a new
:class:`~repro.core.runner.DistributedRunner` can resume from it with the
rule exactly where it left off.

Checkpoints serialize to a single ``.npz`` file (the same codec the
parameter files use) wrapped in an integrity envelope, and the file
write is **crash-consistent**: the blob carries a format version and a
BLAKE2 digest that is verified on load (torn or bit-flipped files raise
:class:`~repro.errors.CheckpointError` instead of half-loading), and
:func:`save_checkpoint` writes to a temp file and atomically renames it
so a crash mid-write can never destroy the previous good checkpoint.
Envelope-less blobs from older versions still load.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import CheckpointError, SerializationError, TrainingError
from .results import EpochRecord, RunResult

__all__ = ["Checkpoint", "save_checkpoint", "load_checkpoint"]

# Integrity envelope: MAGIC + 1-byte format version + 16-byte BLAKE2b
# digest of the payload, then the npz payload itself.
_MAGIC = b"RPROCKPT"
_FORMAT_VERSION = 1
_DIGEST_SIZE = 16


def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()

_RECORD_FIELDS = (
    "epoch",
    "end_time_s",
    "val_accuracy_mean",
    "val_accuracy_min",
    "val_accuracy_max",
    "test_accuracy",
    "alpha",
    "assimilations",
    "timeouts_so_far",
    "lost_updates_so_far",
)


@dataclass(frozen=True)
class Checkpoint:
    """Resumable snapshot of a distributed training job."""

    params: np.ndarray  # flat server parameter vector
    epochs_completed: int
    elapsed_s: float
    label: str = ""
    history: tuple[EpochRecord, ...] = field(default_factory=tuple)
    # Update-rule internals (see UpdateRule.state_dict) and the parameter
    # publish counter, so staleness/delay bookkeeping survives a restart.
    rule_state: dict[str, np.ndarray] = field(default_factory=dict)
    publish_count: int = 0
    # Codec-plane internals (per-client error-feedback residuals — see
    # ParamCodecPlane.state_dict): a resumed lossy-codec run carries the
    # exact residual mass its clients had accumulated.  Empty for
    # codec-free runs and for blobs written before the codec plane.
    codec_state: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.epochs_completed < 0 or self.elapsed_s < 0:
            raise TrainingError("checkpoint with negative progress")
        if np.asarray(self.params).ndim != 1:
            raise TrainingError("checkpoint params must be a flat vector")
        if self.publish_count < 0:
            raise TrainingError("checkpoint with negative publish count")

    @staticmethod
    def from_result(
        result: RunResult,
        params: np.ndarray,
        rule_state: dict[str, np.ndarray] | None = None,
        publish_count: int = 0,
        codec_state: dict[str, np.ndarray] | None = None,
    ) -> "Checkpoint":
        """Snapshot the end state of a (possibly partial) run.

        ``np.array`` copies exactly once (``asarray(...).copy()`` would
        pay a second full-vector copy when dtype conversion already made
        one); the checkpoint must own its vector so later server merges
        cannot mutate history.
        """
        return Checkpoint(
            params=np.array(params, dtype=np.float64),
            epochs_completed=len(result.epochs),
            elapsed_s=result.total_time_s,
            label=result.label,
            history=tuple(result.epochs),
            rule_state=dict(rule_state or {}),
            publish_count=publish_count,
            codec_state=dict(codec_state or {}),
        )

    def seed_result(self) -> RunResult:
        """A RunResult pre-populated with the checkpointed history."""
        result = RunResult(label=self.label)
        for record in self.history:
            result.append(record)
        return result

    # -- serialization --------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to a digest-protected compressed ``.npz`` byte blob."""
        payload = self._payload_bytes()
        header = _MAGIC + bytes([_FORMAT_VERSION]) + _digest(payload)
        return header + payload

    def _payload_bytes(self) -> bytes:
        meta = {
            "epochs_completed": self.epochs_completed,
            "elapsed_s": self.elapsed_s,
            "label": self.label,
            "publish_count": self.publish_count,
        }
        columns = {
            f"history_{name}": np.asarray(
                [getattr(rec, name) for rec in self.history]
            )
            for name in _RECORD_FIELDS
        }
        columns.update(
            {f"rule__{key}": np.asarray(value) for key, value in self.rule_state.items()}
        )
        columns.update(
            {
                f"codec__{key}": np.asarray(value)
                for key, value in self.codec_state.items()
            }
        )
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            params=self.params,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **columns,
        )
        return buf.getvalue()

    @staticmethod
    def from_bytes(blob: bytes) -> "Checkpoint":
        """Inverse of :meth:`to_bytes`; verifies the integrity envelope.

        Enveloped blobs are digest-checked before any field is decoded, so
        a torn write or bit flip raises :class:`CheckpointError` rather
        than yielding a half-loaded checkpoint.  Blobs without the magic
        header are treated as legacy raw ``.npz`` checkpoints.
        """
        if blob.startswith(_MAGIC):
            header_len = len(_MAGIC) + 1 + _DIGEST_SIZE
            if len(blob) < header_len:
                raise CheckpointError(
                    "checkpoint truncated inside its integrity header"
                )
            version = blob[len(_MAGIC)]
            if version != _FORMAT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint format version {version} "
                    f"(this build reads version {_FORMAT_VERSION})"
                )
            stored = blob[len(_MAGIC) + 1 : header_len]
            payload = blob[header_len:]
            if _digest(payload) != stored:
                raise CheckpointError(
                    "checkpoint digest mismatch: file is corrupt or was "
                    "torn mid-write; refusing to load it"
                )
            blob = payload
        try:
            with np.load(io.BytesIO(blob)) as archive:
                meta = json.loads(archive["meta"].tobytes().decode())
                n = len(archive["history_epoch"])
                history = tuple(
                    EpochRecord(
                        **{
                            name: (
                                int(archive[f"history_{name}"][i])
                                if name
                                in (
                                    "epoch",
                                    "assimilations",
                                    "timeouts_so_far",
                                    "lost_updates_so_far",
                                )
                                else float(archive[f"history_{name}"][i])
                            )
                            for name in _RECORD_FIELDS
                        }
                    )
                    for i in range(n)
                )
                rule_state = {
                    name[len("rule__"):]: archive[name].copy()
                    for name in archive.files
                    if name.startswith("rule__")
                }
                codec_state = {
                    name[len("codec__"):]: archive[name].copy()
                    for name in archive.files
                    if name.startswith("codec__")
                }
                return Checkpoint(
                    params=archive["params"].copy(),
                    epochs_completed=meta["epochs_completed"],
                    elapsed_s=meta["elapsed_s"],
                    label=meta["label"],
                    history=history,
                    rule_state=rule_state,
                    publish_count=meta.get("publish_count", 0),
                    codec_state=codec_state,
                )
        except TrainingError:
            raise
        except Exception as exc:
            raise SerializationError(f"cannot decode checkpoint: {exc}") from exc


def save_checkpoint(path: str | pathlib.Path, checkpoint: Checkpoint) -> None:
    """Atomically write a checkpoint file.

    The blob lands in a sibling temp file first and is renamed into place
    (``os.replace``), so a crash mid-write leaves either the old good file
    or the new one — never a torn hybrid.
    """
    target = pathlib.Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(checkpoint.to_bytes())
    os.replace(tmp, target)


def load_checkpoint(path: str | pathlib.Path) -> Checkpoint:
    """Read and verify a checkpoint file."""
    return Checkpoint.from_bytes(pathlib.Path(path).read_bytes())
