"""Client local-training steps as schedulable units of compute.

The runner historically trained inline inside the client's executor
callback: one model, one shard, one optimizer loop per call.  This module
lifts that loop into free functions and a :class:`StepDispatcher` so the
same numerics can run three ways — inline (the legacy path), fused across
a cohort of clients (:mod:`repro.nn.cohort` stacked kernels), or fanned
out across worker processes reading published parameters from the
shared-memory plane (:class:`repro.core.parallel.SharedParameterPlane`).

Determinism is the load-bearing wall.  Simulated *time* never depends on
where compute runs (durations come from work units, not wall clock), and
the *numbers* are kept bit-identical by two rules:

* every RNG draw happens at submit time, in the serial schedule's order —
  :func:`draw_batch_orders` pre-draws the per-epoch batch permutations
  from the same stream the legacy ``BatchLoader`` consumed, so deferring
  the (RNG-free) compute moves no draw;
* deferred execution is *value-lazy, schedule-eager*: the dispatcher
  batches submitted steps and computes them at first resolve, which the
  client triggers when its upload is accepted — before any consumer reads
  the payload.

Clients whose upload is perturbed by state that depends on the trained
result (corrupt-designated clients, adversary-compromised clients) are
never deferred; the runner keeps them on the inline path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..errors import ConfigurationError, SimulationError
from ..nn.cohort import CohortTrainer, CohortUnsupported
from ..nn.layers import Module
from ..nn.losses import cross_entropy
from ..nn.models import build_model
from ..nn.optim import SGD, Adam
from ..nn.serialization import GradientAccumulator, StateLayout
from ..nn.tensor import Tensor
from .parallel import AttachedPlane, SharedParameterPlane, _pool_context
from .rules import ClientUpdate

if TYPE_CHECKING:
    from .job import LocalTrainingConfig

__all__ = [
    "draw_batch_orders",
    "run_local_step",
    "StepTask",
    "DeferredUpdate",
    "StepDispatcher",
]


def draw_batch_orders(
    rng: np.random.Generator, n: int, epochs: int
) -> list[np.ndarray]:
    """Pre-draw the per-epoch batch permutations for one subtask.

    One ``rng.permutation(n)`` per local epoch — the exact draws, in the
    exact order, that ``BatchLoader.__iter__`` makes lazily on the serial
    path.  Nothing else consumes the per-subtask batch stream, so drawing
    upfront is stream-for-stream identical.
    """
    return [rng.permutation(n) for _ in range(epochs)]


def run_local_step(
    model: Module,
    state_arrays: dict[str, np.ndarray],
    layout: StateLayout,
    base_vec: np.ndarray,
    shard: Dataset,
    orders: Sequence[np.ndarray],
    *,
    batch_size: int,
    optimizer: str,
    learning_rate: float,
    collect_gradient: bool,
) -> tuple[np.ndarray, np.ndarray | None]:
    """One client's full local-training subtask, RNG-free.

    Loads ``base_vec`` into the model's live arrays, runs
    ``len(orders)`` epochs of mini-batch training with the pre-drawn
    batch orders (mirroring ``BatchLoader``'s ``order[start:start+bs]``
    slicing, including the short final batch), and packs the trained
    state back into a fresh flat vector.  Returns ``(new_vec, gradient)``
    where ``gradient`` is the accumulated local gradient when
    ``collect_gradient`` (rules like Downpour) and None otherwise.
    """
    layout.unpack_into(base_vec, state_arrays)
    model.train()
    if optimizer == "adam":
        opt = Adam(model.parameters(), lr=learning_rate)
    else:
        opt = SGD(model.parameters(), lr=learning_rate)
    accumulator = GradientAccumulator(state_arrays) if collect_gradient else None
    n = len(shard)
    for order in orders:
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            model.zero_grad()
            loss = cross_entropy(model(Tensor(shard.x[idx])), shard.y[idx])
            loss.backward()
            if accumulator is not None:
                accumulator.add(
                    {name: p.grad for name, p in model.named_parameters()}
                )
            opt.step()
    new_vec = layout.pack(state_arrays)
    gradient = None if accumulator is None else accumulator.total
    return new_vec, gradient


class StepTask:
    """One submitted-but-not-yet-computed client training step."""

    __slots__ = ("base_vec", "shard_index", "orders", "result")

    def __init__(
        self,
        base_vec: np.ndarray,
        shard_index: int,
        orders: list[np.ndarray],
    ) -> None:
        self.base_vec = base_vec
        self.shard_index = shard_index
        self.orders = orders
        self.result: tuple[np.ndarray, np.ndarray | None] | None = None


class DeferredUpdate:
    """Lazy stand-in for a :class:`ClientUpdate` travelling as upload payload.

    The client daemon duck-types on ``resolve_update`` right after the
    scheduler accepts the upload — before validation or assimilation ever
    look inside — and swaps in the real :class:`ClientUpdate`.  Upload
    retries reuse the same payload object, so the handle survives them.
    """

    __slots__ = ("_dispatcher", "_task", "client_id", "base_version")

    def __init__(
        self,
        dispatcher: "StepDispatcher",
        task: StepTask,
        client_id: str,
        base_version: int,
    ) -> None:
        self._dispatcher = dispatcher
        self._task = task
        self.client_id = client_id
        self.base_version = base_version

    def resolve_update(self) -> ClientUpdate:
        new_vec, gradient = self._dispatcher.resolve(self._task)
        return ClientUpdate(
            client_id=self.client_id,
            params=new_vec,
            gradient=gradient,
            base_version=self.base_version,
            claimed_credit=None,
        )


class _StepContext:
    """Everything one process needs to execute grouped local steps.

    Owns a template model (weights are always overwritten from the base
    vector before use, so its init RNG is immaterial), the flat layout,
    and a cache of :class:`CohortTrainer` instances keyed by group size.
    Lives once in the dispatcher for in-process execution and once per
    pool worker (built by :func:`_pool_init`).
    """

    def __init__(
        self,
        template: Module,
        shards: Sequence[Dataset],
        batch_size: int,
        optimizer: str,
        learning_rate: float,
        collect_gradient: bool,
    ) -> None:
        self.template = template
        self.shards = list(shards)
        self.batch_size = batch_size
        self.optimizer = optimizer
        self.learning_rate = learning_rate
        self.collect_gradient = collect_gradient
        self.layout = StateLayout.for_state(template.state_dict())
        self.state_arrays = template.state_arrays()
        self._trainers: dict[int, CohortTrainer] = {}
        # Architecture is fixed per job: one CohortUnsupported means every
        # group of every size falls back to the serial member loop.
        self.cohort_ok = True

    def _trainer(self, group: int) -> CohortTrainer | None:
        if not self.cohort_ok:
            return None
        trainer = self._trainers.get(group)
        if trainer is None:
            try:
                trainer = CohortTrainer(self.template, group)
            except CohortUnsupported:
                self.cohort_ok = False
                return None
            self._trainers[group] = trainer
        return trainer

    def run_group(
        self,
        base_vec: np.ndarray,
        shard_indexes: Sequence[int],
        orders_list: Sequence[list[np.ndarray]],
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Execute a homogeneous group of steps sharing one base vector.

        Groups of size > 1 run through the stacked cohort kernels when
        the architecture supports them (bit-identical per member);
        otherwise — and always for singleton groups — through the serial
        per-member loop.
        """
        group = len(shard_indexes)
        shards = [self.shards[i] for i in shard_indexes]
        local_epochs = len(orders_list[0])
        if group > 1:
            trainer = self._trainer(group)
            if trainer is not None:
                base_vecs = np.broadcast_to(
                    base_vec, (group, self.layout.total_size)
                )
                packed, totals = trainer.run(
                    base_vecs,
                    shards,
                    list(orders_list),
                    batch_size=self.batch_size,
                    optimizer=self.optimizer,
                    learning_rate=self.learning_rate,
                    local_epochs=local_epochs,
                    collect_gradient=self.collect_gradient,
                )
                return [
                    (
                        packed[g].copy(),
                        None if totals is None else totals[g].copy(),
                    )
                    for g in range(group)
                ]
        return [
            run_local_step(
                self.template,
                self.state_arrays,
                self.layout,
                base_vec,
                shard,
                orders,
                batch_size=self.batch_size,
                optimizer=self.optimizer,
                learning_rate=self.learning_rate,
                collect_gradient=self.collect_gradient,
            )
            for shard, orders in zip(shards, orders_list)
        ]


# ---------------------------------------------------------------------------
# Pool worker plumbing (module level so it pickles under any start method)
# ---------------------------------------------------------------------------

_WORKER_CONTEXT: _StepContext | None = None
_WORKER_PLANE: AttachedPlane | None = None


def _pool_init(
    plane_handle,
    model_spec,
    shards,
    batch_size,
    optimizer,
    learning_rate,
    collect_gradient,
) -> None:
    """Worker start-up: attach the parameter plane, build the step context."""
    global _WORKER_CONTEXT, _WORKER_PLANE
    _WORKER_PLANE = plane_handle.attach()
    template = build_model(model_spec, np.random.default_rng(0))
    _WORKER_CONTEXT = _StepContext(
        template,
        shards,
        batch_size=batch_size,
        optimizer=optimizer,
        learning_rate=learning_rate,
        collect_gradient=collect_gradient,
    )


def _pool_run_group(
    slot: int,
    shard_indexes: list[int],
    orders_list: list[list[np.ndarray]],
) -> list[tuple[np.ndarray, np.ndarray | None]]:
    """Worker body: run one group against a read-only plane slot.

    The task payload is a slot number plus batch orders — the full
    parameter state arrives through the shared-memory mapping, never
    through pickle.
    """
    assert _WORKER_CONTEXT is not None and _WORKER_PLANE is not None
    return _WORKER_CONTEXT.run_group(
        _WORKER_PLANE.view(slot), shard_indexes, orders_list
    )


class StepDispatcher:
    """Batches deferred client steps into cohorts and process fan-out.

    Submitted tasks accumulate until the first :meth:`resolve` (the
    simulation's first accepted upload whose payload is still pending) and
    are then flushed together: grouped by (base parameter version, shard
    length), chunked to ``cohort_size``, and executed either in-process or
    across a fork pool of ``jobs`` workers that read the base parameters
    from a :class:`SharedParameterPlane`.

    Everything here is wall-clock machinery; nothing touches simulated
    time, counters, traces or RNG — which is what keeps every enabled
    combination byte-identical to the serial run.
    """

    def __init__(
        self,
        model_spec,
        shards: Sequence[Dataset],
        local: "LocalTrainingConfig",
        collect_gradient: bool,
        cohort_size: int = 1,
        jobs: int = 1,
        plane_slots: int = 16,
    ) -> None:
        if cohort_size < 1:
            raise ConfigurationError(f"cohort_size must be >= 1, got {cohort_size}")
        if jobs < 1:
            raise ConfigurationError(f"step_jobs must be >= 1, got {jobs}")
        self.model_spec = model_spec
        self.shards = list(shards)
        self.local = local
        self.collect_gradient = collect_gradient
        self.cohort_size = cohort_size
        self.jobs = jobs
        self.plane_slots = plane_slots
        self._pending: list[StepTask] = []
        self._context: _StepContext | None = None
        self._pool = None
        self._plane: SharedParameterPlane | None = None
        # Wall-clock-side stats, deliberately kept out of RunResult
        # counters and the trace (both are digest material).
        self.stats = {
            "tasks": 0,
            "flushes": 0,
            "max_flush": 0,
            "cohort_groups": 0,
            "cohort_members": 0,
            "singleton_members": 0,
            "pool_groups": 0,
        }

    # -- submit / resolve ----------------------------------------------
    def submit(
        self,
        base_vec: np.ndarray,
        shard_index: int,
        orders: list[np.ndarray],
    ) -> StepTask:
        """Queue one step; the task pins ``base_vec`` until computed."""
        task = StepTask(base_vec, shard_index, orders)
        self._pending.append(task)
        self.stats["tasks"] += 1
        return task

    def resolve(self, task: StepTask) -> tuple[np.ndarray, np.ndarray | None]:
        """Return the task's result, computing pending work if needed.

        With process fan-out the whole pending batch flushes at once (the
        pool eats the chunks concurrently); in-process only the chunk
        containing ``task`` runs, so tasks whose uploads are still in
        flight stay pending and keep gathering cohort mates.
        """
        if task.result is None:
            if self.jobs > 1:
                self._flush()
            else:
                self._flush_chunk_for(task)
        if task.result is None:
            raise SimulationError(
                "step task resolved without a result; it was not pending "
                "in this dispatcher"
            )
        return task.result

    def discard(self, task: StepTask) -> None:
        """Forget a still-pending task (its attempt aborted mid-compute)."""
        self._pending = [t for t in self._pending if t is not task]

    # -- execution ------------------------------------------------------
    def _ensure_context(self) -> _StepContext:
        if self._context is None:
            template = build_model(self.model_spec, np.random.default_rng(0))
            self._context = _StepContext(
                template,
                self.shards,
                batch_size=self.local.batch_size,
                optimizer=self.local.optimizer,
                learning_rate=self.local.learning_rate,
                collect_gradient=self.collect_gradient,
            )
        return self._context

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            if self._plane is None:
                layout = self._ensure_context().layout
                self._plane = SharedParameterPlane(
                    slot_size=layout.total_size, slots=self.plane_slots
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=_pool_context(),
                initializer=_pool_init,
                initargs=(
                    self._plane.handle(),
                    self.model_spec,
                    self.shards,
                    self.local.batch_size,
                    self.local.optimizer,
                    self.local.learning_rate,
                    self.collect_gradient,
                ),
            )
        return self._pool

    def _group_key(self, task: StepTask) -> tuple[int, int]:
        # Cohort members must share the exact base vector and batch
        # geometry.  The tasks themselves pin the base arrays, so id() is
        # collision-free while a task is pending.
        return (id(task.base_vec), len(self.shards[task.shard_index]))

    def _flush_chunk_for(self, target: StepTask) -> None:
        """Compute only the chunk containing ``target`` (in-process path)."""
        key = self._group_key(target)
        mates = [t for t in self._pending if self._group_key(t) == key]
        index = mates.index(target)
        start = (index // self.cohort_size) * self.cohort_size
        chunk = mates[start : start + self.cohort_size]
        self.stats["flushes"] += 1
        self.stats["max_flush"] = max(self.stats["max_flush"], len(chunk))
        self._run_chunks_inprocess([chunk])
        done = set(map(id, chunk))
        self._pending = [t for t in self._pending if id(t) not in done]

    def _flush(self) -> None:
        pending, self._pending = self._pending, []
        if not pending:
            return
        self.stats["flushes"] += 1
        self.stats["max_flush"] = max(self.stats["max_flush"], len(pending))
        groups: dict[tuple[int, int], list[StepTask]] = {}
        for task in pending:
            groups.setdefault(self._group_key(task), []).append(task)
        chunks: list[list[StepTask]] = []
        for tasks in groups.values():
            for i in range(0, len(tasks), self.cohort_size):
                chunks.append(tasks[i : i + self.cohort_size])
        if self.jobs > 1 and len(chunks) > 1:
            self._count_chunks(chunks)
            self._run_chunks_pool(chunks)
        else:
            self._run_chunks_inprocess(chunks)

    def _count_chunks(self, chunks: list[list[StepTask]]) -> None:
        for chunk in chunks:
            if len(chunk) > 1:
                self.stats["cohort_groups"] += 1
                self.stats["cohort_members"] += len(chunk)
            else:
                self.stats["singleton_members"] += 1

    def _run_chunks_inprocess(self, chunks: list[list[StepTask]]) -> None:
        self._count_chunks(chunks)
        context = self._ensure_context()
        for chunk in chunks:
            results = context.run_group(
                chunk[0].base_vec,
                [t.shard_index for t in chunk],
                [t.orders for t in chunk],
            )
            for task, result in zip(chunk, results):
                task.result = result

    def _run_chunks_pool(self, chunks: list[list[StepTask]]) -> None:
        """Fan chunks out across the pool in plane-slot-bounded waves.

        Each distinct base vector is written to one plane slot per wave;
        a slot is never rewritten while a future of the current wave may
        still read it (the wave drains first).
        """
        pool = self._ensure_pool()
        plane = self._plane
        assert plane is not None
        wave: list[tuple[object, list[StepTask]]] = []
        slot_of: dict[int, int] = {}

        def drain() -> None:
            for future, tasks in wave:
                results = future.result()
                for task, result in zip(tasks, results):
                    task.result = result
            wave.clear()
            slot_of.clear()

        for chunk in chunks:
            base = chunk[0].base_vec
            key = id(base)
            if key not in slot_of:
                if len(slot_of) >= plane.slots:
                    drain()
                slot = len(slot_of)
                plane.write(slot, base)
                slot_of[key] = slot
            future = pool.submit(
                _pool_run_group,
                slot_of[key],
                [t.shard_index for t in chunk],
                [t.orders for t in chunk],
            )
            self.stats["pool_groups"] += 1
            wave.append((future, chunk))
        drain()

    # -- lifecycle ------------------------------------------------------
    def shutdown(self) -> None:
        """Drop pending work, stop workers, destroy the plane segment."""
        self._pending.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._plane is not None:
            self._plane.unlink()
            self._plane = None
