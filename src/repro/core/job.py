"""Training-job configuration: everything that defines one experiment.

The paper's experiment identifiers — ``PnCnTn`` plus the α setting — map
directly onto fields here (``num_param_servers``, ``num_clients``,
``max_concurrent_subtasks``, ``alpha_schedule``).  The remaining fields
pin down the substrate: model, data, client-side optimizer, store choice,
fault model, and the timing calibration anchors from §IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..data.synthetic import SyntheticImageConfig
from ..errors import ConfigurationError
from ..nn.models import ModelSpec
from ..simulation.adversary import AdversaryPlan
from ..simulation.chaos import ChaosPlan
from ..simulation.resources import TABLE1_CLIENTS, TABLE1_SERVER, InstanceSpec
from .rules import UpdateRule, VCASGDRule
from .vcasgd import AlphaSchedule, ConstantAlpha

__all__ = ["LocalTrainingConfig", "FaultConfig", "TrainingJobConfig"]


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Client-side subtask training.

    The paper uses Adam at lr=0.001 on CIFAR10/ResNetV2; the defaults here
    are the recalibrated equivalents for the synthetic task (see
    EXPERIMENTS.md "calibration"): the same optimizer family, with the
    local pass sized so client copies visibly specialize to their shard —
    the dynamic §IV-C's α analysis depends on.
    """

    optimizer: str = "adam"  # "adam" | "sgd"
    learning_rate: float = 0.003
    local_epochs: int = 10
    batch_size: int = 20

    def __post_init__(self) -> None:
        if self.optimizer not in ("adam", "sgd"):
            raise ConfigurationError(f"unknown optimizer {self.optimizer!r}")
        if self.learning_rate <= 0 or self.local_epochs <= 0 or self.batch_size <= 0:
            raise ConfigurationError("invalid local training parameters")


@dataclass(frozen=True)
class FaultConfig:
    """Failure injection for the client fleet.

    ``preemption_hourly_p`` is the per-instance hourly interruption
    probability (0 disables preemption).  ``relaunch_delay_s`` models the
    fleet replacing a reclaimed instance (AWS spot fleet behaviour); set to
    None to let terminated clients stay dead.

    ``corrupt_clients`` marks the first N launched clients as *faulty or
    malicious*: their uploads are perturbed by noise of relative magnitude
    ``corruption_scale``.  Traditional VC systems cannot trust volunteer
    hosts (§II-A); the defences are the validator's sanity checks and — for
    subtle corruption — §II-C replication with quorum.
    """

    preemption_hourly_p: float = 0.0
    relaunch_delay_s: float | None = 120.0
    corrupt_clients: int = 0
    corruption_scale: float = 1.0
    # Volunteer churn (§II-A: "volunteers join and leave projects at
    # will"): Poisson arrivals of *additional* volunteer hosts, capped so
    # the fleet cannot grow without bound.
    volunteer_arrivals_per_hour: float = 0.0
    max_volunteers: int = 0
    # Layered chaos plan (see repro.simulation.chaos): per-transfer
    # failures/stalls, timed network partitions, parameter-server
    # crash/restart schedules, and KV-store outage windows.  None (or an
    # all-empty plan) leaves every layer healthy.
    chaos: ChaosPlan | None = None
    # Byzantine adversary plan (see repro.simulation.adversary): per-client
    # malicious behaviours — falsified uploads, gradient poisoning, claim
    # inflation, sybil fleets, colluding replicas.  None (or an empty plan)
    # keeps every client honest and the run bit-identical to a fabric-free
    # build.
    adversary: AdversaryPlan | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.preemption_hourly_p < 1.0:
            raise ConfigurationError("preemption_hourly_p must be in [0, 1)")
        if self.relaunch_delay_s is not None and self.relaunch_delay_s < 0:
            raise ConfigurationError("relaunch_delay_s must be non-negative")
        if self.corrupt_clients < 0 or self.corruption_scale < 0:
            raise ConfigurationError("invalid corruption parameters")
        if self.volunteer_arrivals_per_hour < 0 or self.max_volunteers < 0:
            raise ConfigurationError("invalid volunteer churn parameters")
        if self.chaos is not None and not isinstance(self.chaos, ChaosPlan):
            raise ConfigurationError(
                f"chaos must be a ChaosPlan or None, got {type(self.chaos).__name__}"
            )
        if self.adversary is not None and not isinstance(self.adversary, AdversaryPlan):
            raise ConfigurationError(
                f"adversary must be an AdversaryPlan or None, "
                f"got {type(self.adversary).__name__}"
            )


@dataclass(frozen=True)
class TrainingJobConfig:
    """Full specification of a distributed training experiment."""

    # -- the paper's headline knobs (Pn, Cn, Tn, alpha) --------------------
    num_param_servers: int = 1
    num_clients: int = 3
    max_concurrent_subtasks: int = 2
    alpha_schedule: AlphaSchedule = field(default_factory=lambda: ConstantAlpha(0.95))
    # Server-side merge rule.  None selects the paper's VC-ASGD (Eq. 1)
    # driven by ``alpha_schedule``; any other member of the ASGD family
    # (Downpour, EASGD, DC-ASGD, Rescaled ASGD, SyncAllReduce — see
    # repro.core.rules) runs on the identical BOINC substrate.  The runner
    # deep-copies the rule so stateful rules never leak across runs.
    update_rule: UpdateRule | None = None

    # -- workload -----------------------------------------------------------
    model: ModelSpec = field(
        default_factory=lambda: ModelSpec("mlp", {"in_features": 192, "hidden": [64], "num_classes": 10})
    )
    data: SyntheticImageConfig = field(default_factory=SyntheticImageConfig)
    num_train: int = 2000
    num_val: int = 400
    num_test: int = 400
    flat_features: bool = True
    num_shards: int = 50
    max_epochs: int = 40
    target_accuracy: float | None = None  # stop early once mean val acc >= this
    local_training: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    # Downpour-style warm starting (§II-B): serial synchronous passes over
    # the full training set on the server before distribution begins; the
    # time they take is charged to the simulated clock.
    warm_start_passes: int = 0

    # -- infrastructure ------------------------------------------------------
    server_spec: InstanceSpec = TABLE1_SERVER
    client_specs: tuple[InstanceSpec, ...] = TABLE1_CLIENTS
    store_kind: str = "eventual"  # "eventual" (Redis-like) | "strong" (MySQL-like)
    compression_enabled: bool = True
    sticky_files_enabled: bool = True
    # -- transfer codec plane (repro.nn.codecs / repro.core.codec_plane) ----
    # None keeps the historical fixed-ratio wire accounting, byte-identical
    # to pre-codec runs (golden-pinned).  A codec name turns on measured
    # wire sizes and — for lossy codecs — simulation-honest quantized
    # training: "zlib" (measured baseline), "fp16"/"int8" (quantization,
    # per-tensor scales), "topk" (upload sparsification with client-side
    # error feedback), "delta" (XOR chains against the client's cached
    # parameter version).
    codec: str | None = None
    codec_topk: float = 0.01  # kept fraction for the topk codec
    codec_quant: str = "fp32"  # topk value quantization: fp32 | fp16 | int8
    affinity_enabled: bool = True
    reliability_enabled: bool = True
    heartbeats_enabled: bool = False  # trickle progress reports
    # Time-varying WAN conditions (§II-A "variable network latency"): a
    # CongestionSchedule applied to every client link, or None for
    # stationary links.  See repro.simulation.congestion.
    congestion: object | None = None

    # -- timing calibration (§IV anchors) ---------------------------------------
    work_units_per_subtask: float = 144.0  # t_e ≈ 2.4 min on a reference core
    validation_work_units: float = 8.0  # server-side accuracy pass per update
    subtask_timeout_s: float = 300.0  # t_o = 5 min
    max_attempts: int = 5
    ps_effective_cores: int = 5  # §IV-B: server throughput flattens past P5
    val_eval_subsample: int = 256  # samples used for the per-update accuracy

    # -- fleet-scale scheduling core --------------------------------------------
    # Work-fetch protocol: "poke" is the legacy server broadcast on every
    # publish/timeout (bit-identical to pre-refactor runs); "ping" is the
    # fleet-scale ping + server-suggested-sleep contract, where idle
    # clients park on scheduler sleep hints and new work wakes O(work)
    # hosts instead of O(fleet).
    work_fetch: str = "poke"
    # Scheduler ready-queue implementation: "indexed" (O(1) amortized) or
    # "legacy" (the original full-scan list, kept as the equivalence
    # reference).  Grant order is identical by construction and by test.
    sched_queue_impl: str = "indexed"
    # Sharded server planes (§III-B scale-out): N work-generator/validator
    # shards partitioned by logical-workunit hash, with epoch cut-over
    # coordinated through the KV store.  1 keeps the single-plane path.
    server_planes: int = 1

    # -- multi-core execution plane (DESIGN.md §8.5) ----------------------------
    # Vectorized client cohorts: fuse up to N deferred client steps that
    # share a base parameter version into one stacked-NumPy training pass
    # (repro.nn.cohort), bit-identical to the serial per-client loop.
    # 1 keeps the fully inline legacy execution path.
    cohort_size: int = 1
    # Process fan-out for one run's client steps: deferred step groups run
    # on a fork pool of N workers reading published parameters from a
    # shared-memory plane (no per-step state pickling).  1 stays in-process.
    step_jobs: int = 1

    # -- dynamic parameter-server scaling (§III-D future design) ---------------
    # When True, num_param_servers is the *initial* worker count and the
    # pool grows/shrinks with queue pressure per `autoscale_policy`
    # (see repro.core.autoscale; None means the policy defaults).
    ps_autoscale: bool = False
    autoscale_policy: object | None = None

    # -- redundancy (§II-C: replication for verification) -----------------------
    # 1 disables replication; k>1 sends each subtask to k distinct hosts
    # and assimilates once `quorum` of them agree.
    replicas: int = 1
    quorum: int = 1

    # -- Byzantine defenses ------------------------------------------------------
    # Collusion-aware canonical selection: the quorum assimilator weighs
    # agreement cliques by the per-host scheduler reliability instead of
    # raw clique size, so a cartel of unreliable hosts submitting
    # bit-identical wrong answers cannot out-vote honest replicas.  Off by
    # default (bit-identical to the size-based selection).
    collusion_guard: bool = False
    # Quarantine loop: a host whose results are invalidated this many
    # times is barred from further work assignment (0 disables — the
    # pre-fabric behaviour, where validator rejects never touched
    # scheduler reliability).
    quarantine_after: int = 0
    # Validator parameter-norm bound: reject uploads whose parameter L2
    # norm exceeds this (None disables; the finite/peak checks always run).
    max_param_norm: float | None = None

    # -- fault model & reproducibility ----------------------------------------
    faults: FaultConfig = field(default_factory=FaultConfig)
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_param_servers <= 0 or self.num_clients <= 0:
            raise ConfigurationError("Pn and Cn must be positive")
        if self.max_concurrent_subtasks <= 0:
            raise ConfigurationError("Tn must be positive")
        if self.num_shards <= 0 or self.max_epochs <= 0:
            raise ConfigurationError("num_shards and max_epochs must be positive")
        if self.store_kind not in ("eventual", "strong"):
            raise ConfigurationError(f"unknown store_kind {self.store_kind!r}")
        if self.target_accuracy is not None and not 0.0 < self.target_accuracy <= 1.0:
            raise ConfigurationError("target_accuracy must be in (0, 1]")
        if not self.client_specs:
            raise ConfigurationError("need at least one client spec")
        if self.warm_start_passes < 0:
            raise ConfigurationError("warm_start_passes must be non-negative")
        if self.work_fetch not in ("poke", "ping"):
            raise ConfigurationError(f"unknown work_fetch {self.work_fetch!r}")
        if self.sched_queue_impl not in ("indexed", "legacy"):
            raise ConfigurationError(
                f"unknown sched_queue_impl {self.sched_queue_impl!r}"
            )
        if self.server_planes < 1:
            raise ConfigurationError("server_planes must be >= 1")
        if self.cohort_size < 1:
            raise ConfigurationError("cohort_size must be >= 1")
        if self.step_jobs < 1:
            raise ConfigurationError("step_jobs must be >= 1")
        if self.update_rule is not None and not isinstance(self.update_rule, UpdateRule):
            raise ConfigurationError(
                f"update_rule must be an UpdateRule or None, "
                f"got {type(self.update_rule).__name__}"
            )
        if self.replicas < 1 or not 1 <= self.quorum <= self.replicas:
            raise ConfigurationError(
                f"invalid replication: replicas={self.replicas}, quorum={self.quorum}"
            )
        if self.replicas > self.num_clients:
            raise ConfigurationError(
                "replicas cannot exceed num_clients: replicas must land on "
                "distinct hosts (BOINC's one-result-per-host rule)"
            )
        if self.quarantine_after < 0:
            raise ConfigurationError("quarantine_after must be non-negative")
        if self.max_param_norm is not None and self.max_param_norm <= 0:
            raise ConfigurationError("max_param_norm must be positive or None")
        if self.codec is not None:
            from ..nn.codecs import CODEC_NAMES, VALUE_QUANTS

            if self.codec not in CODEC_NAMES:
                raise ConfigurationError(
                    f"unknown codec {self.codec!r} "
                    f"(choices: {', '.join(CODEC_NAMES)})"
                )
            if not 0.0 < self.codec_topk <= 1.0:
                raise ConfigurationError("codec_topk must be in (0, 1]")
            if self.codec_quant not in VALUE_QUANTS:
                raise ConfigurationError(
                    f"unknown codec_quant {self.codec_quant!r} "
                    f"(choices: {', '.join(VALUE_QUANTS)})"
                )
            if not self.compression_enabled:
                raise ConfigurationError(
                    "codecs require compression_enabled=True (the codec "
                    "plane replaces the wire-size model)"
                )
            if self.cohort_size > 1 or self.step_jobs > 1:
                raise ConfigurationError(
                    "codecs are incompatible with the deferred execution "
                    "plane (cohort_size/step_jobs > 1): uploads must encode "
                    "inline at compute end"
                )

    # -- conveniences -----------------------------------------------------------
    @property
    def label(self) -> str:
        """The paper's experiment shorthand, e.g. ``P3C3T4``."""
        return (
            f"P{self.num_param_servers}C{self.num_clients}"
            f"T{self.max_concurrent_subtasks}"
        )

    def spec_for_client(self, index: int) -> InstanceSpec:
        """Round-robin over the configured heterogeneous client types."""
        return self.client_specs[index % len(self.client_specs)]

    def with_pct(self, p: int, c: int, t: int) -> "TrainingJobConfig":
        """Copy with different Pn/Cn/Tn (the Fig. 2/3 sweep helper)."""
        return replace(
            self,
            num_param_servers=p,
            num_clients=c,
            max_concurrent_subtasks=t,
        )

    def with_alpha(self, schedule: AlphaSchedule) -> "TrainingJobConfig":
        """Copy with a different α schedule (the Fig. 4 sweep helper)."""
        return replace(self, alpha_schedule=schedule)

    def with_rule(self, rule: UpdateRule | None) -> "TrainingJobConfig":
        """Copy with a different server-side update rule (the rule-family
        comparison helper); None restores the default VC-ASGD."""
        return replace(self, update_rule=rule)

    def with_codec(
        self,
        codec: str | None,
        topk: float | None = None,
        quant: str | None = None,
    ) -> "TrainingJobConfig":
        """Copy with a different transfer codec (the frontier-sweep
        helper); None restores the historical fixed-ratio accounting."""
        overrides: dict = {"codec": codec}
        if topk is not None:
            overrides["codec_topk"] = topk
        if quant is not None:
            overrides["codec_quant"] = quant
        return replace(self, **overrides)

    def resolved_update_rule(self) -> UpdateRule:
        """The configured rule, or the default VC-ASGD over ``alpha_schedule``."""
        if self.update_rule is not None:
            return self.update_rule
        return VCASGDRule(self.alpha_schedule)
