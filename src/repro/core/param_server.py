"""Parameter-server pool (§III-A, §III-D).

``Pn`` parameter servers share one *server parameter copy* held in a
key-value store (Redis-like eventual or MySQL-like strong consistency).
BOINC "evenly distributes the load": exactly one server processes each
result, so the pool is a P-worker FIFO queue.  Processing one result:

1. read-modify-write the store: apply the job's :class:`UpdateRule` to
   merge the client's update into the server copy (store semantics decide
   whether concurrent merges can be lost).  The default rule is the
   paper's Eq. 1 (:class:`~repro.core.rules.VCASGDRule`); any member of
   the ASGD family can be plugged in instead;
2. compute the validation accuracy of the merged copy (real forward pass;
   its *duration* is simulated work on the shared server CPU);
3. republish the parameter file so subsequent workunit downloads see the
   new copy.

The queue is the mechanism behind Fig. 3: when clients produce results
faster than ``Pn`` workers drain them, epoch time inflates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..boinc.workunit import Workunit
from ..errors import ConfigurationError, TrainingError
from ..kvstore.base import TXN_ABORT, KVStore
from ..simulation.engine import Simulator
from ..simulation.resources import ComputeResource
from ..simulation.tracing import Trace
from .rules import ClientUpdate, UpdateRule, VCASGDRule
from .vcasgd import AlphaSchedule

__all__ = ["AssimilationStats", "ParameterServerPool", "PARAM_KEY"]

PARAM_KEY = "server-params"


class _Inflight:
    """One result mid-assimilation: the unit of crash/failover bookkeeping.

    ``committed`` flips when the store merge durably applied; ``cancelled``
    stops the remaining pipeline callbacks; ``merged_vec`` holds the
    committed vector so a restarting sole server can resume validation.
    """

    __slots__ = (
        "wu",
        "update",
        "on_done",
        "enqueued_at",
        "started_at",
        "committed",
        "cancelled",
        "adopted",
        "merged_vec",
    )

    def __init__(self, wu, update, on_done, enqueued_at: float) -> None:
        self.wu = wu
        self.update = update
        self.on_done = on_done
        self.enqueued_at = enqueued_at
        self.started_at = 0.0
        self.committed = False
        self.cancelled = False
        self.adopted = False
        self.merged_vec = None


@dataclass
class AssimilationStats:
    """Aggregate counters for the pool."""

    processed: int = 0
    total_queue_wait: float = 0.0
    total_service_time: float = 0.0
    max_queue_depth: int = 0

    def mean_wait(self) -> float:
        """Mean queueing delay per assimilated result (seconds)."""
        return self.total_queue_wait / self.processed if self.processed else 0.0

    def mean_service(self) -> float:
        """Mean service time per assimilated result (seconds)."""
        return self.total_service_time / self.processed if self.processed else 0.0


class ParameterServerPool:
    """P-worker assimilation pipeline applying a pluggable update rule.

    Implements the :class:`repro.boinc.assimilator.Assimilator` protocol.
    ``rule`` is the server-side merge; passing ``alpha_schedule`` instead
    builds the default :class:`VCASGDRule` (backward-compatible shorthand).
    """

    def __init__(
        self,
        sim: Simulator,
        num_servers: int,
        store: KVStore,
        server_cpu: ComputeResource,
        evaluate_fn: Callable[[np.ndarray], tuple[float, float]],
        rule: UpdateRule | None = None,
        alpha_schedule: AlphaSchedule | None = None,
        republish_fn: Callable[[np.ndarray], None] | None = None,
        validation_work_units: float = 8.0,
        param_nbytes: int | None = None,
        trace: Trace | None = None,
    ) -> None:
        if num_servers <= 0:
            raise ConfigurationError(f"num_servers (Pn) must be positive, got {num_servers}")
        if validation_work_units <= 0:
            raise ConfigurationError("validation_work_units must be positive")
        if rule is None:
            if alpha_schedule is None:
                raise ConfigurationError(
                    "pass an UpdateRule (rule=...) or an AlphaSchedule "
                    "(alpha_schedule=...) for the default VC-ASGD rule"
                )
            rule = VCASGDRule(alpha_schedule)
        self.sim = sim
        self.num_servers = num_servers
        self.store = store
        self.rule = rule
        self.server_cpu = server_cpu
        self.evaluate_fn = evaluate_fn
        self.republish_fn = republish_fn
        self.validation_work_units = validation_work_units
        self.param_nbytes = param_nbytes
        self.trace = trace
        self._queue: deque[_Inflight] = deque()
        self._busy_workers = 0
        self._inflight: list[_Inflight] = []
        # Committed-but-unvalidated items stranded by a total-pool outage,
        # resumed when a server restarts (see crash_server / restart_server).
        self._stranded: list[_Inflight] = []
        self.crashes = 0
        self.recoveries = 0
        self.adoptions = 0
        # Invoked (with the pool) after a restart returns the pool from
        # zero live servers; the runner uses it to restore the server
        # parameter copy from the latest epoch checkpoint.
        self.on_total_outage_restart: Callable[[], None] | None = None
        # Causality handshake for span tracing: while ``republish_fn`` runs
        # this holds the workunit whose merge produced the republished copy,
        # so the publish site can stamp ``params.publish`` with its source.
        self.publishing_wu: str | None = None
        self.stats = AssimilationStats()
        # epoch -> list of per-assimilation validation accuracies
        self.epoch_accuracies: dict[int, list[float]] = {}

    # -- Assimilator protocol ------------------------------------------------
    def assimilate(
        self, workunit: Workunit, payload: object, on_done: Callable[[], None]
    ) -> None:
        """Queue one validated client result for processing.

        ``payload`` is a :class:`ClientUpdate`; a bare parameter vector is
        accepted and wrapped (legacy callers and parameter-only tests).
        """
        if isinstance(payload, ClientUpdate):
            update = payload
        elif isinstance(payload, np.ndarray):
            client_id = (
                workunit.attempts[-1].client_id if workunit.attempts else ""
            )
            update = ClientUpdate(client_id=client_id, params=payload)
        else:
            raise TrainingError(
                f"assimilator expected a ClientUpdate or parameter vector, "
                f"got {type(payload).__name__}"
            )
        self._queue.append(_Inflight(workunit, update, on_done, self.sim.now))
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))
        self._dispatch()

    def queue_depth(self) -> int:
        """Results waiting for a free parameter-server worker."""
        return len(self._queue)

    def backpressure_s(self) -> float:
        """Extra work-fetch sleep (seconds) the assimilation queue suggests.

        Fig. 3's bottleneck is the merge pipeline: when results queue up
        faster than the Pn workers drain them, handing out more work only
        deepens the backlog.  The estimate is the current backlog divided
        by worker count, scaled by the mean observed service time (0 until
        the pipeline has history, so healthy fleets are never slowed).
        The scheduler adds this to idle sleep hints in ping mode.
        """
        if not self._queue or self.num_servers <= 0:
            return 0.0
        per_worker = len(self._queue) / self.num_servers
        return per_worker * self.stats.mean_service()

    @property
    def busy_workers(self) -> int:
        """Workers currently processing a result."""
        return self._busy_workers

    # -- worker pipeline --------------------------------------------------------
    def _dispatch(self) -> None:
        while self._busy_workers < self.num_servers and self._queue:
            item = self._queue.popleft()
            self._busy_workers += 1
            self._inflight.append(item)
            self._process(item)

    def _process(self, item: _Inflight) -> None:
        item.started_at = self.sim.now
        self.stats.total_queue_wait += item.started_at - item.enqueued_at
        wu, update = item.wu, item.update

        def merge(old_vec: np.ndarray):
            if item.cancelled:
                # The worker crashed before the commit fired: abort the
                # transaction so the update is applied exactly once, by
                # whichever server re-runs the requeued item.
                return TXN_ABORT
            # ``apply`` (not ``apply_into``) on purpose: the returned
            # vector must be freshly allocated because the store commits
            # it by reference — an eventual-store snapshot, the published
            # catalog payload and DC-ASGD backups may all still alias
            # ``old_vec``.  Built-in rules make this exactly one
            # allocation with zero temporaries (per-rule scratch buffers
            # absorb the intermediates).  Paper epochs are 1-based.
            item.committed = True
            return self.rule.apply(old_vec, update, wu.epoch + 1)

        def after_store(new_vec: np.ndarray) -> None:
            item.merged_vec = new_vec
            if item.cancelled:
                return  # stranded by a total outage; restart resumes it
            self._start_validation(item)

        self.store.read_modify_write(
            PARAM_KEY, merge, on_done=after_store, nbytes=self.param_nbytes
        )

    def _start_validation(self, item: _Inflight) -> None:
        # Validation pass: the real accuracy is computed now; the time
        # it takes is charged to the shared server CPU.
        self.server_cpu.submit(
            self.validation_work_units,
            lambda: self._finish(item),
            label=f"validate:{item.wu.wu_id}",
        )

    def _finish(self, item: _Inflight) -> None:
        if item.cancelled:
            return  # stranded mid-validation by a total outage
        wu = item.wu
        _, accuracy = self.evaluate_fn(item.merged_vec)
        self.epoch_accuracies.setdefault(wu.epoch, []).append(accuracy)
        if self.republish_fn is not None:
            self.publishing_wu = wu.wu_id
            try:
                self.republish_fn(item.merged_vec)
            finally:
                self.publishing_wu = None
        self.stats.processed += 1
        self.stats.total_service_time += self.sim.now - item.started_at
        if self.trace is not None:
            fields = dict(
                wu=wu.wu_id,
                epoch=wu.epoch,
                rule=self.rule.describe(),
                accuracy=accuracy,
                queue_wait=item.started_at - item.enqueued_at,
                service=self.sim.now - item.started_at,
                client=item.update.client_id,
                base_version=item.update.base_version,
            )
            alpha = self.rule.merge_weight(wu.epoch + 1)
            if alpha is not None:
                fields["alpha"] = alpha
            self.trace.emit(self.sim.now, "ps.assimilated", **fields)
        if item in self._inflight:
            self._inflight.remove(item)
        self._busy_workers -= 1
        item.on_done()
        self._dispatch()

    # -- crash / failover (chaos fabric) ---------------------------------------
    def crash_server(self) -> None:
        """One parameter server dies right now.

        The crashed worker's in-flight result is never lost and never
        double-assimilated:

        * merge **not yet committed** — the store transaction aborts and the
          item requeues at the head, so a surviving (or restarted) server
          re-runs it from scratch;
        * merge **committed, survivors exist** — a surviving server adopts
          the rest of the pipeline (validation/republish) via the shared
          store (§III-D: servers are replaceable because state lives in the
          store);
        * merge **committed, no survivors** — the item is stranded; a
          restarting server resumes its validation (unless the runner
          restores from a checkpoint first, which supersedes it).
        """
        if self.num_servers <= 0:
            return
        self.num_servers -= 1
        self.crashes += 1
        victim: _Inflight | None = None
        for candidate in self._inflight:
            if not candidate.adopted and not candidate.cancelled:
                victim = candidate
                break
        if victim is None:
            # An idle worker died: capacity loss only.
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "ps.crash", servers_left=self.num_servers, lost="idle"
                )
            return
        if not victim.committed:
            victim.cancelled = True
            self._inflight.remove(victim)
            self._busy_workers -= 1
            requeued = _Inflight(
                victim.wu, victim.update, victim.on_done, victim.enqueued_at
            )
            self._queue.appendleft(requeued)
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "ps.crash",
                    servers_left=self.num_servers,
                    lost="uncommitted",
                    wu=victim.wu.wu_id,
                )
            self._dispatch()
            return
        if self.num_servers >= 1:
            victim.adopted = True
            self.adoptions += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "ps.crash",
                    servers_left=self.num_servers,
                    lost="adopted",
                    wu=victim.wu.wu_id,
                )
            return
        # Sole server died after the commit: the merge is durable in the
        # store but validation/accounting never ran.  Strand the item until
        # a restart (its pending validation callback will no-op).
        victim.cancelled = True
        self._stranded.append(victim)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "ps.crash",
                servers_left=0,
                lost="stranded",
                wu=victim.wu.wu_id,
            )

    def restart_server(self) -> None:
        """A replacement parameter server comes up.

        Returning from a total outage first lets the runner restore the
        server copy from its latest epoch checkpoint
        (``on_total_outage_restart``), then resumes any stranded
        committed-but-unvalidated items and drains the queue.
        """
        from_total_outage = self.num_servers == 0
        self.num_servers += 1
        self.recoveries += 1
        if from_total_outage and self.on_total_outage_restart is not None:
            self.on_total_outage_restart()
        resumed = 0
        for item in self._stranded:
            item.cancelled = False
            if item.merged_vec is not None:
                # Re-validate against the *current* store copy: a checkpoint
                # restore may have rolled the merge back, in which case the
                # accounting below reflects the restored state.
                item.merged_vec = self.store.get_now(PARAM_KEY)
                self._start_validation(item)
                resumed += 1
        self._stranded.clear()
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "ps.recover",
                servers=self.num_servers,
                resumed=resumed,
                total_outage=from_total_outage,
            )
        self._dispatch()

    # -- epoch-level views ----------------------------------------------------------
    def epoch_accuracy_summary(self, epoch: int) -> tuple[float, float, float]:
        """(mean, min, max) validation accuracy over the epoch's assimilations.

        The mean is the paper's "average validation accuracy over all the
        subtasks"; min/max are the Fig. 4 error bars.
        """
        accs = self.epoch_accuracies.get(epoch)
        if not accs:
            raise TrainingError(f"no assimilations recorded for epoch {epoch}")
        arr = np.asarray(accs)
        return float(arr.mean()), float(arr.min()), float(arr.max())

    def current_params(self) -> np.ndarray:
        """Latest committed server parameter copy."""
        return self.store.get_now(PARAM_KEY)
