"""Parameter-server pool (§III-A, §III-D).

``Pn`` parameter servers share one *server parameter copy* held in a
key-value store (Redis-like eventual or MySQL-like strong consistency).
BOINC "evenly distributes the load": exactly one server processes each
result, so the pool is a P-worker FIFO queue.  Processing one result:

1. read-modify-write the store: apply the job's :class:`UpdateRule` to
   merge the client's update into the server copy (store semantics decide
   whether concurrent merges can be lost).  The default rule is the
   paper's Eq. 1 (:class:`~repro.core.rules.VCASGDRule`); any member of
   the ASGD family can be plugged in instead;
2. compute the validation accuracy of the merged copy (real forward pass;
   its *duration* is simulated work on the shared server CPU);
3. republish the parameter file so subsequent workunit downloads see the
   new copy.

The queue is the mechanism behind Fig. 3: when clients produce results
faster than ``Pn`` workers drain them, epoch time inflates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..boinc.workunit import Workunit
from ..errors import ConfigurationError, TrainingError
from ..kvstore.base import KVStore
from ..simulation.engine import Simulator
from ..simulation.resources import ComputeResource
from ..simulation.tracing import Trace
from .rules import ClientUpdate, UpdateRule, VCASGDRule
from .vcasgd import AlphaSchedule

__all__ = ["AssimilationStats", "ParameterServerPool", "PARAM_KEY"]

PARAM_KEY = "server-params"


@dataclass
class AssimilationStats:
    """Aggregate counters for the pool."""

    processed: int = 0
    total_queue_wait: float = 0.0
    total_service_time: float = 0.0
    max_queue_depth: int = 0

    def mean_wait(self) -> float:
        """Mean queueing delay per assimilated result (seconds)."""
        return self.total_queue_wait / self.processed if self.processed else 0.0

    def mean_service(self) -> float:
        """Mean service time per assimilated result (seconds)."""
        return self.total_service_time / self.processed if self.processed else 0.0


class ParameterServerPool:
    """P-worker assimilation pipeline applying a pluggable update rule.

    Implements the :class:`repro.boinc.assimilator.Assimilator` protocol.
    ``rule`` is the server-side merge; passing ``alpha_schedule`` instead
    builds the default :class:`VCASGDRule` (backward-compatible shorthand).
    """

    def __init__(
        self,
        sim: Simulator,
        num_servers: int,
        store: KVStore,
        server_cpu: ComputeResource,
        evaluate_fn: Callable[[np.ndarray], tuple[float, float]],
        rule: UpdateRule | None = None,
        alpha_schedule: AlphaSchedule | None = None,
        republish_fn: Callable[[np.ndarray], None] | None = None,
        validation_work_units: float = 8.0,
        param_nbytes: int | None = None,
        trace: Trace | None = None,
    ) -> None:
        if num_servers <= 0:
            raise ConfigurationError(f"num_servers (Pn) must be positive, got {num_servers}")
        if validation_work_units <= 0:
            raise ConfigurationError("validation_work_units must be positive")
        if rule is None:
            if alpha_schedule is None:
                raise ConfigurationError(
                    "pass an UpdateRule (rule=...) or an AlphaSchedule "
                    "(alpha_schedule=...) for the default VC-ASGD rule"
                )
            rule = VCASGDRule(alpha_schedule)
        self.sim = sim
        self.num_servers = num_servers
        self.store = store
        self.rule = rule
        self.server_cpu = server_cpu
        self.evaluate_fn = evaluate_fn
        self.republish_fn = republish_fn
        self.validation_work_units = validation_work_units
        self.param_nbytes = param_nbytes
        self.trace = trace
        self._queue: deque[tuple[Workunit, ClientUpdate, Callable[[], None], float]] = deque()
        self._busy_workers = 0
        self.stats = AssimilationStats()
        # epoch -> list of per-assimilation validation accuracies
        self.epoch_accuracies: dict[int, list[float]] = {}

    # -- Assimilator protocol ------------------------------------------------
    def assimilate(
        self, workunit: Workunit, payload: object, on_done: Callable[[], None]
    ) -> None:
        """Queue one validated client result for processing.

        ``payload`` is a :class:`ClientUpdate`; a bare parameter vector is
        accepted and wrapped (legacy callers and parameter-only tests).
        """
        if isinstance(payload, ClientUpdate):
            update = payload
        elif isinstance(payload, np.ndarray):
            client_id = (
                workunit.attempts[-1].client_id if workunit.attempts else ""
            )
            update = ClientUpdate(client_id=client_id, params=payload)
        else:
            raise TrainingError(
                f"assimilator expected a ClientUpdate or parameter vector, "
                f"got {type(payload).__name__}"
            )
        self._queue.append((workunit, update, on_done, self.sim.now))
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))
        self._dispatch()

    def queue_depth(self) -> int:
        """Results waiting for a free parameter-server worker."""
        return len(self._queue)

    @property
    def busy_workers(self) -> int:
        """Workers currently processing a result."""
        return self._busy_workers

    # -- worker pipeline --------------------------------------------------------
    def _dispatch(self) -> None:
        while self._busy_workers < self.num_servers and self._queue:
            item = self._queue.popleft()
            self._busy_workers += 1
            self._process(*item)

    def _process(
        self,
        wu: Workunit,
        update: ClientUpdate,
        on_done: Callable[[], None],
        enqueued_at: float,
    ) -> None:
        start = self.sim.now
        self.stats.total_queue_wait += start - enqueued_at

        def merge(old_vec: np.ndarray) -> np.ndarray:
            # Out of place: with the eventual store, ``old_vec`` may be a
            # snapshot other in-flight transactions still reference.
            # Paper epochs are 1-based.
            return self.rule.apply(old_vec, update, wu.epoch + 1)

        def after_store(new_vec: np.ndarray) -> None:
            # Validation pass: the real accuracy is computed now; the time
            # it takes is charged to the shared server CPU.
            self.server_cpu.submit(
                self.validation_work_units,
                lambda: after_validation(new_vec),
                label=f"validate:{wu.wu_id}",
            )

        def after_validation(new_vec: np.ndarray) -> None:
            _, accuracy = self.evaluate_fn(new_vec)
            self.epoch_accuracies.setdefault(wu.epoch, []).append(accuracy)
            if self.republish_fn is not None:
                self.republish_fn(new_vec)
            self.stats.processed += 1
            self.stats.total_service_time += self.sim.now - start
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "ps.assimilated",
                    wu=wu.wu_id,
                    epoch=wu.epoch,
                    rule=self.rule.describe(),
                    accuracy=accuracy,
                    queue_wait=start - enqueued_at,
                )
            self._busy_workers -= 1
            on_done()
            self._dispatch()

        self.store.read_modify_write(
            PARAM_KEY, merge, on_done=after_store, nbytes=self.param_nbytes
        )

    # -- epoch-level views ----------------------------------------------------------
    def epoch_accuracy_summary(self, epoch: int) -> tuple[float, float, float]:
        """(mean, min, max) validation accuracy over the epoch's assimilations.

        The mean is the paper's "average validation accuracy over all the
        subtasks"; min/max are the Fig. 4 error bars.
        """
        accs = self.epoch_accuracies.get(epoch)
        if not accs:
            raise TrainingError(f"no assimilations recorded for epoch {epoch}")
        arr = np.asarray(accs)
        return float(arr.mean()), float(arr.min()), float(arr.max())

    def current_params(self) -> np.ndarray:
        """Latest committed server parameter copy."""
        return self.store.get_now(PARAM_KEY)
