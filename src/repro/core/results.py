"""Run results: per-epoch records and whole-run summaries."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..errors import TrainingError

__all__ = ["EpochRecord", "RunResult"]


@dataclass(frozen=True)
class EpochRecord:
    """Everything measured at one epoch boundary.

    Times are *simulated* seconds since the start of training; accuracy
    fields mirror the paper's plots (mean over the epoch's subtask
    assimilations, with min/max forming the Fig. 4 error bars; test
    accuracy is evaluated on the held-out test split as in Fig. 6).
    """

    epoch: int  # 1-based, as the paper counts
    end_time_s: float
    val_accuracy_mean: float
    val_accuracy_min: float
    val_accuracy_max: float
    test_accuracy: float
    alpha: float
    assimilations: int
    timeouts_so_far: int
    lost_updates_so_far: int

    @property
    def val_accuracy_spread(self) -> float:
        """Error-bar width (proxy for the std-dev of accuracy, §IV-C)."""
        return self.val_accuracy_max - self.val_accuracy_min

    def to_dict(self) -> dict:
        """Plain-data form for telemetry export (JSON-serializable)."""
        return asdict(self)


@dataclass
class RunResult:
    """Outcome of one distributed (or baseline) training run."""

    label: str
    epochs: list[EpochRecord] = field(default_factory=list)
    total_time_s: float = 0.0
    stopped_reason: str = ""
    counters: dict[str, int] = field(default_factory=dict)

    def append(self, record: EpochRecord) -> None:
        """Record one finished epoch and advance the run clock."""
        self.epochs.append(record)
        self.total_time_s = record.end_time_s

    def to_dict(self) -> dict:
        """Plain-data form for telemetry export (JSON-serializable)."""
        return {
            "label": self.label,
            "epochs": [e.to_dict() for e in self.epochs],
            "total_time_s": self.total_time_s,
            "stopped_reason": self.stopped_reason,
            "counters": dict(self.counters),
        }

    # -- series views (for plotting/benchmark tables) -------------------------
    def times_hours(self) -> np.ndarray:
        """Epoch end times in hours (the figures' x axis)."""
        return np.asarray([e.end_time_s for e in self.epochs]) / 3600.0

    def val_accuracy(self) -> np.ndarray:
        """Per-epoch mean validation accuracy (the figures' y axis)."""
        return np.asarray([e.val_accuracy_mean for e in self.epochs])

    def test_accuracy(self) -> np.ndarray:
        """Per-epoch held-out test accuracy."""
        return np.asarray([e.test_accuracy for e in self.epochs])

    def spreads(self) -> np.ndarray:
        """Per-epoch error-bar widths (max − min subtask accuracy)."""
        return np.asarray([e.val_accuracy_spread for e in self.epochs])

    # -- summary queries ---------------------------------------------------------
    @property
    def final_val_accuracy(self) -> float:
        if not self.epochs:
            raise TrainingError(f"run {self.label!r} recorded no epochs")
        return self.epochs[-1].val_accuracy_mean

    @property
    def final_test_accuracy(self) -> float:
        if not self.epochs:
            raise TrainingError(f"run {self.label!r} recorded no epochs")
        return self.epochs[-1].test_accuracy

    @property
    def total_time_hours(self) -> float:
        return self.total_time_s / 3600.0

    def time_to_accuracy(self, target: float) -> float | None:
        """Simulated seconds until mean val accuracy first reached ``target``
        (None if never)."""
        for record in self.epochs:
            if record.val_accuracy_mean >= target:
                return record.end_time_s
        return None

    def best_val_accuracy(self) -> float:
        """Highest mean validation accuracy reached at any epoch."""
        return float(max(e.val_accuracy_mean for e in self.epochs))

    def mean_spread(self, last_k: int | None = None) -> float:
        """Mean error-bar width, optionally over only the last ``last_k`` epochs."""
        spreads = self.spreads()
        if last_k is not None:
            spreads = spreads[-last_k:]
        return float(spreads.mean())

    def window(self, t_lo_h: float, t_hi_h: float) -> list[EpochRecord]:
        """Epochs whose end time falls in [t_lo_h, t_hi_h) hours (Fig. 5 zooms)."""
        return [
            e for e in self.epochs if t_lo_h <= e.end_time_s / 3600.0 < t_hi_h
        ]
