"""Process-pool fan-out for independent deterministic runs.

A sweep's grid points share nothing: each :class:`TrainingJobConfig`
carries its own seed and every run is bit-deterministic given its config
(see ``tests/core/test_determinism.py``).  That makes the sweep loop
embarrassingly parallel — this module fans the configs out over a
``ProcessPoolExecutor`` and reassembles results **in grid order**, so
parallel and serial execution produce identical outcomes.

Guarantees:

* results (and optional per-run telemetry documents) come back in the
  order the configs were given, regardless of completion order;
* a worker failure propagates the original exception, annotated with the
  failing config's label;
* anything that cannot be shipped to a worker process (an unpicklable
  config, e.g. one holding a closure-based alpha schedule) degrades to
  the serial path instead of crashing — same results, one process.

Workers are forked where the platform supports it (cheap, inherits the
imported modules); otherwise the default start method is used.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from ..errors import ConfigurationError
from .job import TrainingJobConfig
from .results import RunResult

__all__ = ["run_configs", "default_jobs", "picklable"]


def default_jobs() -> int:
    """A sensible worker count: one per CPU."""
    return max(1, os.cpu_count() or 1)


def picklable(payload: object) -> bool:
    """Whether ``payload`` can be shipped to a worker process."""
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


def _run_one(config: TrainingJobConfig, collect_telemetry: bool):
    """Worker body: one full run (top level so it pickles)."""
    # Imported lazily: forked workers inherit it, spawned ones re-import.
    from .runner import DistributedRunner

    runner = DistributedRunner(config)
    result = runner.run()
    telemetry = runner.telemetry() if collect_telemetry else None
    return result, telemetry


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_configs(
    configs: Sequence[TrainingJobConfig],
    jobs: int = 1,
    collect_telemetry: bool = False,
    progress: Callable[[int, RunResult], None] | None = None,
) -> list[tuple[RunResult, dict | None]]:
    """Run every config; return ``(result, telemetry-or-None)`` per config.

    ``jobs > 1`` fans out over a process pool; ``jobs <= 1`` — or configs
    that cannot be pickled — run serially in this process.  Output order
    always matches input order, and because each run is deterministic in
    its config alone, the results are identical either way.  ``progress``
    is invoked as ``progress(index, result)`` in input order.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    configs = list(configs)
    effective = min(jobs, len(configs)) if configs else 1
    if effective > 1 and not picklable(configs):
        effective = 1
    if effective <= 1:
        outcomes = [_run_one(config, collect_telemetry) for config in configs]
    else:
        with ProcessPoolExecutor(
            max_workers=effective, mp_context=_pool_context()
        ) as pool:
            futures = [
                pool.submit(_run_one, config, collect_telemetry)
                for config in configs
            ]
            outcomes = []
            for config, future in zip(configs, futures):
                try:
                    outcomes.append(future.result())
                except Exception as exc:
                    exc.add_note(f"while running sweep point {config.label!r}")
                    raise
    if progress is not None:
        for index, (result, _) in enumerate(outcomes):
            progress(index, result)
    return outcomes
