"""Multi-core execution plane: process fan-out and shared parameter memory.

Two layers live here:

* **Sweep fan-out** — :func:`run_configs` runs independent deterministic
  configs over a ``ProcessPoolExecutor`` and reassembles results in grid
  order.  When the grid cannot be shipped to workers (an unpicklable
  config, e.g. a closure-based alpha schedule) it degrades to the serial
  path — and since PR 8 that degradation is *loud*: a
  :class:`ParallelFallback` record is published through
  :func:`last_fallback`, an ``on_fallback`` callback, and a
  :class:`ParallelFallbackWarning`, instead of silently running 1-wide.

* **Shared parameter plane** — :class:`SharedParameterPlane` backs the
  packed flat parameter vectors (``StateLayout`` offsets) with a
  ``multiprocessing.shared_memory`` segment of fixed-size slots.  The
  parent writes a published parameter copy into a slot once; every worker
  process attaches the segment and maps the slot as a **read-only** NumPy
  view — eliminating the per-job pickling of full model state that made
  naive process fan-out slower than serial.  Lifecycle is explicit
  (create → attach → close → unlink) and crash-tolerant: the segment is
  owned by the creator, attachments are untracked (see
  :meth:`PlaneHandle.attach`), so a worker dying mid-step — even to
  ``kill -9`` — never unlinks or leaks the segment.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from dataclasses import dataclass
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError, SimulationError
from .job import TrainingJobConfig
from .results import RunResult

__all__ = [
    "run_configs",
    "default_jobs",
    "picklable",
    "ParallelFallback",
    "ParallelFallbackWarning",
    "last_fallback",
    "SharedParameterPlane",
    "PlaneHandle",
    "AttachedPlane",
]


def default_jobs() -> int:
    """A sensible worker count: one per CPU."""
    return max(1, os.cpu_count() or 1)


def picklable(payload: object) -> bool:
    """Whether ``payload`` can be shipped to a worker process."""
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


# ---------------------------------------------------------------------------
# Shared-memory parameter plane
# ---------------------------------------------------------------------------

def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker registration.

    On Python < 3.13 every ``SharedMemory(name=...)`` attachment registers
    the segment with the resource tracker, which then unlinks it at process
    exit (bpo-39959) — exactly wrong for a worker that merely mapped a
    read-only view.  Registering-then-unregistering is not enough either:
    the tracker's per-type cache is a set, so N workers pairing
    register/unregister around the owner's single registration unbalance it
    and the owner's final unlink logs ``KeyError`` tracebacks.  Instead the
    registration itself is suppressed for the duration of the attach, so
    only the creating process ever owns the segment's lifetime.
    """
    try:  # pragma: no cover - interpreter-version dependent plumbing
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(target: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original(target, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except AttributeError:  # pragma: no cover - tracker plumbing moved
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class PlaneHandle:
    """Picklable reference to a :class:`SharedParameterPlane` segment."""

    name: str
    slots: int
    slot_size: int

    def attach(self) -> "AttachedPlane":
        """Map the segment read-only in this (worker) process.

        Raises ``FileNotFoundError`` if the creator already unlinked it.
        The attachment is untracked (see :func:`_attach_untracked`):
        closing it — or dying without closing it — never destroys the
        segment.
        """
        shm = _attach_untracked(self.name)
        return AttachedPlane(shm, self.slots, self.slot_size)


class AttachedPlane:
    """A worker-side read-only mapping of the plane segment."""

    def __init__(
        self, shm: shared_memory.SharedMemory, slots: int, slot_size: int
    ) -> None:
        self._shm = shm
        array = np.ndarray((slots, slot_size), dtype=np.float64, buffer=shm.buf)
        array.flags.writeable = False
        self._array = array

    def view(self, slot: int) -> np.ndarray:
        """Read-only zero-copy view of one parameter slot."""
        return self._array[slot]

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        # The numpy views must be released before the mmap can close.
        self._array = None
        self._shm.close()

    def __enter__(self) -> "AttachedPlane":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SharedParameterPlane:
    """Owner side of the shared-memory parameter plane.

    A fixed grid of ``slots`` flat float64 vectors of ``slot_size``
    scalars each.  The owner writes published parameter copies into slots
    (:meth:`write`) and ships :meth:`handle` to workers, which map the
    same physical pages read-only — a worker reads the full model state
    without a single pickled byte.

    The owner must eventually call :meth:`unlink` (or use the plane as a
    context manager); until then the segment survives any number of
    worker attachments, detachments, and crashes.
    """

    def __init__(self, slot_size: int, slots: int = 16) -> None:
        if slot_size <= 0 or slots <= 0:
            raise ConfigurationError(
                f"plane needs positive geometry, got slots={slots}, "
                f"slot_size={slot_size}"
            )
        self.slots = slots
        self.slot_size = slot_size
        self._shm = shared_memory.SharedMemory(
            create=True, size=slots * slot_size * np.dtype(np.float64).itemsize
        )
        self._array: np.ndarray | None = np.ndarray(
            (slots, slot_size), dtype=np.float64, buffer=self._shm.buf
        )
        self._unlinked = False

    @property
    def name(self) -> str:
        return self._shm.name

    def _require_open(self) -> np.ndarray:
        if self._array is None:
            raise SimulationError("shared parameter plane is closed")
        return self._array

    def write(self, slot: int, vec: np.ndarray) -> None:
        """Copy a flat parameter vector into ``slot``."""
        array = self._require_open()
        if not 0 <= slot < self.slots:
            raise ConfigurationError(f"slot {slot} out of range 0..{self.slots - 1}")
        if vec.shape != (self.slot_size,):
            raise ConfigurationError(
                f"vector shape {vec.shape} does not fit slot size {self.slot_size}"
            )
        np.copyto(array[slot], vec)

    def view(self, slot: int) -> np.ndarray:
        """Owner-side read-only view of a slot (for verification/tests)."""
        array = self._require_open()
        v = array[slot][:]
        v.flags.writeable = False
        return v

    def handle(self) -> PlaneHandle:
        """The picklable attachment token workers use to map the plane."""
        self._require_open()
        return PlaneHandle(self.name, self.slots, self.slot_size)

    def close(self) -> None:
        """Drop the owner's mapping (idempotent)."""
        if self._array is not None:
            self._array = None
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (idempotent; implies :meth:`close`)."""
        self.close()
        if not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedParameterPlane":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()


# ---------------------------------------------------------------------------
# Sweep fan-out
# ---------------------------------------------------------------------------

class ParallelFallbackWarning(UserWarning):
    """A parallel fan-out silently would have degraded to serial; now loud."""


@dataclass(frozen=True)
class ParallelFallback:
    """Record of one ``run_configs`` serial degradation.

    ``kind`` is the trace-style event name (``parallel.fallback``) so
    telemetry consumers and the TRACE_KINDS catalogue share one
    vocabulary even though sweeps run outside any single run's trace.
    """

    requested_jobs: int
    configs: int
    reason: str
    kind: str = "parallel.fallback"


_LAST_FALLBACK: ParallelFallback | None = None


def last_fallback() -> ParallelFallback | None:
    """The most recent :func:`run_configs` fallback, or None.

    Reset to None at the start of every ``run_configs`` call, so a caller
    checking right after a sweep sees exactly that sweep's outcome.
    """
    return _LAST_FALLBACK


def _run_one(config: TrainingJobConfig, collect_telemetry: bool):
    """Worker body: one full run (top level so it pickles)."""
    # Imported lazily: forked workers inherit it, spawned ones re-import.
    from .runner import DistributedRunner

    runner = DistributedRunner(config)
    result = runner.run()
    telemetry = runner.telemetry() if collect_telemetry else None
    return result, telemetry


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_configs(
    configs: Sequence[TrainingJobConfig],
    jobs: int = 1,
    collect_telemetry: bool = False,
    progress: Callable[[int, RunResult], None] | None = None,
    on_fallback: Callable[[ParallelFallback], None] | None = None,
) -> list[tuple[RunResult, dict | None]]:
    """Run every config; return ``(result, telemetry-or-None)`` per config.

    ``jobs > 1`` fans out over a process pool; ``jobs <= 1`` — or configs
    that cannot be pickled — run serially in this process.  Output order
    always matches input order, and because each run is deterministic in
    its config alone, the results are identical either way.  ``progress``
    is invoked as ``progress(index, result)`` in input order.

    A forced serial degradation (unpicklable configs) is never silent: it
    emits a :class:`ParallelFallbackWarning`, records the event for
    :func:`last_fallback`, and invokes ``on_fallback`` when given.
    """
    global _LAST_FALLBACK
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    _LAST_FALLBACK = None
    configs = list(configs)
    effective = min(jobs, len(configs)) if configs else 1
    if jobs > 1 and configs and not picklable(configs):
        fallback = ParallelFallback(
            requested_jobs=jobs,
            configs=len(configs),
            reason="unpicklable_config",
        )
        _LAST_FALLBACK = fallback
        warnings.warn(
            f"parallel.fallback: {len(configs)} config(s) cannot be shipped "
            f"to worker processes (reason={fallback.reason}); running "
            f"serially instead of jobs={jobs}",
            ParallelFallbackWarning,
            stacklevel=2,
        )
        if on_fallback is not None:
            on_fallback(fallback)
        effective = 1
    if effective <= 1:
        outcomes = [_run_one(config, collect_telemetry) for config in configs]
    else:
        with ProcessPoolExecutor(
            max_workers=effective, mp_context=_pool_context()
        ) as pool:
            futures = [
                pool.submit(_run_one, config, collect_telemetry)
                for config in configs
            ]
            outcomes = []
            for config, future in zip(configs, futures):
                try:
                    outcomes.append(future.result())
                except Exception as exc:
                    exc.add_note(f"while running sweep point {config.label!r}")
                    raise
    if progress is not None:
        for index, (result, _) in enumerate(outcomes):
            progress(index, result)
    return outcomes
