"""Experiment sweeps: run a grid of job configurations and collect results.

The paper's evaluation is a set of sweeps — over (Pn, Cn, Tn), over α,
over the store — and the benchmark harness hand-rolls each one.  This
module provides the general machinery: declare axes as config overrides,
run the cartesian product (each run fully independent and deterministic),
and query the collected results.

Example
-------
>>> sweep = Sweep(base=TrainingJobConfig(max_epochs=5))
>>> sweep.axis("num_param_servers", [1, 3])
>>> sweep.axis("max_concurrent_subtasks", [2, 4])
>>> outcomes = sweep.run()          # 4 runs
>>> best = sweep.best("final_val_accuracy")
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError
from .job import TrainingJobConfig
from .results import RunResult
from .runner import run_experiment

__all__ = ["SweepPoint", "Sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the overrides applied and the run's outcome."""

    overrides: tuple[tuple[str, Any], ...]
    config: TrainingJobConfig
    result: RunResult

    def override_dict(self) -> dict[str, Any]:
        """Overrides as a plain dict."""
        return dict(self.overrides)

    def label(self) -> str:
        """Human-readable 'field=value, ...' tag for this grid point."""
        return ", ".join(f"{k}={_fmt(v)}" for k, v in self.overrides)


def _fmt(value: Any) -> str:
    describe = getattr(value, "describe", None)
    if callable(describe):
        return describe()
    return str(value)


class Sweep:
    """Cartesian-product experiment grid over :class:`TrainingJobConfig`."""

    def __init__(
        self,
        base: TrainingJobConfig,
        runner: Callable[[TrainingJobConfig], RunResult] = run_experiment,
    ) -> None:
        self.base = base
        self.runner = runner
        self._axes: list[tuple[str, Sequence[Any]]] = []
        self.points: list[SweepPoint] = []

    # -- declaration ------------------------------------------------------
    def axis(self, field_name: str, values: Sequence[Any]) -> "Sweep":
        """Add a sweep axis; ``field_name`` must be a config field."""
        if not values:
            raise ConfigurationError(f"axis {field_name!r} has no values")
        valid = {f.name for f in dataclasses.fields(TrainingJobConfig)}
        if field_name not in valid:
            raise ConfigurationError(
                f"{field_name!r} is not a TrainingJobConfig field"
            )
        if any(field_name == existing for existing, _ in self._axes):
            raise ConfigurationError(f"axis {field_name!r} declared twice")
        self._axes.append((field_name, list(values)))
        return self

    @property
    def size(self) -> int:
        """Number of grid points."""
        if not self._axes:
            return 0
        n = 1
        for _, values in self._axes:
            n *= len(values)
        return n

    def configs(self) -> list[tuple[tuple[tuple[str, Any], ...], TrainingJobConfig]]:
        """Materialize every (overrides, config) pair of the grid."""
        if not self._axes:
            raise ConfigurationError("sweep has no axes")
        names = [name for name, _ in self._axes]
        combos = itertools.product(*(values for _, values in self._axes))
        out = []
        for combo in combos:
            overrides = tuple(zip(names, combo))
            config = dataclasses.replace(self.base, **dict(overrides))
            out.append((overrides, config))
        return out

    # -- execution ------------------------------------------------------------
    def run(
        self,
        progress: Callable[[SweepPoint], None] | None = None,
        jobs: int = 1,
    ) -> list[SweepPoint]:
        """Execute every grid point (deterministic, independent runs).

        ``jobs > 1`` fans the grid out over a process pool (see
        :mod:`repro.core.parallel`); because every run is deterministic in
        its config alone, the points are identical to a serial sweep and
        come back in grid order.  A custom ``runner`` cannot be shipped to
        worker processes, so it always runs serially.
        """
        self.points = []
        pairs = self.configs()
        if jobs > 1 and self.runner is run_experiment:
            from .parallel import run_configs

            outcomes = run_configs([config for _, config in pairs], jobs=jobs)
            for (overrides, config), (result, _) in zip(pairs, outcomes):
                point = SweepPoint(overrides=overrides, config=config, result=result)
                self.points.append(point)
                if progress is not None:
                    progress(point)
        else:
            for overrides, config in pairs:
                result = self.runner(config)
                point = SweepPoint(overrides=overrides, config=config, result=result)
                self.points.append(point)
                if progress is not None:
                    progress(point)
        return self.points

    # -- queries ----------------------------------------------------------------
    def _require_ran(self) -> None:
        if not self.points:
            raise ConfigurationError("sweep has not been run yet")

    def best(self, metric: str = "final_val_accuracy", maximize: bool = True) -> SweepPoint:
        """Grid point optimizing a RunResult attribute/property."""
        self._require_ran()
        key = lambda p: getattr(p.result, metric)
        return max(self.points, key=key) if maximize else min(self.points, key=key)

    def table_rows(self) -> list[list[object]]:
        """Rows of (axis values..., final acc, hours) for rendering."""
        self._require_ran()
        rows = []
        for point in self.points:
            rows.append(
                [_fmt(v) for _, v in point.overrides]
                + [
                    round(point.result.final_val_accuracy, 3),
                    round(point.result.total_time_hours, 3),
                ]
            )
        return rows

    def headers(self) -> list[str]:
        """Column headers matching :meth:`table_rows`."""
        return [name for name, _ in self._axes] + ["final acc", "hours"]
