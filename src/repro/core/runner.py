"""Distributed training runner: wires every substrate into one experiment.

Builds the full system of Fig. 1 — synthetic dataset, work generator,
BOINC server (scheduler/web/validator), client fleet on simulated
heterogeneous preemptible instances, parameter-server pool over a KV
store — and drives it epoch by epoch:

1. publish one workunit per shard referencing the current parameter file;
2. let the event simulation flow (downloads, real local training,
   uploads, VC-ASGD assimilations, timeouts, preemptions);
3. when every workunit of the epoch is terminal and every accepted result
   is assimilated, record the epoch (mean/min/max subtask validation
   accuracy, test accuracy, simulated wall-clock);
4. stop when the accuracy target is met or ``max_epochs`` have run
   (§III-A's stopping criterion), else loop.

Client-side training is *real* NumPy training; every duration is
*simulated* time — see DESIGN.md §5.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace

import numpy as np

from ..boinc.client import ClientDaemon
from ..boinc.files import ServerFile
from ..boinc.replication import QuorumAssimilator, QuorumConfig, logical_id
from ..boinc.scheduler import SchedulerConfig
from ..boinc.server import BoincServer
from ..boinc.server_plane import ShardedValidatorPool, ShardedWorkGenerator
from ..boinc.validator import ParameterValidator
from ..boinc.work_generator import WorkGenerator
from ..boinc.workunit import Workunit, WorkunitState
from ..data.dataset import Dataset
from ..data.loader import BatchLoader
from ..data.synthetic import make_classification_splits
from ..errors import SchedulerError, TrainingError
from ..kvstore.eventual import EventualStore
from ..kvstore.strong import StrongStore
from ..kvstore.latency import mysql_like_latency, redis_like_latency
from ..nn.layers import Module
from ..nn.losses import cross_entropy
from ..nn.metrics import evaluate_classifier
from ..nn.models import build_model
from ..nn.optim import SGD, Adam
from ..nn.serialization import StateLayout, compressed_size_cache_stats
from ..nn.tensor import Tensor
from ..obs.runtime import ObservabilityConfig, RunObservability
from ..simulation.adversary import AdversaryFabric
from ..simulation.chaos import ChaosPlan, PartitionSchedule
from ..simulation.congestion import CongestedLink, CongestionSchedule
from ..simulation.engine import Simulator
from ..simulation.preemption import ExponentialLifetime
from ..simulation.rng import RngRegistry
from ..simulation.tracing import Trace
from .autoscale import AutoscalePolicy, AutoscalingPool
from .checkpoint import Checkpoint
from .codec_plane import ParamCodecPlane
from .job import TrainingJobConfig
from .param_server import PARAM_KEY, ParameterServerPool
from .results import EpochRecord, RunResult
from .rules import ClientUpdate
from .steps import DeferredUpdate, StepDispatcher, draw_batch_orders, run_local_step

__all__ = ["DistributedRunner", "VersionedParams", "run_experiment"]

PARAM_FILE = "job:params"
# Compressed/raw ratio for float64 weight vectors; measured once from the
# npz codec on representative weights and then reused (computing a real
# compression per update would dominate runtime without changing behaviour).
PARAM_COMPRESSION_RATIO = 0.9
# A fault-intolerant rule (EASGD, BSP AllReduce) cannot finish an epoch
# while any shard's update is missing; the runner reissues replacement
# workunits for the missing shards at most this many times before declaring
# the barrier permanently stalled.
MAX_BARRIER_RETRIES = 3


@dataclass(frozen=True)
class VersionedParams:
    """Published server parameter copy, tagged with its publish version.

    The version travels with the payload itself, so staleness bookkeeping
    no longer needs an id()-keyed side table that outlives its vectors:
    every downloader reads the version straight off the file it trained
    from, including frozen per-epoch replica copies.
    """

    params: np.ndarray
    version: int


class DistributedRunner:
    """One fully wired distributed-training experiment."""

    def __init__(
        self,
        config: TrainingJobConfig,
        resume_from: "Checkpoint | None" = None,
        observability: ObservabilityConfig | None = None,
    ) -> None:
        self.config = config
        self.rngs = RngRegistry(config.seed)
        self.sim = Simulator()
        obs_config = (
            observability if observability is not None else ObservabilityConfig()
        )
        self.trace = Trace(max_records=obs_config.trace_max_records)
        # Observability bundle (metrics collector + invariant auditor by
        # default).  Attached before any component can emit, so the
        # auditor sees the complete event stream from the first publish.
        self.obs = RunObservability(obs_config, trace=self.trace, sim=self.sim)
        self._resume = resume_from
        self._time_offset = 0.0
        # The server-side merge rule.  Deep-copied so stateful rules
        # (DC-ASGD backups, BSP round counters) never leak between runs or
        # sweep points sharing one config object.
        self.rule = copy.deepcopy(config.resolved_update_rule())
        # Staleness instrumentation (see _republish_params / _on_assimilated):
        # publish counter for the parameter file, the publish version each
        # in-flight subtask trained from (read off the VersionedParams
        # payload at download time), and the collected per-update staleness
        # samples.  Initialized before any publish happens.
        self._param_publish_count = 0
        self._wu_base_version: dict[str, int] = {}
        self.staleness_samples: list[int] = []
        # Barrier bookkeeping for fault-intolerant rules (see run()).
        self.barrier_stalls = 0
        self._barrier_round = 0
        self._epoch_param_file = PARAM_FILE
        # Layered chaos plan (transfer faults, partitions, PS crashes, KV
        # windows).  Kept on the runner so every wiring site below reads
        # one place; None when the job is healthy.
        self._chaos: ChaosPlan | None = config.faults.chaos
        # Latest epoch-boundary checkpoint, the durable state a restarting
        # sole parameter server recovers from (see _restore_last_checkpoint).
        self._last_checkpoint: Checkpoint | None = None
        if resume_from is not None:
            self.rule.load_state_dict(resume_from.rule_state)
            self._param_publish_count = resume_from.publish_count

        # ---- data ------------------------------------------------------
        data_rng = self.rngs.stream("data")
        self.train_set, self.val_set, self.test_set = make_classification_splits(
            config.data,
            data_rng,
            num_train=config.num_train,
            num_val=config.num_val,
            num_test=config.num_test,
            flat=config.flat_features,
        )

        # ---- model template and initial parameters ----------------------
        init_rng = self.rngs.stream("init")
        self._eval_model: Module = build_model(config.model, init_rng)
        self._template_state = self._eval_model.state_dict()
        self.warm_start_seconds = 0.0
        if config.warm_start_passes > 0 and resume_from is None:
            self._warm_start()
            self._template_state = self._eval_model.state_dict()
        # Zero-copy parameter plane: one cached layout drives every
        # pack/unpack for this model shape, and the eval model's live
        # arrays are bound once so evaluating a vector is a single
        # unpack_into (no per-call state-dict construction or validation).
        self._layout = StateLayout.for_state(self._template_state)
        self._eval_arrays = self._eval_model.state_arrays()
        initial_vec = self._layout.pack(self._eval_arrays)
        if resume_from is not None:
            # Recover the server parameter copy from the checkpoint (the
            # role the §III-D database plays after a server failure).
            if resume_from.params.size != initial_vec.size:
                raise TrainingError(
                    f"checkpoint has {resume_from.params.size} scalars but the "
                    f"model needs {initial_vec.size}; config mismatch?"
                )
            initial_vec = np.array(resume_from.params, dtype=np.float64)
            self._time_offset = resume_from.elapsed_s
        self.param_size = initial_vec.size
        self._param_raw_bytes = initial_vec.nbytes
        self._param_wire_bytes = int(initial_vec.nbytes * PARAM_COMPRESSION_RATIO)

        # ---- transfer codec plane (DESIGN.md codec section) ---------------
        # None keeps the historical fixed-ratio accounting byte-for-byte;
        # a configured codec replaces publish/upload wire sizes with
        # measured encoded sizes and (for lossy codecs) makes clients
        # train on the decoded copies.  Error feedback is disabled under
        # replication: sibling replicas must decode bit-identically.
        self._codec_plane: ParamCodecPlane | None = None
        if config.codec is not None:
            self._codec_plane = ParamCodecPlane(
                config.codec,
                layout=self._layout,
                trace=self.trace,
                now_fn=lambda: self.sim.now,
                topk_fraction=config.codec_topk,
                quant=config.codec_quant,
                error_feedback=config.replicas == 1,
            )
            if resume_from is not None:
                self._codec_plane.load_state_dict(resume_from.codec_state)
        # Snapshot of the process-global compressed_size memo stats, so
        # finalize can report this run's hits/misses to the (digest-
        # excluded) obs metrics registry.
        self._compressed_size_stats0 = compressed_size_cache_stats()

        # ---- parameter store --------------------------------------------
        if config.store_kind == "eventual":
            self.store = EventualStore(
                self.sim, redis_like_latency(), name="redis", trace=self.trace
            )
        else:
            self.store = StrongStore(
                self.sim, mysql_like_latency(), name="mysql", trace=self.trace
            )
        self.store.put_now(PARAM_KEY, initial_vec)
        if self._chaos is not None and self._chaos.kv_windows:
            self.store.set_fault_windows(self._chaos.kv_windows)

        # ---- server-side compute (PS workers share these cores) ----------
        from ..simulation.resources import ComputeResource

        ps_spec = replace(
            config.server_spec,
            name="ps-cores",
            vcpus=config.ps_effective_cores,
        )
        self.server_cpu = ComputeResource(self.sim, ps_spec, contention=0.15)

        # ---- validation subsample used for per-update accuracy -----------
        k = min(config.val_eval_subsample, len(self.val_set))
        self._val_x = self.val_set.x[:k]
        self._val_y = self.val_set.y[:k]

        # ---- parameter-server pool ----------------------------------------
        pool_kwargs = dict(
            sim=self.sim,
            num_servers=config.num_param_servers,
            store=self.store,
            rule=self.rule,
            server_cpu=self.server_cpu,
            evaluate_fn=self._evaluate_vec,
            republish_fn=self._republish_params,
            validation_work_units=config.validation_work_units,
            param_nbytes=self._param_wire_bytes,
            trace=self.trace,
        )
        if config.ps_autoscale:
            policy = config.autoscale_policy
            if policy is not None and not isinstance(policy, AutoscalePolicy):
                raise TrainingError(
                    "autoscale_policy must be an AutoscalePolicy or None"
                )
            self.pool: ParameterServerPool = AutoscalingPool(
                policy=policy, **pool_kwargs
            )
        else:
            self.pool = ParameterServerPool(**pool_kwargs)
        self.pool.on_total_outage_restart = self._restore_last_checkpoint
        if self._chaos is not None:
            self._schedule_ps_chaos(self._chaos)

        # ---- optional replication quorum in front of the pool -------------
        self.quorum: QuorumAssimilator | None = None
        assimilator: object = self.pool
        if config.replicas > 1:
            self.quorum = QuorumAssimilator(
                inner=self.pool,
                config=QuorumConfig(
                    replicas=config.replicas,
                    min_quorum=config.quorum,
                    collusion_aware=config.collusion_guard,
                ),
                trace=self.trace,
                sim=self.sim,
            )
            self.quorum.on_decided = self._cancel_sibling_replicas
            assimilator = self.quorum

        # ---- BOINC server ----------------------------------------------------
        validator = ParameterValidator(
            expected_size=self.param_size,
            max_norm=config.max_param_norm,
            trace=self.trace,
        )
        transfer_faults = None
        partitions = None
        if self._chaos is not None:
            if self._chaos.transfer.active:
                transfer_faults = self._chaos.transfer
            if self._chaos.partitions:
                partitions = PartitionSchedule(self._chaos.partitions)
        self.server = BoincServer(
            sim=self.sim,
            assimilator=assimilator,
            validator=validator,
            scheduler_config=SchedulerConfig(
                timeout_s=config.subtask_timeout_s,
                max_attempts=config.max_attempts,
                affinity_enabled=config.affinity_enabled,
                reliability_enabled=config.reliability_enabled,
                heartbeats_enabled=config.heartbeats_enabled,
                queue_impl=config.sched_queue_impl,
                work_fetch=config.work_fetch,
                quarantine_after=config.quarantine_after,
            ),
            compression_enabled=config.compression_enabled,
            trace=self.trace,
            transfer_faults=transfer_faults,
            partitions=partitions,
        )
        if self._codec_plane is not None:
            # Per-client download pricing + completed-download hooks
            # (delta chains, sticky parameter versions, net.decode).
            self.server.web.transfer_model.codec_plane = self._codec_plane
        self.server.on_assimilated = self._on_assimilated
        # Ping-mode sleep hints fold in assimilation backpressure: an idle
        # fleet slows its polling while the merge pipeline is saturated.
        self.server.scheduler.backpressure_fn = self.pool.backpressure_s
        if self.quorum is not None:
            # Credit follows the replica-group verdict (median of the
            # winning clique's claims; losers denied), and collusion-aware
            # selection reads the scheduler's per-host reliability EWMA.
            self.server.enable_quorum_credit(self.quorum)
            self.quorum.reliability_fn = (
                lambda host: self.server.scheduler.register_client(host).reliability
            )
        # Invalidated results feed the reliability/quarantine loop only
        # when a Byzantine defense asked for it — the historical path never
        # let validator rejects perturb scheduling.
        self.server.invalid_feedback = (
            config.quarantine_after > 0 or config.collusion_guard
        )

        # ---- work generator ---------------------------------------------------
        self.work_generator = WorkGenerator(
            job_id="job",
            catalog=self.server.catalog,
            train_set=self.train_set,
            num_shards=config.num_shards,
            model_spec_json=config.model.to_json(),
            timeout_s=config.subtask_timeout_s,
            work_units_per_subtask=config.work_units_per_subtask,
            max_attempts=config.max_attempts,
            rng=self.rngs.stream("workgen"),
        )
        if config.server_planes > 1:
            # Sharded server planes: minting is partitioned by logical-id
            # hash with per-plane RNG streams, and epoch cut-over is
            # coordinated through the KV store (see boinc.server_plane).
            self.work_generator = ShardedWorkGenerator(
                inner=self.work_generator,
                planes=config.server_planes,
                store=self.store,
                sim=self.sim,
                trace=self.trace,
                plane_rngs=[
                    self.rngs.stream(f"workgen:plane{p}")
                    for p in range(config.server_planes)
                ],
            )
            self.server.validator = ShardedValidatorPool(
                [
                    ParameterValidator(expected_size=self.param_size, trace=self.trace)
                    for _ in range(config.server_planes)
                ]
            )
        self._republish_params(initial_vec)

        # ---- multi-core execution plane (DESIGN.md §8.5) ------------------------
        # Built only when cohorts or step fan-out are requested: with the
        # defaults (1/1) no dispatcher exists and every subtask takes the
        # fully inline legacy path, byte-for-byte.
        self._dispatcher: StepDispatcher | None = None
        # Steps pre-submitted at compute start, keyed by (wu_id, client):
        # popped when the executor runs at compute end, pruned at epoch
        # boundaries for attempts that aborted mid-compute.
        self._prepared: dict[tuple[str, str], object] = {}
        if config.cohort_size > 1 or config.step_jobs > 1:
            wg = self.work_generator
            shards = (
                wg.inner.shards
                if isinstance(wg, ShardedWorkGenerator)
                else wg.shards
            )
            self._dispatcher = StepDispatcher(
                model_spec=config.model,
                shards=shards,
                local=config.local_training,
                collect_gradient=self.rule.uses_gradient,
                cohort_size=config.cohort_size,
                jobs=config.step_jobs,
            )

        # ---- adversary fabric (Byzantine clients) -------------------------------
        # Built before the fleet so behaviour assignments resolve against
        # the client ids about to be launched.  None (no plan / empty
        # plan) keeps the run bit-identical to a fabric-free build: honest
        # clients never touch this object.
        adv_plan = config.faults.adversary
        self._adversary: AdversaryFabric | None = None
        if adv_plan is not None and adv_plan.active:
            self._adversary = AdversaryFabric(adv_plan, self.rngs, self.trace)

        # ---- client fleet ------------------------------------------------------
        self._client_models: dict[str, Module] = {}
        self._client_arrays: dict[str, dict[str, np.ndarray]] = {}
        self._client_counter = 0
        self.preemptions = 0
        for i in range(config.num_clients):
            self._launch_client(config.spec_for_client(i))
        if self._adversary is not None:
            # Sybil fleets join after the honest fleet: many logical
            # clients behind one adversary identity (§II-A open enrollment
            # means the server cannot tell them apart from volunteers).
            for fleet in adv_plan.sybils:
                for k in range(fleet.count):
                    sid = f"sybil-{fleet.identity}-{k:03d}"
                    self._adversary.register_sybil(fleet, sid)
                    self._launch_client(
                        config.spec_for_client(config.num_clients + k),
                        client_id=sid,
                    )
                    self.trace.emit(
                        self.sim.now,
                        "adv.sybil_joined",
                        client=sid,
                        identity=fleet.identity,
                    )
        self._volunteers_joined = 0
        if config.faults.volunteer_arrivals_per_hour > 0:
            self._schedule_next_volunteer()

        # ---- epoch bookkeeping ---------------------------------------------------
        self._current_epoch = 0  # 0-based internally; reported 1-based
        self._epoch_workunits: list[Workunit] = []
        self._epoch_assimilated = 0
        if config.update_rule is None:
            # Legacy label: default VC-ASGD runs keep the paper's
            # "PnCnTn:alpha=..." shorthand (result tables/sweeps rely on it).
            label = f"{config.label}:{config.alpha_schedule.describe()}"
        else:
            label = f"{config.label}:{self.rule.describe()}"
        if resume_from is not None:
            self._current_epoch = resume_from.epochs_completed
            self.result = resume_from.seed_result()
            self.result.label = self.result.label or label
            if self._current_epoch >= config.max_epochs:
                raise TrainingError(
                    "checkpoint already covers max_epochs; raise max_epochs to resume"
                )
        else:
            self.result = RunResult(label=label)
        if self._chaos is not None and self._chaos.ps_crashes:
            # Epoch-0 checkpoint: even a crash before the first epoch
            # boundary has durable state to recover from.
            self._last_checkpoint = self.checkpoint()

    def _warm_start(self) -> None:
        """Downpour-style warm start (§II-B): serial passes before
        distributing.  Runs on the (simulated) server instance; the clock
        advances by the corresponding serial-training time."""
        cfg = self.config
        lt = cfg.local_training
        if lt.optimizer == "adam":
            opt = Adam(self._eval_model.parameters(), lr=lt.learning_rate)
        else:
            opt = SGD(self._eval_model.parameters(), lr=lt.learning_rate)
        loader = BatchLoader(
            self.train_set, lt.batch_size, rng=self.rngs.stream("warmstart")
        )
        self._eval_model.train()
        for _ in range(cfg.warm_start_passes):
            for xb, yb in loader:
                self._eval_model.zero_grad()
                loss = cross_entropy(self._eval_model(Tensor(xb)), yb)
                loss.backward()
                opt.step()
        # Time model: one pass over the full data costs the same work as
        # one epoch's subtasks spread over the server's cores.
        per_pass = (
            cfg.num_shards * cfg.work_units_per_subtask / lt.local_epochs
        ) / cfg.server_spec.total_rate
        self.warm_start_seconds = cfg.warm_start_passes * per_pass
        self.sim.schedule(self.warm_start_seconds, lambda: None, label="warmstart")
        self.sim.run(until=self.warm_start_seconds)
        self.trace.emit(
            self.sim.now, "warmstart.done", passes=cfg.warm_start_passes
        )

    # ------------------------------------------------------------------
    # Client fleet management
    # ------------------------------------------------------------------
    def _launch_client(self, spec, client_id: str | None = None) -> ClientDaemon:
        if client_id is None:
            cid = f"client-{self._client_counter:03d}"
            self._client_counter += 1
        else:
            cid = client_id
        cache_cap = 8e9 if self.config.sticky_files_enabled else 1.0
        link = spec.default_link()
        if self.config.congestion is not None:
            if not isinstance(self.config.congestion, CongestionSchedule):
                raise TrainingError(
                    "config.congestion must be a CongestionSchedule or None"
                )
            link = CongestedLink(link, self.config.congestion)
        client = ClientDaemon(
            client_id=cid,
            sim=self.sim,
            spec=spec,
            scheduler=self.server.scheduler,
            web=self.server.web,
            executor=self._execute_subtask,
            max_concurrent=self.config.max_concurrent_subtasks,
            link=link,
            rng=self.rngs.stream(f"net:{cid}"),
            cache_capacity_bytes=cache_cap,
            trace=self.trace,
        )
        if self._dispatcher is not None:
            client.on_train_start = self._prepare_subtask
        self.server.attach_client(client)
        if self.config.faults.preemption_hourly_p > 0:
            lifetime = ExponentialLifetime(self.config.faults.preemption_hourly_p)
            ttl = lifetime.sample_lifetime(self.rngs.stream(f"preempt:{cid}"))
            if np.isfinite(ttl):
                self.sim.schedule(ttl, lambda c=client, s=spec: self._preempt(c, s))
        return client

    def _schedule_next_volunteer(self) -> None:
        """Poisson arrivals of volunteer hosts (§II-A churn).

        Each arrival launches a fresh client (round-robin spec); arrivals
        stop at ``max_volunteers`` extra hosts.
        """
        faults = self.config.faults
        if (
            faults.max_volunteers
            and self._volunteers_joined >= faults.max_volunteers
        ):
            return
        rate_per_s = faults.volunteer_arrivals_per_hour / 3600.0
        gap = float(self.rngs.stream("volunteers").exponential(1.0 / rate_per_s))

        def arrive() -> None:
            self._volunteers_joined += 1
            spec = self.config.spec_for_client(self._client_counter)
            client = self._launch_client(spec)
            self.trace.emit(
                self.sim.now, "fleet.volunteer_joined", client=client.client_id
            )
            client.poll_for_work()
            self._schedule_next_volunteer()

        self.sim.schedule(gap, arrive, label="fleet:volunteer-arrival")

    def _preempt(self, client: ClientDaemon, spec) -> None:
        if not client.alive:
            return
        self.preemptions += 1
        self.trace.emit(self.sim.now, "fleet.preemption", client=client.client_id)
        client.terminate()
        delay = self.config.faults.relaunch_delay_s
        if delay is not None:
            def relaunch() -> None:
                fresh = self._launch_client(spec)
                fresh.poll_for_work()

            self.sim.schedule(delay, relaunch, label="fleet:relaunch")

    # ------------------------------------------------------------------
    # Client-side subtask execution (real training)
    # ------------------------------------------------------------------
    def _client_model(self, client_id: str) -> Module:
        model = self._client_models.get(client_id)
        if model is None:
            # Architecture comes from the downloaded spec; weights will be
            # overwritten by the downloaded parameter file, so the init RNG
            # here only needs to be deterministic, not meaningful.
            model = build_model(self.config.model, self.rngs.fresh(f"model:{client_id}"))
            self._client_models[client_id] = model
            # Bind the model's live storage to the layout once; optimizer
            # steps mutate these arrays strictly in place, so the binding
            # stays valid for the client's lifetime.
            self._client_arrays[client_id] = model.state_arrays()
        return model

    def _deferrable(self, client_id: str) -> bool:
        """Whether this client's step may run after submit time.

        Corrupt-designated clients scale their upload noise by the trained
        vector, and compromised clients draw tamper RNG per call — both
        must compute inline, in the serial schedule's RNG order.  Everyone
        else's step is RNG-free once the batch orders are drawn.
        """
        if self._adversary is not None and self._adversary.compromised(client_id):
            return False
        faults = self.config.faults
        if faults.corrupt_clients > 0 and client_id.startswith("client-"):
            try:
                index = int(client_id.rsplit("-", 1)[1])
            except (IndexError, ValueError):  # pragma: no cover - ids are ours
                return True
            if index < faults.corrupt_clients:
                return False
        return True

    def _draw_orders(self, wu: Workunit, client_id: str, n: int) -> list[np.ndarray]:
        """Pre-draw the subtask's batch permutations.

        Both branches key the generator by the *attempt*, never by draw
        order, so the permutations are independent of when in simulated
        time the draw happens.  That invariance is what lets the deferred
        execution plane (DESIGN.md §8.5) draw at compute start while the
        inline path draws at compute end, with bit-identical results —
        including runs with preemptions, timeouts and reissues.
        """
        cfg = self.config.local_training
        if self.config.replicas > 1:
            # Replicas must be bit-reproducible across hosts: derive the
            # batch order from the logical workunit, not from the client.
            batch_rng = self.rngs.fresh(f"batches:{logical_id(wu.wu_id)}")
        else:
            batch_rng = self.rngs.fresh(f"batches:{wu.wu_id}:{client_id}")
        return draw_batch_orders(batch_rng, n, cfg.local_epochs)

    def _prepare_subtask(self, wu: Workunit, payloads: dict) -> None:
        """Compute-start hook (deferred mode only): open the batching window.

        Draws the step's batch orders and queues the RNG-free compute with
        the dispatcher, so every subtask training concurrently over this
        simulated interval can fuse into one cohort.  Batch orders are
        keyed per attempt (see :meth:`_draw_orders`), so drawing here —
        rather than at compute end like the inline path — cannot shift
        any other attempt's permutations; the run stays bit-identical to
        serial even across preemptions and timeouts (DESIGN.md §8.5).
        """
        client_id = wu.current_attempt.client_id
        if not self._deferrable(client_id):
            return
        published: VersionedParams = payloads[wu.input_files[1]]
        shard: Dataset = payloads[self.work_generator.shard_file_name(wu.shard_index)]
        orders = self._draw_orders(wu, client_id, len(shard))
        task = self._dispatcher.submit(published.params, wu.shard_index, orders)
        self._prepared[(wu.wu_id, client_id)] = task

    def _execute_subtask(self, wu: Workunit, payloads: dict) -> tuple[object, int]:
        """Train on the shard starting from the downloaded server params.

        Returns a :class:`ClientUpdate` carrying the new parameter copy,
        the base publish version it trained from and — only when the job's
        rule consumes gradients — the accumulated local gradient.  With
        the multi-core execution plane enabled the return value is a
        :class:`DeferredUpdate` instead, wrapping the step pre-submitted
        at compute start; the compute materializes when the upload is
        accepted.
        """
        cfg = self.config.local_training
        client_id = wu.current_attempt.client_id
        published: VersionedParams = payloads[wu.input_files[1]]  # the parameter file
        param_vec = published.params
        self._wu_base_version[wu.wu_id] = published.version
        shard: Dataset = payloads[self.work_generator.shard_file_name(wu.shard_index)]
        if self._dispatcher is not None and self._deferrable(client_id):
            task = self._prepared.pop((wu.wu_id, client_id), None)
            if task is None:  # pragma: no cover - hook installed with dispatcher
                task = self._dispatcher.submit(
                    param_vec,
                    wu.shard_index,
                    self._draw_orders(wu, client_id, len(shard)),
                )
            deferred = DeferredUpdate(
                dispatcher=self._dispatcher,
                task=task,
                client_id=client_id,
                base_version=published.version,
            )
            return deferred, self._param_wire_bytes
        orders = self._draw_orders(wu, client_id, len(shard))
        model = self._client_model(client_id)
        new_vec, gradient = run_local_step(
            model,
            self._client_arrays[client_id],
            self._layout,
            param_vec,
            shard,
            orders,
            batch_size=cfg.batch_size,
            optimizer=cfg.optimizer,
            learning_rate=cfg.learning_rate,
            collect_gradient=self.rule.uses_gradient,
        )
        new_vec = self._maybe_corrupt(client_id, new_vec)
        claimed: float | None = None
        if self._adversary is not None and self._adversary.compromised(client_id):
            tampered = self._adversary.tamper(
                client_id=client_id,
                wu_id=wu.wu_id,
                logical_id=logical_id(wu.wu_id),
                base_params=param_vec,
                honest_params=new_vec,
                honest_gradient=gradient,
                honest_credit=wu.work_units,
                now=self.sim.now,
            )
            new_vec = tampered.params
            gradient = tampered.gradient
            claimed = tampered.claimed_credit
        update = ClientUpdate(
            client_id=client_id,
            params=new_vec,
            gradient=gradient,
            base_version=published.version,
            claimed_credit=claimed,
        )
        if self._codec_plane is not None:
            return self._codec_plane.encode_upload(update, param_vec, wu.wu_id)
        return update, self._param_wire_bytes

    def _maybe_corrupt(self, client_id: str, vec: np.ndarray) -> np.ndarray:
        """Fault injection: designated clients upload perturbed parameters.

        Corruption is *subtle* (finite, bounded noise) so it passes the
        validator's sanity checks — exactly the threat replication with
        quorum exists to catch.
        """
        faults = self.config.faults
        if faults.corrupt_clients == 0:
            return vec
        if not client_id.startswith("client-"):
            # Sybils and volunteers are never in the corrupt-index range.
            return vec
        try:
            index = int(client_id.rsplit("-", 1)[1])
        except (IndexError, ValueError):  # pragma: no cover - ids are ours
            return vec
        if index >= faults.corrupt_clients:
            return vec
        rng = self.rngs.stream(f"corrupt:{client_id}")
        scale = faults.corruption_scale * float(np.abs(vec).mean())
        self.trace.emit(self.sim.now, "fault.corrupt_upload", client=client_id)
        return vec + rng.normal(scale=max(scale, 1e-12), size=vec.shape)

    # ------------------------------------------------------------------
    # Server-side hooks
    # ------------------------------------------------------------------
    def _evaluate_vec(self, vec: np.ndarray) -> tuple[float, float]:
        """Validation loss/accuracy of a parameter vector (real eval)."""
        self._layout.unpack_into(vec, self._eval_arrays)
        return evaluate_classifier(self._eval_model, self._val_x, self._val_y)

    def _test_accuracy(self, vec: np.ndarray) -> float:
        self._layout.unpack_into(vec, self._eval_arrays)
        _, acc = evaluate_classifier(self._eval_model, self.test_set.x, self.test_set.y)
        return acc

    def _republish_params(self, vec: np.ndarray) -> None:
        """Expose the merged server copy as the downloadable parameter file."""
        self._param_publish_count += 1
        # The pool flags which workunit's merge is being republished while
        # its republish_fn runs; initial/restore publishes carry no source.
        source_wu = getattr(getattr(self, "pool", None), "publishing_wu", None)
        fields: dict = {"version": self._param_publish_count}
        if source_wu is not None:
            fields["wu"] = source_wu
        self.trace.emit(self.sim.now, "params.publish", **fields)
        if self._codec_plane is None:
            payload_vec, wire = vec, self._param_wire_bytes
        else:
            # Lossy codecs publish the *decoded* copy — what clients will
            # actually train on — so staleness snapshots and quorum
            # agreement see exactly the downloaded bytes.
            payload_vec, wire = self._codec_plane.encode_publish(
                vec, self._param_publish_count
            )
        self.rule.snapshot_sent(self._param_publish_count, payload_vec)
        self.server.catalog.publish(
            ServerFile(
                name=PARAM_FILE,
                payload=VersionedParams(payload_vec, self._param_publish_count),
                raw_size=self._param_raw_bytes,
                compressed_size=wire,
                sticky=False,
            )
        )

    def _schedule_ps_chaos(self, plan: ChaosPlan) -> None:
        """Install the plan's parameter-server crash/restart schedule.

        Crash times are seconds from run start; each crash's restart (when
        configured) brings up a replacement worker after its delay.
        """
        for crash in plan.ps_crashes:
            self.sim.schedule(
                crash.at_s, self.pool.crash_server, label="chaos:ps-crash"
            )
            if crash.restart_delay_s is not None:
                self.sim.schedule(
                    crash.at_s + crash.restart_delay_s,
                    self.pool.restart_server,
                    label="chaos:ps-restart",
                )

    def _restore_last_checkpoint(self) -> None:
        """Recover the server copy after a total parameter-server outage.

        A restarting sole server has no live peers to adopt from; its
        durable state is the latest epoch checkpoint (the §III-D database
        role).  The checkpoint round-trips through its serialized form, so
        the digest verification of the recovery path is exercised on every
        restore, then the restored vector is written to the store and
        republished for download.
        """
        if self._chaos is None or not self._chaos.restore_from_checkpoint:
            return
        if self._last_checkpoint is None:
            return
        restored = Checkpoint.from_bytes(self._last_checkpoint.to_bytes())
        vec = np.array(restored.params, dtype=np.float64)
        self.store.put_now(PARAM_KEY, vec)
        self.rule.load_state_dict(restored.rule_state)
        self._republish_params(vec)
        self.trace.emit(
            self.sim.now,
            "ps.restore",
            epochs_completed=restored.epochs_completed,
        )

    def _cancel_sibling_replicas(self, logical: str) -> None:
        """Quorum reached: abort the outstanding sibling replicas so their
        hosts stop burning cycles (BOINC's redundant-result cancellation)."""
        from ..boinc.replication import replica_id

        for replica in range(self.config.replicas):
            wu_id = replica_id(logical, replica)
            try:
                wu = self.server.scheduler.get_workunit(wu_id)
            except SchedulerError:
                continue
            if wu.is_terminal or wu.state is WorkunitState.VALIDATING:
                continue
            computing_client = self.server.scheduler.cancel_workunit(wu_id)
            if computing_client is not None:
                client = self.server.clients.get(computing_client)
                if client is not None and client.alive:
                    client.abort_workunit(wu_id)
        self.server.poke_clients()

    def _on_assimilated(self, wu: Workunit) -> None:
        if wu.epoch == self._current_epoch:
            self._epoch_assimilated += 1
        base = self._wu_base_version.pop(wu.wu_id, None)
        if base is not None:
            self.staleness_samples.append(self._param_publish_count - base)

    # ------------------------------------------------------------------
    # Epoch loop
    # ------------------------------------------------------------------
    def _publish_epoch(self) -> None:
        param_file = PARAM_FILE
        if self.config.replicas > 1:
            # BOINC workunit input files are immutable: with replication the
            # epoch's subtasks reference a *frozen* parameter copy so that
            # sibling replicas are bit-reproducible and can reach quorum.
            param_file = f"{PARAM_FILE}:e{self._current_epoch:03d}"
            frozen = self.pool.current_params().copy()
            if self._codec_plane is None:
                frozen_payload, frozen_wire = frozen, self._param_wire_bytes
            else:
                # Frozen copies encode like any publish but do not advance
                # the delta chain: they alias the current publish version.
                frozen_payload, frozen_wire = self._codec_plane.encode_publish(
                    frozen, self._param_publish_count, frozen=True
                )
            self.server.catalog.publish(
                ServerFile(
                    name=param_file,
                    payload=VersionedParams(frozen_payload, self._param_publish_count),
                    raw_size=self._param_raw_bytes,
                    compressed_size=frozen_wire,
                    sticky=False,
                )
            )
        self._epoch_param_file = param_file
        self._barrier_round = 0
        self._epoch_assimilated = 0
        self.obs.timer("run.epoch").start()
        if isinstance(self.work_generator, ShardedWorkGenerator):
            # Sharded planes: the workunit list is known synchronously, but
            # publication waits for every plane's KV cut-over marker.
            self._epoch_workunits = self.work_generator.generate_epoch(
                self._current_epoch,
                param_file,
                replicas=self.config.replicas,
                publish=self.server.publish_workunits,
            )
        else:
            self._epoch_workunits = self.work_generator.make_epoch(
                self._current_epoch, param_file, replicas=self.config.replicas
            )
            self.server.publish_workunits(self._epoch_workunits)
        self.trace.emit(self.sim.now, "epoch.start", epoch=self._current_epoch)

    def _epoch_complete(self) -> bool:
        if not all(wu.is_terminal for wu in self._epoch_workunits):
            return False
        done = sum(
            1 for wu in self._epoch_workunits if wu.state is WorkunitState.DONE
        )
        return self._epoch_assimilated >= done

    def _missing_shard_indices(self) -> list[int]:
        """Shards whose logical subtask produced no accepted result this
        epoch (every replica failed permanently)."""
        covered = {
            wu.shard_index
            for wu in self._epoch_workunits
            if wu.state is WorkunitState.DONE
        }
        wanted = {wu.shard_index for wu in self._epoch_workunits}
        return sorted(wanted - covered)

    def _barrier_blocked(self) -> bool:
        """Handle an incomplete barrier for a fault-intolerant rule.

        EASGD and BSP AllReduce need *every* shard's update each epoch
        (§II-B: the schemes the paper's VC-ASGD replaces precisely because
        volunteers vanish).  When shards failed permanently, reissue
        replacement workunits (a real BOINC server would keep the epoch
        open); after ``MAX_BARRIER_RETRIES`` rounds the barrier is declared
        permanently stalled.  Returns True when the epoch must keep
        running.
        """
        if self.rule.fault_tolerant:
            return False
        missing = self._missing_shard_indices()
        if not missing:
            return False
        if self._barrier_round >= MAX_BARRIER_RETRIES:
            raise TrainingError(
                f"{self.rule.describe()} barrier stalled: shards {missing} "
                f"of epoch {self._current_epoch + 1} failed permanently "
                f"after {self._barrier_round} reissue rounds; "
                "fault-intolerant rules need an update from every subtask"
            )
        self._barrier_round += 1
        self.barrier_stalls += 1
        retries = self.work_generator.make_retries(
            self._current_epoch,
            self._epoch_param_file,
            missing,
            round_index=self._barrier_round,
            replicas=self.config.replicas,
        )
        self._epoch_workunits.extend(retries)
        self.server.publish_workunits(retries)
        self.trace.emit(
            self.sim.now,
            "epoch.barrier_stall",
            epoch=self._current_epoch,
            missing=len(missing),
            round=self._barrier_round,
        )
        return True

    def _record_epoch(self) -> EpochRecord:
        epoch = self._current_epoch
        succeeded = [
            wu for wu in self._epoch_workunits if wu.state is WorkunitState.DONE
        ]
        if not succeeded:
            rejected = self.server.validator.rejected
            hint = (
                f"{rejected} result(s) failed validation — the update rule "
                "may have diverged (try a smaller server_lr)"
                if rejected
                else "check fault configuration"
            )
            raise TrainingError(
                f"epoch {epoch + 1}: every subtask failed permanently; {hint}"
            )
        mean, lo, hi = self.pool.epoch_accuracy_summary(epoch)
        current = self.pool.current_params()
        # Prune staleness tags for terminal workunits that never assimilated
        # (errored, cancelled replicas): without this the map grows for the
        # whole run.
        for wu in self._epoch_workunits:
            self._wu_base_version.pop(wu.wu_id, None)
        if self._prepared:
            # Pre-submitted steps whose attempts aborted mid-compute never
            # reached the executor; drop them so the dispatcher stops
            # holding their base parameter copies.
            epoch_ids = {wu.wu_id for wu in self._epoch_workunits}
            for key in [k for k in self._prepared if k[0] in epoch_ids]:
                self._dispatcher.discard(self._prepared.pop(key))
        record = EpochRecord(
            epoch=epoch + 1,
            end_time_s=self.sim.now + self._time_offset,
            val_accuracy_mean=mean,
            val_accuracy_min=lo,
            val_accuracy_max=hi,
            test_accuracy=self._test_accuracy(current),
            alpha=self.config.alpha_schedule.alpha_at(epoch + 1),
            assimilations=self._epoch_assimilated,
            timeouts_so_far=self.server.scheduler.timeouts,
            lost_updates_so_far=getattr(self.store, "lost_updates", 0),
        )
        self.trace.emit(
            self.sim.now, "epoch.end", epoch=epoch, accuracy=mean, spread=hi - lo
        )
        self.obs.timer("run.epoch").stop()
        return record

    def run(self) -> RunResult:
        """Execute the full training job; returns the per-epoch results."""
        try:
            return self._run()
        finally:
            if self._dispatcher is not None:
                self._dispatcher.shutdown()

    def _run(self) -> RunResult:
        config = self.config
        self.obs.timer("run.total").start()
        self._publish_epoch()
        while True:
            progressed = self.sim.step()
            if not progressed:
                raise TrainingError(
                    "simulation stalled: no events pending but the epoch "
                    f"{self._current_epoch + 1} is incomplete "
                    f"(unsent={self.server.scheduler.unsent_count()}, "
                    f"in_progress={self.server.scheduler.in_progress_count()})"
                )
            if not self._epoch_complete():
                continue
            if self._barrier_blocked():
                continue
            record = self._record_epoch()
            self.result.append(record)
            if self._chaos is not None and self._chaos.ps_crashes:
                self._last_checkpoint = self.checkpoint()
            reached_target = (
                config.target_accuracy is not None
                and record.val_accuracy_mean >= config.target_accuracy
            )
            if reached_target:
                self.result.stopped_reason = "target_accuracy"
                break
            if self._current_epoch + 1 >= config.max_epochs:
                self.result.stopped_reason = "max_epochs"
                break
            self._current_epoch += 1
            self._publish_epoch()
        self.obs.timer("run.total").stop()
        self._finalize_counters()
        # Always-on audit: the run only counts as successful if every
        # conservation law held (raises InvariantViolation otherwise).
        self.obs.finalize(self)
        return self.result

    def telemetry(self) -> dict:
        """Schema-versioned telemetry document for this (finished) run."""
        from ..obs.telemetry import build_run_telemetry

        return build_run_telemetry(self)

    def _finalize_counters(self) -> None:
        sched = self.server.scheduler
        self.result.counters = {
            "timeouts": sched.timeouts,
            "reissues": sched.reissues,
            "cancellations": sched.cancellations,
            "heartbeats": sched.heartbeats,
            "preemptions": self.preemptions,
            "assimilations": self.pool.stats.processed,
            "lost_updates": getattr(self.store, "lost_updates", 0),
            "store_updates": self.store.updates,
            "bytes_down": self.server.web.bytes_down,
            "bytes_up": self.server.web.bytes_up,
            "cache_hits": sum(c.cache.hits for c in self.server.clients.values()),
            "cache_misses": sum(c.cache.misses for c in self.server.clients.values()),
            "volunteers_joined": self._volunteers_joined,
        }
        # Fleet-scale extras, gated on their configs so default ("poke",
        # single-plane) runs keep the pre-refactor counter set bit-for-bit.
        if self.config.work_fetch == "ping":
            self.result.counters["pings"] = sched.pings
        if isinstance(self.work_generator, ShardedWorkGenerator):
            self.result.counters["plane_cutovers"] = self.work_generator.cutovers
        if not self.rule.fault_tolerant:
            self.result.counters["barrier_stalls"] = self.barrier_stalls
        if self.staleness_samples:
            samples = np.asarray(self.staleness_samples)
            self.result.counters["mean_staleness_x100"] = int(
                round(100 * float(samples.mean()))
            )
            self.result.counters["max_staleness"] = int(samples.max())
        if isinstance(self.pool, AutoscalingPool):
            self.result.counters.update(
                {
                    "ps_scale_ups": self.pool.scale_ups,
                    "ps_scale_downs": self.pool.scale_downs,
                    "ps_final_workers": self.pool.num_servers,
                }
            )
        if self.quorum is not None:
            self.result.counters.update(
                {
                    "quorums_reached": self.quorum.quorums_reached,
                    "replica_disagreements": self.quorum.disagreements,
                    "replicas_discarded": self.quorum.discarded_extras,
                }
            )
        if self._chaos is not None and self._chaos.active:
            clients = self.server.clients.values()
            self.result.counters.update(
                {
                    "transfer_failures": self.server.web.transfers_failed,
                    "transfer_retries": sum(c.transfer_retries for c in clients),
                    "transfers_abandoned": sum(
                        c.transfers_abandoned for c in clients
                    ),
                    "bytes_wasted": self.server.web.bytes_wasted,
                    "net_partition_blocks": self.trace.count("net.partition"),
                    "ps_crashes": self.pool.crashes,
                    "ps_recoveries": self.pool.recoveries,
                    "ps_adoptions": self.pool.adoptions,
                    "kv_outage_blocks": self.store.outage_blocked_ops,
                    "kv_degraded_ops": self.store.degraded_ops,
                }
            )
        # Byzantine extras, gated identically: adversary-free, defense-free
        # runs keep their historical counter set bit-for-bit.
        if self._adversary is not None:
            self.result.counters.update(
                {
                    "adv_tampered_uploads": self._adversary.tampered_uploads,
                    "adv_inflated_claims": self._adversary.inflated_claims,
                }
            )
        if self.config.quarantine_after > 0:
            self.result.counters["hosts_quarantined"] = sched.hosts_quarantined
        if self.config.collusion_guard and self.quorum is not None:
            self.result.counters["quorums_failed"] = self.quorum.quorums_failed
        # Codec extras, gated identically: codec-free runs keep their
        # historical counter set bit-for-bit.  All integers derived from
        # encoded content — CPU times stay on the plane object.
        if self._codec_plane is not None:
            self.result.counters.update(self._codec_plane.counters())
        if self.obs.registry is not None:
            # Process-global compressed_size memo stats (digest-excluded:
            # the memo is shared across runs, so these are not
            # deterministic per run and must never enter counters).
            hits, misses = compressed_size_cache_stats()
            hits0, misses0 = self._compressed_size_stats0
            self.obs.registry.counter("serialization.compressed_size.hits").incr(
                hits - hits0
            )
            self.obs.registry.counter("serialization.compressed_size.misses").incr(
                misses - misses0
            )
            if self._codec_plane is not None:
                self.obs.registry.gauge("codec.encode_cpu_s").set(
                    self._codec_plane.encode_cpu_s
                )
                self.obs.registry.gauge("codec.decode_cpu_s").set(
                    self._codec_plane.decode_cpu_s
                )


    def checkpoint(self) -> Checkpoint:
        """Snapshot the job for later resumption (server-failure recovery).

        Captures the rule's internal state and the publish counter, so a
        restarted server resumes with delay compensation / staleness
        bookkeeping intact rather than silently reset.
        """
        return Checkpoint.from_result(
            self.result,
            self.pool.current_params(),
            rule_state=self.rule.state_dict(),
            publish_count=self._param_publish_count,
            codec_state=(
                self._codec_plane.state_dict()
                if self._codec_plane is not None
                else {}
            ),
        )


def run_experiment(
    config: TrainingJobConfig,
    resume_from: Checkpoint | None = None,
    observability: ObservabilityConfig | None = None,
) -> RunResult:
    """Convenience wrapper: build a runner and execute the job."""
    return DistributedRunner(
        config, resume_from=resume_from, observability=observability
    ).run()
