"""The paper's contribution: VC-ASGD and the distributed training pipeline."""

from . import baselines
from .autoscale import AutoscalePolicy, AutoscalingPool
from .checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from .job import FaultConfig, LocalTrainingConfig, TrainingJobConfig
from .parallel import default_jobs, run_configs
from .param_server import PARAM_KEY, AssimilationStats, ParameterServerPool
from .results import EpochRecord, RunResult
from .rules import (
    RULE_NAMES,
    ClientUpdate,
    DCASGDRule,
    DownpourRule,
    EASGDRule,
    RescaledASGDRule,
    SyncAllReduceRule,
    UpdateRule,
    VCASGDRule,
    make_rule,
)
from .runner import DistributedRunner, VersionedParams, run_experiment
from .sweep import Sweep, SweepPoint
from .vcasgd import (
    AlphaSchedule,
    CallableAlpha,
    ConstantAlpha,
    LinearAlpha,
    VarAlpha,
    epoch_recursion,
    vcasgd_merge,
)

__all__ = [
    "AutoscalePolicy",
    "AutoscalingPool",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "TrainingJobConfig",
    "LocalTrainingConfig",
    "FaultConfig",
    "ParameterServerPool",
    "AssimilationStats",
    "PARAM_KEY",
    "EpochRecord",
    "RunResult",
    "DistributedRunner",
    "VersionedParams",
    "run_experiment",
    "Sweep",
    "SweepPoint",
    "run_configs",
    "default_jobs",
    "ClientUpdate",
    "UpdateRule",
    "VCASGDRule",
    "DownpourRule",
    "EASGDRule",
    "DCASGDRule",
    "RescaledASGDRule",
    "SyncAllReduceRule",
    "RULE_NAMES",
    "make_rule",
    "AlphaSchedule",
    "ConstantAlpha",
    "VarAlpha",
    "LinearAlpha",
    "CallableAlpha",
    "vcasgd_merge",
    "epoch_recursion",
    "baselines",
]
