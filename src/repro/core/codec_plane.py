"""Codec plane: wires transfer codecs into the runner's wire paths.

The codecs themselves (``repro.nn.codecs``) are pure, stateless vector
transforms.  This module owns everything *stateful* about using them in
one run:

* **publish path** — every republished parameter file is encoded once;
  the decoded copy becomes the payload clients download and train on
  (simulation honesty: quantization error affects real training), and
  the measured encoded size becomes the file's wire size;
* **download path** — the delta codec keeps a bounded window of
  version-to-version XOR sizes; a client whose sticky cache records the
  last parameter version it fetched is charged only the chain of deltas
  between that version and the published one (full size when the chain
  left the window).  Each completed parameter download emits a
  ``net.decode`` record: the decode cost is paid client-side, per
  download, in the real system;
* **upload path** — exactly one vector crosses the wire per result
  (matching the historical accounting): the accumulated gradient for
  gradient-consuming rules, the parameter delta against the downloaded
  base for averaging rules.  Lossy codecs apply **error feedback**: the
  encode error is carried client-side as a residual and added to the
  next upload from the same client, so dropped/rounded mass is delayed,
  never lost.  Residuals are checkpointable (:meth:`state_dict`) and are
  disabled under replication, where sibling replicas must produce
  bit-identical decoded payloads to reach quorum.

Determinism contract: every counter is an integer derived from encoded
content, never from timing.  The ``encode_cpu_s``/``decode_cpu_s``
attributes are host wall-clock attributions for benchmarks and obs
metrics only — they must never reach ``RunResult.counters``, trace
fields, or any digested artifact.
"""

from __future__ import annotations

import time
from collections import OrderedDict

import numpy as np

from ..nn.codecs import DeltaCodec, TopKCodec, ZlibCodec, make_codec
from .rules import ClientUpdate

__all__ = ["ParamCodecPlane", "EncodedUpdate"]

# Versions retained in the delta-size window; older chains fall back to
# the full transfer.  One entry per publish: an int, so the window is
# tiny regardless of model size.
DELTA_WINDOW = 64
# Floor charged for a delta download whose chain is empty (client already
# holds the published version): headers still cross the wire.
DELTA_MIN_WIRE = 32


class EncodedUpdate:
    """Lazy wrapper for an encoded upload payload.

    The client uploads this object; when the scheduler accepts the result
    the client resolves it (the same ``resolve_update`` hook
    :class:`~repro.core.steps.DeferredUpdate` uses), which is the moment
    the *server* pays the decode — so the ``net.decode`` record lands at
    server-receipt time.  Upload retries reuse the payload object;
    resolution happens at most once.
    """

    __slots__ = ("_plane", "_resolved", "client_id", "wu_id")

    def __init__(
        self,
        plane: "ParamCodecPlane",
        resolved: ClientUpdate,
        client_id: str,
        wu_id: str,
    ) -> None:
        self._plane = plane
        self._resolved = resolved
        self.client_id = client_id
        self.wu_id = wu_id

    def resolve_update(self) -> ClientUpdate:
        self._plane._on_upload_decoded(self)
        return self._resolved


class ParamCodecPlane:
    """Per-run codec state: residuals, delta chains, counters, tracing."""

    def __init__(
        self,
        name: str,
        *,
        layout,
        trace=None,
        now_fn=None,
        topk_fraction: float = 0.01,
        quant: str = "fp32",
        error_feedback: bool = True,
        level: int = 6,
    ) -> None:
        self.name = name
        self.layout = layout
        self.trace = trace
        self.now = now_fn if now_fn is not None else (lambda: 0.0)
        if name == "topk":
            # Sparsification is an upload-side codec; broadcasts of the
            # full dense state go out at the zlib baseline.
            self.down_codec = ZlibCodec(level)
            self.up_codec = TopKCodec(topk_fraction, quant)
        else:
            self.down_codec = make_codec(name, topk_fraction, quant, level)
            self.up_codec = make_codec(name, topk_fraction, quant, level)
        self._delta = name == "delta"
        self._zlib = ZlibCodec(level)
        # Error feedback only makes sense for lossy uploads, and must be
        # off under replication (per-client residuals would make sibling
        # replicas' decoded payloads disagree).
        self.error_feedback = bool(error_feedback) and self.up_codec.lossy
        # Delta bookkeeping: the previous published vector and the wire
        # size of each version's XOR step against its predecessor.
        self._last_published: np.ndarray | None = None
        self._delta_window: "OrderedDict[int, int]" = OrderedDict()
        # Per-client error-feedback residuals (flat vectors).
        self._residuals: dict[str, np.ndarray] = {}
        # Integer counters — deterministic, safe for RunResult.counters.
        self.publishes = 0
        self.publish_raw_bytes = 0
        self.publish_wire_bytes = 0
        self.uploads = 0
        self.upload_raw_bytes = 0
        self.upload_wire_bytes = 0
        self.decodes = 0
        self.delta_chain_downloads = 0
        self.delta_full_downloads = 0
        # Host CPU attribution (benchmark/obs only; never digested).
        self.encode_cpu_s = 0.0
        self.decode_cpu_s = 0.0

    # -- publish / download paths -----------------------------------------

    def encode_publish(
        self, vec: np.ndarray, version: int, frozen: bool = False
    ) -> tuple[np.ndarray, int]:
        """Encode one published parameter file.

        Returns ``(payload_vec, wire_bytes)``: the vector clients will
        actually train on (the decoded copy for lossy codecs) and the
        file's wire size (for delta, the full-transfer fallback — the
        per-client chain price is computed at download time).  Frozen
        per-epoch replica copies are encoded identically but do not
        advance the delta chain (they alias the current version).
        """
        t0 = time.perf_counter()
        if self._delta:
            if not frozen:
                if self._last_published is not None:
                    step = self.down_codec.encode(
                        vec, self.layout, reference=self._last_published
                    )
                    self._delta_window[version] = step.nbytes
                    while len(self._delta_window) > DELTA_WINDOW:
                        self._delta_window.popitem(last=False)
                self._last_published = vec.copy()
            full = self._zlib.encode(vec)
            payload, wire = vec, full.nbytes
        else:
            enc = self.down_codec.encode(vec, self.layout)
            t1 = time.perf_counter()
            payload = self.down_codec.decode(enc)
            self.decode_cpu_s += time.perf_counter() - t1
            wire = enc.nbytes
        self.encode_cpu_s += time.perf_counter() - t0
        self.publishes += 1
        self.publish_raw_bytes += int(vec.nbytes)
        self.publish_wire_bytes += int(wire)
        if self.trace is not None:
            self.trace.emit(
                self.now(),
                "net.encode",
                direction="down",
                codec=self.name,
                version=version,
                raw=int(vec.nbytes),
                wire=int(wire),
            )
        return payload, int(wire)

    def download_wire_size(self, file, cache) -> int | None:
        """Per-client wire size override for a download, or None for the
        default (the file's published wire size).

        Only the delta codec prices per client: the chain of XOR steps
        between the client's cached parameter version and the published
        one, charged only while every step is still in the window.
        """
        if not self._delta:
            return None
        version = getattr(file.payload, "version", None)
        if version is None:
            return None  # shards, model specs: not parameter files
        full = int(file.compressed_size)
        base = getattr(cache, "param_version", None) if cache is not None else None
        if base is None:
            self.delta_full_downloads += 1
            return full
        lo, hi = (base, version) if base <= version else (version, base)
        chain = 0
        for v in range(lo + 1, hi + 1):
            step = self._delta_window.get(v)
            if step is None:
                self.delta_full_downloads += 1
                return full
            chain += step
        self.delta_chain_downloads += 1
        return min(max(chain, DELTA_MIN_WIRE), full)

    def on_downloaded(self, file, cache, client_id: str, wu_id: str) -> None:
        """Completed parameter download: record the client's new version
        (the reference future delta chains price against) and emit the
        client-side decode."""
        payload = file.payload
        version = getattr(payload, "version", None)
        if version is None:
            return
        if cache is not None:
            prev = getattr(cache, "param_version", None)
            cache.param_version = version if prev is None else max(prev, version)
        self.decodes += 1
        if self.trace is not None:
            self.trace.emit(
                self.now(),
                "net.decode",
                direction="down",
                codec=self.name,
                client=client_id,
                wu=wu_id,
                raw=int(payload.params.nbytes),
            )

    # -- upload path -------------------------------------------------------

    def encode_upload(
        self, update: ClientUpdate, base_vec: np.ndarray, wu_id: str
    ) -> tuple[object, int]:
        """Encode one result upload; returns ``(payload, wire_bytes)``.

        Exactly one vector is charged to the wire, matching the
        historical accounting: the accumulated gradient when the rule
        consumes gradients, else the parameter delta against the base the
        client trained from.  Lossy codecs return an
        :class:`EncodedUpdate` whose resolution yields the *decoded*
        update — what the server actually receives.
        """
        t0 = time.perf_counter()
        gradient_stream = update.gradient is not None
        raw_nbytes = int(
            (update.gradient if gradient_stream else update.params).nbytes
        )
        if not self.up_codec.lossy:
            if self._delta and not gradient_stream:
                # Both sides hold the base (the server published it), so
                # the upload is the XOR of the new parameters against it.
                enc = self.up_codec.encode(
                    update.params, self.layout, reference=base_vec
                )
            else:
                # The zlib baseline compresses the uploaded result file
                # itself (gradient or full parameter copy), not a delta.
                uploaded = update.gradient if gradient_stream else update.params
                enc = self._zlib.encode(np.ascontiguousarray(uploaded))
            wire = enc.nbytes
            payload: object = update
        else:
            vector = (
                update.gradient if gradient_stream else update.params - base_vec
            )
            if self.error_feedback:
                residual = self._residuals.get(update.client_id)
                if residual is not None:
                    vector = vector + residual
            enc = self.up_codec.encode(vector, self.layout)
            t1 = time.perf_counter()
            decoded = self.up_codec.decode(enc)
            self.decode_cpu_s += time.perf_counter() - t1
            if self.error_feedback:
                self._residuals[update.client_id] = vector - decoded
            wire = enc.nbytes
            if gradient_stream:
                # The gradient is what crossed the wire; the parameter
                # copy rides along as bookkeeping (today's payloads carry
                # both while the wire charges one vector).
                resolved = ClientUpdate(
                    client_id=update.client_id,
                    params=update.params,
                    gradient=decoded,
                    base_version=update.base_version,
                    claimed_credit=update.claimed_credit,
                )
            else:
                resolved = ClientUpdate(
                    client_id=update.client_id,
                    params=base_vec + decoded,
                    gradient=None,
                    base_version=update.base_version,
                    claimed_credit=update.claimed_credit,
                )
            payload = EncodedUpdate(self, resolved, update.client_id, wu_id)
        self.encode_cpu_s += time.perf_counter() - t0
        self.uploads += 1
        self.upload_raw_bytes += raw_nbytes
        self.upload_wire_bytes += int(wire)
        if self.trace is not None:
            self.trace.emit(
                self.now(),
                "net.encode",
                direction="up",
                codec=self.name,
                client=update.client_id,
                wu=wu_id,
                raw=raw_nbytes,
                wire=int(wire),
            )
        return payload, int(wire)

    def _on_upload_decoded(self, encoded: EncodedUpdate) -> None:
        self.decodes += 1
        if self.trace is not None:
            self.trace.emit(
                self.now(),
                "net.decode",
                direction="up",
                codec=self.name,
                client=encoded.client_id,
                wu=encoded.wu_id,
                raw=int(encoded._resolved.params.nbytes),
            )

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Error-feedback residuals, keyed for npz round-tripping."""
        return {
            f"residual__{cid}": arr.copy()
            for cid, arr in sorted(self._residuals.items())
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._residuals = {
            key[len("residual__") :]: np.array(value, dtype=np.float64)
            for key, value in state.items()
            if key.startswith("residual__")
        }

    # -- reporting ---------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Deterministic integer counters for ``RunResult.counters``."""
        out = {
            "codec_publishes": self.publishes,
            "codec_publish_raw_bytes": self.publish_raw_bytes,
            "codec_publish_wire_bytes": self.publish_wire_bytes,
            "codec_uploads": self.uploads,
            "codec_upload_raw_bytes": self.upload_raw_bytes,
            "codec_upload_wire_bytes": self.upload_wire_bytes,
            "codec_decodes": self.decodes,
        }
        if self._delta:
            out["codec_delta_chain_downloads"] = self.delta_chain_downloads
            out["codec_delta_full_downloads"] = self.delta_full_downloads
        return out
